// Cross-rank request tracing (top of src/obs/): a solve gets a 64-bit
// trace id at submission, every hop it takes (enqueue, batch wait,
// solver run, cache/near-miss/replica lookup, wire round trip) records
// a named span under that id, and the id rides the frame protocol so a
// solve forwarded to a remote shard yields ONE trace whose spans name
// both ranks. Traces live in a bounded in-memory ring (newest win);
// traces slower than a threshold are copied to a separate slow ring
// and optionally logged the moment they finish.
//
// Span times are seconds relative to the trace's submission on the
// recording rank — wall-clock offsets, not synchronized clocks. When
// the origin rank merges spans shipped back from a remote rank it
// shifts them by the wire span's start, which places them correctly
// modulo one-way network delay; that is exactly the fidelity a latency
// investigation needs and all an unsynchronized cluster can offer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/alerts.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/watchdog.hpp"

namespace prts::obs {

/// One named hop of a trace. `rank` is the fabric rank that recorded
/// it; `start_seconds` is the offset from the trace's submit time on
/// that rank.
struct Span {
  std::string name;
  int rank = 0;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  /// Profiler attribution (src/obs/profiler.hpp), all zero when the
  /// profiler is off: thread-CPU seconds spent inside the span (so
  /// duration - cpu = time the recording thread was blocked) and the
  /// span's allocation bill.
  double cpu_seconds = 0.0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;

  /// Time the recording thread spent off-CPU inside the span.
  double blocked_seconds() const noexcept {
    return duration_seconds > cpu_seconds ? duration_seconds - cpu_seconds
                                          : 0.0;
  }
};

/// A completed or in-flight request trace.
struct Trace {
  std::uint64_t id = 0;
  std::string label;  ///< e.g. the canonical instance key
  std::vector<Span> spans;
  double total_seconds = 0.0;
  bool finished = false;
  bool slow_logged = false;  ///< slow handling already triggered once
};

struct TracerConfig {
  std::size_t capacity = 256;       ///< recent-trace ring size
  std::size_t slow_capacity = 64;   ///< slow-trace ring size
  /// Traces with total >= threshold go to the slow ring (and the slow
  /// log, if set). Default: nothing is slow.
  double slow_threshold_seconds = std::numeric_limits<double>::infinity();
  std::ostream* slow_log = nullptr;  ///< one line per slow trace
};

/// Bounded ring of recent traces with an id index. All methods are
/// thread-safe; tracing is the cold path (one lock per span, not per
/// cache probe), the metrics registry is the hot one.
class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});

  /// Mint a process-unique, cross-rank-unlikely-to-collide trace id
  /// and open a trace for it.
  std::uint64_t start(const std::string& label);

  /// Open (or re-open) a trace under an externally minted id — the
  /// remote side of a forwarded solve uses the id carried on the wire.
  void start_with_id(std::uint64_t id, const std::string& label);

  /// Append a span to the trace. Unknown ids are ignored (the trace
  /// may have been evicted from the ring).
  void record(std::uint64_t id, Span span);
  void record(std::uint64_t id, const std::string& name, int rank,
              double start_seconds, double duration_seconds);

  /// Mark the trace finished with the given total. Upsert-merge:
  /// finishing an already-finished trace updates the total (the router
  /// amends an engine-finished trace after failover). Crossing the
  /// slow threshold copies the trace to the slow ring and writes one
  /// line to the slow log — at most once per trace.
  void finish(std::uint64_t id, double total_seconds);

  /// Copy out a trace by id. Returns false if unknown/evicted.
  bool find(std::uint64_t id, Trace& out) const;

  /// Newest-first copies of up to `limit` recent traces.
  std::vector<Trace> recent(std::size_t limit = 32) const;

  /// Newest-first copies of up to `limit` slow traces.
  std::vector<Trace> slow(std::size_t limit = 32) const;

  std::uint64_t slow_count() const;

  double slow_threshold_seconds() const { return config_.slow_threshold_seconds; }

 private:
  void evict_locked();
  void mark_slow_locked(Trace& trace);

  TracerConfig config_;
  mutable std::mutex mutex_;
  // Ring as list + index: O(1) eviction, stable iterators for the map.
  std::list<Trace> ring_;  ///< oldest at front
  std::unordered_map<std::uint64_t, std::list<Trace>::iterator> index_;
  std::list<Trace> slow_ring_;  ///< oldest at front
  std::uint64_t slow_count_ = 0;
  std::uint64_t salt_ = 0;
  std::uint64_t sequence_ = 0;
};

/// Trace ids travel and display as fixed-width lowercase hex.
std::string id_to_hex(std::uint64_t id);
/// Returns 0 on malformed input (0 is never a minted id).
std::uint64_t id_from_hex(const std::string& text);

/// Everything a fabric layer needs to observe itself. One per rank;
/// plumbed through configs as a raw pointer where nullptr means
/// telemetry is off and instrumentation must cost nothing.
struct Telemetry {
  int rank = 0;
  Registry metrics;
  Tracer tracer;
  /// Per-component heartbeats + stall detection, mirrored into
  /// `metrics`. Inert (no thread) until watchdog.start().
  Watchdog watchdog{&metrics};
  /// Dual-clock + allocation + contention attribution, accumulated
  /// into `metrics` as profile_*/mutex_* families. On by default;
  /// instrumented call sites check profiler.enabled() per request.
  Profiler profiler{&metrics};
  /// Alert rules over flight-recorder tick windows, mirrored into
  /// `metrics` (alerts_firing + per-rule families). Evaluated on every
  /// recorder tick via the observer hooked up below.
  AlertEngine alerts{&metrics};
  /// Bounded ring of per-tick metric deltas (the `timeseries` protocol
  /// command). Inert until recorder.start() or a manual tick_now().
  /// Declared after `alerts`: the tick thread calls into the alert
  /// engine, so the recorder must be destroyed first.
  FlightRecorder recorder{&metrics};

  Telemetry() { init(); }
  explicit Telemetry(TracerConfig tracer_config) : tracer(tracer_config) {
    init();
  }

 private:
  /// Shared constructor tail: stamps process_start_time_seconds (the
  /// restart discriminator scrape --watch keys on) and routes recorder
  /// ticks into the alert engine.
  void init();
};

}  // namespace prts::obs
