#include "obs/exposition.hpp"

#include <cstdlib>

namespace prts::obs {

bool parse_exposition_line(const std::string& line, std::string& name,
                           double& value) {
  std::size_t pos = 0;
  const auto name_char = [](char c, bool first) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    return first ? alpha : alpha || (c >= '0' && c <= '9');
  };
  if (line.empty() || !name_char(line[0], true)) return false;
  while (pos < line.size() && name_char(line[pos], pos == 0)) ++pos;
  std::size_t name_end = pos;
  if (pos < line.size() && line[pos] == '{') {
    const std::size_t close = line.find('}', pos);
    if (close == std::string::npos) return false;
    name_end = close + 1;
    pos = close + 1;
  }
  if (pos >= line.size() || line[pos] != ' ') return false;
  name = line.substr(0, name_end);
  const std::string value_text = line.substr(pos + 1);
  if (value_text.empty()) return false;
  char* end = nullptr;
  value = std::strtod(value_text.c_str(), &end);
  return end == value_text.c_str() + value_text.size();
}

namespace {

constexpr const char* kStartTimeGauge = "process_start_time_seconds";

bool is_counter(const std::string& name) {
  return name.find("_total") != std::string::npos;
}

}  // namespace

ScrapeDeltaTracker::Result ScrapeDeltaTracker::feed(
    const std::map<std::string, double>& samples) {
  Result result;
  if (!have_previous_) {
    result.first = true;
    previous_ = samples;
    have_previous_ = true;
    return result;
  }

  // A restart is only credible when the start-time gauge actually
  // moved; a missing gauge on either side leaves lower counters as
  // errors (better a false alarm than silently eating a corruption).
  bool any_lower = false;
  for (const auto& [name, value] : samples) {
    if (!is_counter(name)) continue;
    const auto it = previous_.find(name);
    if (it != previous_.end() && value < it->second) {
      any_lower = true;
      break;
    }
  }
  if (any_lower) {
    const auto now_it = samples.find(kStartTimeGauge);
    const auto before_it = previous_.find(kStartTimeGauge);
    if (now_it != samples.end() && before_it != previous_.end() &&
        now_it->second != before_it->second) {
      result.restart = true;
    }
  }

  for (const auto& [name, value] : samples) {
    if (!is_counter(name)) continue;
    const auto it = previous_.find(name);
    const double before =
        result.restart || it == previous_.end() ? 0.0 : it->second;
    if (value < before) {
      result.backwards.push_back(name);
      continue;
    }
    if (value != before) result.deltas.push_back(Delta{name, value - before});
  }

  previous_ = samples;
  return result;
}

}  // namespace prts::obs
