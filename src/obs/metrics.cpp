#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

namespace prts::obs {
namespace {

/// The finite bucket bounds, computed once. A table + binary search
/// keeps bucket placement exact and deterministic at the boundaries
/// (a log() at record time would disagree with the table by an ulp on
/// exact bound values).
const std::array<double, Histogram::kFiniteBuckets>& bucket_bounds() {
  static const auto bounds = [] {
    std::array<double, Histogram::kFiniteBuckets> table{};
    for (std::size_t i = 0; i < table.size(); ++i) {
      table[i] = Histogram::kFirstBound *
                 std::pow(10.0, static_cast<double>(i) /
                                    static_cast<double>(
                                        Histogram::kBucketsPerDecade));
    }
    return table;
  }();
  return bounds;
}

/// Prometheus-safe metric name: offending characters become '_'.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

/// Shortest-ish float text that standard parsers accept ("%.9g" keeps
/// quantiles readable; exposition values are estimates, not the
/// bit-exact wire numbers).
void write_number(std::ostream& out, double value) {
  if (std::isinf(value)) {
    out << (value > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out << buffer;
}

void write_histogram_json(std::ostream& out,
                          const Histogram::Snapshot& snap) {
  out << "{\"count\":" << snap.count << ",\"sum\":";
  write_number(out, snap.sum);
  out << ",\"mean\":";
  write_number(out, snap.mean());
  static constexpr struct {
    const char* name;
    double q;
  } kQuantiles[] = {{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99},
                    {"p999", 0.999}};
  for (const auto& [name, q] : kQuantiles) {
    out << ",\"" << name << "\":";
    write_number(out, snap.quantile(q));
  }
  out << "}";
}

}  // namespace

double Histogram::upper_bound(std::size_t index) noexcept {
  if (index >= kFiniteBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return bucket_bounds()[index];
}

std::size_t Histogram::bucket_index(double seconds) noexcept {
  const auto& bounds = bucket_bounds();
  // Bucket i covers (bounds[i-1], bounds[i]]: first bound >= value.
  const auto it =
      std::lower_bound(bounds.begin(), bounds.end(), seconds);
  return static_cast<std::size_t>(it - bounds.begin());
}

void Histogram::record(double seconds) noexcept {
  if (std::isnan(seconds)) return;
  counts_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(seconds < 0.0 ? 0.0 : seconds, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot snap;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

Histogram::Snapshot Histogram::snapshot_and_reset() noexcept {
  Snapshot snap;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    // Per-bucket exchange: each record lands in exactly one snapshot.
    snap.counts[i] = counts_[i].exchange(0, std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  snap.sum = sum_.exchange(0.0, std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank with interpolation: the target is the ceil(q*count)-th
  // recorded value (1-based).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (counts[i] == 0) continue;
    if (cumulative + counts[i] >= rank) {
      if (i >= kFiniteBuckets) {
        // Overflow: the best statement possible is "above the largest
        // finite bound".
        return upper_bound(kFiniteBuckets - 1);
      }
      const double hi = upper_bound(i);
      const double lo = i == 0 ? 0.0 : upper_bound(i - 1);
      const double within = static_cast<double>(rank - cumulative) /
                            static_cast<double>(counts[i]);
      return lo + (hi - lo) * within;
    }
    cumulative += counts[i];
  }
  return upper_bound(kFiniteBuckets - 1);
}

void Histogram::Snapshot::merge(const Snapshot& other) noexcept {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
}

Histogram::Snapshot Histogram::Snapshot::delta_since(
    const Snapshot& earlier) const noexcept {
  Snapshot window;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    window.counts[i] =
        counts[i] >= earlier.counts[i] ? counts[i] - earlier.counts[i] : 0;
    window.count += window.counts[i];
  }
  window.sum = sum >= earlier.sum ? sum - earlier.sum : 0.0;
  return window;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->snapshot());
  }
  return snap;
}

void Registry::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << sanitize(name) << "\":" << counter->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << sanitize(name) << "\":";
    write_number(out, gauge->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << sanitize(name) << "\":";
    write_histogram_json(out, histogram->snapshot());
  }
  out << "}}";
}

void Registry::write_prometheus(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    const std::string safe = sanitize(name);
    out << "# TYPE " << safe << " counter\n";
    out << safe << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string safe = sanitize(name);
    out << "# TYPE " << safe << " gauge\n";
    out << safe << " ";
    write_number(out, gauge->value());
    out << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string safe = sanitize(name);
    const Histogram::Snapshot snap = histogram->snapshot();
    out << "# TYPE " << safe << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      // Empty buckets are skipped (80 zero lines per histogram would
      // dwarf the signal), except the mandatory +Inf terminator.
      cumulative += snap.counts[i];
      const bool last = i + 1 == Histogram::kBucketCount;
      if (snap.counts[i] == 0 && !last) continue;
      out << safe << "_bucket{le=\"";
      write_number(out, Histogram::upper_bound(i));
      out << "\"} " << cumulative << "\n";
    }
    out << safe << "_sum ";
    write_number(out, snap.sum);
    out << "\n";
    out << safe << "_count " << snap.count << "\n";
    static constexpr struct {
      const char* suffix;
      double q;
    } kQuantiles[] = {{"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99},
                      {"_p999", 0.999}};
    for (const auto& [suffix, q] : kQuantiles) {
      out << "# TYPE " << safe << suffix << " gauge\n";
      out << safe << suffix << " ";
      write_number(out, snap.quantile(q));
      out << "\n";
    }
  }
}

}  // namespace prts::obs
