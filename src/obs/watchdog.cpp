#include "obs/watchdog.hpp"

#include <algorithm>
#include <ostream>

namespace prts::obs {

Watchdog::Watchdog(Registry* metrics)
    : metrics_(metrics),
      stalls_counter_(metrics ? &metrics->counter("watchdog_stalls_total")
                              : nullptr),
      stalled_gauge_(
          metrics ? &metrics->gauge("watchdog_stalled_components") : nullptr),
      components_gauge_(metrics ? &metrics->gauge("watchdog_components")
                                : nullptr) {}

Watchdog::~Watchdog() { stop(); }

Heartbeat& Watchdog::component(const std::string& name,
                               double expected_interval_seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& slot : components_) {
    if (slot->name_ == name) {
      // Refresh: a revived component must not be flagged for the time
      // it spent dead, and its periodic expectation may have changed.
      // The refresh beat spans the dead time — not a missed-beat
      // episode, so the gap it records is discarded.
      slot->expected_interval_seconds_ = expected_interval_seconds;
      slot->beat();
      slot->max_gap_ns_.store(0, std::memory_order_relaxed);
      return *slot;
    }
  }
  auto slot = std::make_unique<Heartbeat>();
  slot->name_ = name;
  slot->expected_interval_seconds_ = expected_interval_seconds;
  slot->beat();
  components_.push_back(std::move(slot));
  stalled_.push_back(false);
  if (components_gauge_) {
    components_gauge_->set(static_cast<double>(components_.size()));
  }
  return *components_.back();
}

std::vector<Stall> Watchdog::check() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Stall> stalls;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Heartbeat& hb = *components_[i];
    const double age = hb.age_seconds();
    const std::int64_t load = hb.load();
    bool stalled = false;
    if (hb.expected_interval_seconds_ > 0.0) {
      const double threshold =
          std::max(config_.periodic_factor * hb.expected_interval_seconds_,
                   config_.stall_threshold_seconds);
      stalled = age > threshold;
      // Missed-beat detection: the component froze longer than the
      // threshold but recovered before this poll saw a stale age (a
      // SIGSTOP'd process can't age its own heartbeat — the oversized
      // gap its *next* beat records is the only evidence left). One
      // fire-and-resolved episode; a stall counted the normal way
      // already owns its recovery gap.
      const double gap = static_cast<double>(components_[i]->max_gap_ns_.exchange(
                             0, std::memory_order_relaxed)) /
                         1e9;
      if (!stalled && !stalled_[i] && gap > threshold) {
        ++stalls_total_;
        if (stalls_counter_) stalls_counter_->add();
      }
    } else {
      stalled = load > 0 && age > config_.stall_threshold_seconds;
    }
    if (stalled) {
      stalls.push_back(Stall{hb.name_, age, load});
      if (!stalled_[i]) {
        // Entering the stalled state: one episode, however many polls
        // it lasts.
        stalled_[i] = true;
        ++stalls_total_;
        if (stalls_counter_) stalls_counter_->add();
      }
    } else {
      stalled_[i] = false;
    }
  }
  if (stalled_gauge_) stalled_gauge_->set(static_cast<double>(stalls.size()));
  return stalls;
}

void Watchdog::start(WatchdogConfig config) {
  stop();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    config_ = config;
    monitor_stop_ = false;
  }
  monitor_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const auto interval = std::chrono::duration<double>(
          std::max(config_.poll_interval_seconds, 1e-3));
      if (monitor_cv_.wait_for(lock, interval,
                               [this] { return monitor_stop_; })) {
        return;
      }
      lock.unlock();
      check();
      lock.lock();
    }
  });
}

void Watchdog::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    monitor_stop_ = true;
  }
  monitor_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

std::uint64_t Watchdog::stalls_total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stalls_total_;
}

WatchdogConfig Watchdog::config() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

void Watchdog::write_json(std::ostream& out) {
  const std::vector<Stall> stalls = check();
  std::uint64_t total;
  std::size_t component_count;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    total = stalls_total_;
    component_count = components_.size();
  }
  out << "{\"stalls_total\":" << total
      << ",\"components\":" << component_count << ",\"stalled\":[";
  bool first = true;
  for (const Stall& stall : stalls) {
    if (!first) out << ",";
    first = false;
    out << "{\"component\":\"" << stall.component
        << "\",\"age_seconds\":" << stall.age_seconds
        << ",\"load\":" << stall.load << "}";
  }
  out << "]}";
}

}  // namespace prts::obs
