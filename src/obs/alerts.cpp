#include "obs/alerts.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "load/slo.hpp"

namespace prts::obs {
namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

bool ends_with(const std::string& name, const char* suffix) {
  const std::size_t len = std::char_traits<char>::length(suffix);
  return name.size() > len &&
         name.compare(name.size() - len, len, suffix) == 0;
}

std::uint64_t tick_delta(const FlightRecorder::Tick& tick,
                         const std::string& counter) {
  const auto it = tick.counter_deltas.find(counter);
  return it == tick.counter_deltas.end() ? 0 : it->second;
}

/// Registry-safe slug of a rule expression for its per-rule metric
/// names (same character set metrics.cpp sanitizes to).
std::string rule_slug(const std::string& expr) {
  std::string slug = expr;
  for (char& c : slug) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return slug;
}

void write_number(std::ostream& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out << buffer;
}

}  // namespace

bool parse_alert_rule(const std::string& text, AlertRule& rule,
                      std::string* error) {
  rule = AlertRule{};
  std::stringstream parts(text);
  std::string part;
  bool have_comparison = false;
  while (std::getline(parts, part, ';')) {
    const auto begin = part.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    part = part.substr(begin, part.find_last_not_of(" \t") - begin + 1);
    if (!have_comparison) {
      load::Comparison comparison;
      std::string why;
      if (!load::parse_comparison(part, comparison, &why)) {
        return fail(error, "alert: " + why);
      }
      rule.metric = std::move(comparison.metric);
      rule.op = std::move(comparison.op);
      rule.bound = comparison.bound;
      have_comparison = true;
      continue;
    }
    // Options after the comparison: for=N (ticks to fire), hold=N
    // (ticks to resolve).
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return fail(error, "alert: bad option '" + part + "'");
    }
    const std::string key = part.substr(0, eq);
    const std::string value_text = part.substr(eq + 1);
    char* end = nullptr;
    const long value = std::strtol(value_text.c_str(), &end, 10);
    if (end == value_text.c_str() || *end != '\0' || value < 1 ||
        value > 1000000) {
      return fail(error, "alert: bad option value '" + part + "'");
    }
    if (key == "for") {
      rule.for_ticks = static_cast<int>(value);
    } else if (key == "hold") {
      rule.hold_ticks = static_cast<int>(value);
    } else {
      return fail(error, "alert: unknown option '" + key + "'");
    }
  }
  if (!have_comparison) return fail(error, "alert: empty rule");
  rule.expr = text;
  return true;
}

AlertEngine::AlertEngine(Registry* registry) : registry_(registry) {
  if (registry_ != nullptr) {
    // Registered up front so a scrape sees alerts_firing 0, not an
    // absent family, on a rank with no rules (or none fired yet).
    firing_total_gauge_ = &registry_->gauge("alerts_firing");
    firing_total_gauge_->set(0.0);
  }
}

void AlertEngine::add_rule(AlertRule rule) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.state.rule = std::move(rule);
  if (registry_ != nullptr) {
    const std::string slug = rule_slug(entry.state.rule.expr);
    entry.fired_counter =
        &registry_->counter("alert_" + slug + "_fired_total");
    entry.resolved_counter =
        &registry_->counter("alert_" + slug + "_resolved_total");
    entry.firing_gauge = &registry_->gauge("alert_" + slug + "_firing");
    entry.firing_gauge->set(0.0);
  }
  entries_.push_back(std::move(entry));
}

bool AlertEngine::add_rule(const std::string& text, std::string* error) {
  AlertRule rule;
  if (!parse_alert_rule(text, rule, error)) return false;
  add_rule(std::move(rule));
  return true;
}

std::size_t AlertEngine::rule_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

double AlertEngine::rule_value(const AlertRule& rule,
                               const FlightRecorder::Tick& tick) {
  const std::string& metric = rule.metric;
  if (metric == "error_rate" || metric == "reject_rate") {
    const std::uint64_t submitted = tick_delta(tick, "engine_requests_total");
    if (submitted == 0) return 0.0;
    const std::uint64_t bad = tick_delta(
        tick, metric == "error_rate" ? "engine_errors_total"
                                     : "engine_rejected_total");
    return static_cast<double>(bad) / static_cast<double>(submitted);
  }
  if (ends_with(metric, "_delta")) {
    return static_cast<double>(
        tick_delta(tick, metric.substr(0, metric.size() - 6)));
  }
  static constexpr struct {
    const char* suffix;
    double FlightRecorder::Tick::HistogramWindow::* field;
  } kWindowFields[] = {
      {"_p50", &FlightRecorder::Tick::HistogramWindow::p50},
      {"_p90", &FlightRecorder::Tick::HistogramWindow::p90},
      {"_p99", &FlightRecorder::Tick::HistogramWindow::p99},
      {"_p999", &FlightRecorder::Tick::HistogramWindow::p999},
      {"_mean", &FlightRecorder::Tick::HistogramWindow::mean},
  };
  for (const auto& [suffix, field] : kWindowFields) {
    if (!ends_with(metric, suffix)) continue;
    const std::string base =
        metric.substr(0, metric.size() - std::string(suffix).size());
    const auto it = tick.histograms.find(base);
    if (it == tick.histograms.end()) return 0.0;
    return it->second.*field;
  }
  const auto it = tick.gauges.find(metric);
  return it == tick.gauges.end() ? 0.0 : it->second;
}

void AlertEngine::evaluate(const FlightRecorder::Tick& tick) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t firing = 0;
  for (Entry& entry : entries_) {
    RuleState& state = entry.state;
    const double value = rule_value(state.rule, tick);
    state.last_value = value;
    ++state.ticks_evaluated;
    const bool breach =
        load::comparison_holds(value, state.rule.op, state.rule.bound);
    if (breach) {
      ++entry.breach_streak;
      entry.clear_streak = 0;
      if (!state.firing && entry.breach_streak >= state.rule.for_ticks) {
        state.firing = true;
        ++state.fired_total;
        state.changed_uptime_seconds = tick.uptime_seconds;
        if (entry.fired_counter) entry.fired_counter->add();
        if (entry.firing_gauge) entry.firing_gauge->set(1.0);
      }
    } else {
      ++entry.clear_streak;
      entry.breach_streak = 0;
      if (state.firing && entry.clear_streak >= state.rule.hold_ticks) {
        state.firing = false;
        ++state.resolved_total;
        state.changed_uptime_seconds = tick.uptime_seconds;
        if (entry.resolved_counter) entry.resolved_counter->add();
        if (entry.firing_gauge) entry.firing_gauge->set(0.0);
      }
    }
    if (state.firing) ++firing;
  }
  if (firing_total_gauge_) {
    firing_total_gauge_->set(static_cast<double>(firing));
  }
}

std::vector<AlertEngine::RuleState> AlertEngine::states() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RuleState> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.state);
  return out;
}

std::uint64_t AlertEngine::firing_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t firing = 0;
  for (const Entry& entry : entries_) {
    if (entry.state.firing) ++firing;
  }
  return firing;
}

void AlertEngine::write_json(std::ostream& out) const {
  const std::vector<RuleState> states = this->states();
  std::uint64_t firing = 0;
  for (const RuleState& state : states) {
    if (state.firing) ++firing;
  }
  out << "{\"firing\":" << firing << ",\"rules\":[";
  bool first = true;
  for (const RuleState& state : states) {
    if (!first) out << ",";
    first = false;
    out << "{\"rule\":\"" << state.rule.expr << "\",\"state\":\""
        << (state.firing ? "firing" : "ok") << "\",\"value\":";
    write_number(out, state.last_value);
    out << ",\"fired\":" << state.fired_total
        << ",\"resolved\":" << state.resolved_total << ",\"since\":";
    write_number(out, state.changed_uptime_seconds);
    out << "}";
  }
  out << "]}";
}

}  // namespace prts::obs
