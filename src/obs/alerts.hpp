// Health-alert engine (src/obs/): declarative rules over the flight
// recorder's per-tick windows, with a firing→resolved lifecycle —
// the step from "the rank records its own history" (PR 7) to "the rank
// tells you when that history went wrong".
//
// A rule is one comparison clause in the load::slo grammar (any
// operator, not just the SLO's "<="), plus optional debounce options:
//
//   watchdog_stalls_total_delta>0
//   engine_queue_depth>100;for=3
//   error_rate>0.01;hold=10
//   engine_request_latency_seconds_p99>50ms
//
// The metric name resolves against one flight-recorder tick:
//   <counter>_delta        counter increment over the tick window
//   <histogram>_p50/.../_p999/_mean/_count
//                          that tick's windowed histogram stats
//   error_rate/reject_rate engine errors/rejections per submitted
//                          request over the tick window
//   anything else          a gauge's value at tick time
// Absent metrics read as zero — a rule on a counter that never moved
// is simply not breaching.
//
// Lifecycle: a rule fires after `for` consecutive breaching ticks
// (default 1) and resolves after `hold` consecutive clean ticks
// (default 3 — so a one-tick spike stays visible to a scraper polling
// slower than the tick rate). Everything is mirrored into the
// registry: an `alerts_firing` gauge plus per-rule
// alert_<slug>_{fired_total,resolved_total} counters and an
// alert_<slug>_firing gauge, so alert state rides every existing
// surface (scrape, stats frames, the flight recorder itself).
//
// Evaluation is driven by the flight recorder's tick observer (see
// Telemetry) or directly via evaluate() with hand-built ticks, which
// is what makes the lifecycle deterministic under test: time is
// whatever the injected ticks say it is.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace prts::obs {

struct AlertRule {
  std::string expr;    ///< original rule text (display + metric slug)
  std::string metric;  ///< tick-window metric name (see header comment)
  std::string op = ">";
  double bound = 0.0;
  int for_ticks = 1;   ///< consecutive breaching ticks before firing
  int hold_ticks = 3;  ///< consecutive clean ticks before resolving
};

/// Parses "metric OP bound[suffix][;for=N][;hold=N]". Returns false
/// (setting `error` when given) on grammar errors; metric names are
/// accepted as-is (the registry's namespace is open).
bool parse_alert_rule(const std::string& text, AlertRule& rule,
                      std::string* error = nullptr);

class AlertEngine {
 public:
  /// `registry` (optional, must outlive the engine) receives the
  /// alerts_firing gauge and the per-rule mirrors.
  explicit AlertEngine(Registry* registry = nullptr);

  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  /// Adds a parsed rule (registers its per-rule metrics).
  void add_rule(AlertRule rule);
  /// Parse + add; false on grammar errors.
  bool add_rule(const std::string& text, std::string* error = nullptr);

  std::size_t rule_count() const;

  /// Evaluates every rule against one tick window and advances the
  /// firing lifecycle. Called by the flight recorder's tick hook in
  /// production; call directly with synthetic ticks for determinism.
  void evaluate(const FlightRecorder::Tick& tick);

  struct RuleState {
    AlertRule rule;
    bool firing = false;
    double last_value = 0.0;  ///< metric value at the last evaluation
    std::uint64_t fired_total = 0;
    std::uint64_t resolved_total = 0;
    /// Tick uptime when the rule last changed state (0 if never).
    double changed_uptime_seconds = 0.0;
    std::uint64_t ticks_evaluated = 0;
  };
  std::vector<RuleState> states() const;

  /// Rules currently firing.
  std::uint64_t firing_count() const;

  /// {"firing":N,"rules":[{"rule":..,"state":"firing"|"ok","value":..,
  ///   "fired":..,"resolved":..,"since":..},...]}
  void write_json(std::ostream& out) const;

 private:
  struct Entry {
    RuleState state;
    int breach_streak = 0;
    int clear_streak = 0;
    Counter* fired_counter = nullptr;      ///< non-null iff registry
    Counter* resolved_counter = nullptr;
    Gauge* firing_gauge = nullptr;
  };

  /// The rule's metric value in this tick window (absent reads as 0).
  static double rule_value(const AlertRule& rule,
                           const FlightRecorder::Tick& tick);

  Registry* const registry_;
  Gauge* firing_total_gauge_ = nullptr;  ///< non-null iff registry

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace prts::obs
