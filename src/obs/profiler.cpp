#include "obs/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <new>
#include <ostream>

namespace prts::obs {
namespace {

/// Per-thread allocation tally. Trivial type + constinit: no TLS guard,
/// safe to touch from the first allocation a thread ever makes (gtest
/// and the runtime allocate before main, from multiple threads).
struct AllocTally {
  std::uint64_t count;
  std::uint64_t bytes;
};
constinit thread_local AllocTally g_alloc_tally{0, 0};

inline void tally(std::size_t size) noexcept {
  g_alloc_tally.count += 1;
  g_alloc_tally.bytes += static_cast<std::uint64_t>(size);
}

/// Shared backend of every operator new replacement: malloc (or
/// posix_memalign for over-aligned types), retrying through the
/// installed new_handler exactly like the default implementation.
void* profiled_allocate(std::size_t size, std::size_t align,
                        bool nothrow) noexcept(false) {
  if (size == 0) size = 1;  // unique-pointer guarantee
  for (;;) {
    void* ptr = nullptr;
    if (align <= alignof(std::max_align_t)) {
      ptr = std::malloc(size);
    } else {
      // posix_memalign wants a multiple of sizeof(void*).
      std::size_t effective = align;
      if (effective < sizeof(void*)) effective = sizeof(void*);
      if (posix_memalign(&ptr, effective, size) != 0) ptr = nullptr;
    }
    if (ptr != nullptr) {
      tally(size);
      return ptr;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      if (nothrow) return nullptr;
      throw std::bad_alloc();
    }
    if (nothrow) {
      // The nothrow forms swallow a handler that throws bad_alloc.
      try {
        handler();
      } catch (...) {
        return nullptr;
      }
    } else {
      handler();
    }
  }
}

void write_number(std::ostream& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out << buffer;
}

}  // namespace

AllocCounts thread_alloc_counts() noexcept {
  return AllocCounts{g_alloc_tally.count, g_alloc_tally.bytes};
}

double thread_cpu_seconds() noexcept {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / 1e9;
}

// ------------------------------------------------------------ Profiler

Profiler::Profiler(Registry* registry) : registry_(registry) {}

Profiler::Component& Profiler::component(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = components_[name];
  if (!slot) {
    slot = std::make_unique<Component>();
    if (registry_ != nullptr) {
      const std::string prefix = "profile_" + name;
      slot->samples = &registry_->counter(prefix + "_samples_total");
      slot->wall_us = &registry_->counter(prefix + "_wall_us_total");
      slot->cpu_us = &registry_->counter(prefix + "_cpu_us_total");
      slot->allocs = &registry_->counter(prefix + "_allocs_total");
      slot->alloc_bytes = &registry_->counter(prefix + "_alloc_bytes_total");
    }
  }
  return *slot;
}

void Profiler::record(Component& component, const WorkSample& sample) noexcept {
  if (component.samples == nullptr) return;  // null-registry profiler
  const auto to_us = [](double seconds) {
    return seconds <= 0.0 ? std::uint64_t{0}
                          : static_cast<std::uint64_t>(seconds * 1e6 + 0.5);
  };
  component.samples->add();
  component.wall_us->add(to_us(sample.wall_seconds));
  component.cpu_us->add(to_us(sample.cpu_seconds));
  component.allocs->add(sample.alloc_count);
  component.alloc_bytes->add(sample.alloc_bytes);
}

void Profiler::record(const std::string& name, const WorkSample& sample) {
  record(component(name), sample);
}

namespace {

/// True when `name` is "<prefix><middle><suffix>"; extracts the middle.
bool strip_affixes(const std::string& name, const std::string& prefix,
                   const std::string& suffix, std::string& middle) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  middle = name.substr(prefix.size(),
                       name.size() - prefix.size() - suffix.size());
  return true;
}

std::uint64_t counter_or_zero(const RegistrySnapshot& snap,
                              const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

}  // namespace

std::vector<Profiler::ComponentStats> Profiler::stats(
    const std::string& filter) const {
  std::vector<ComponentStats> out;
  if (registry_ == nullptr) return out;
  // Decoded from the registry, not the handle map: components recorded
  // by other layers of this rank (frame server, router) show up even
  // though they resolved their handles through the same Profiler — and
  // a merged remote snapshot could be decoded the same way.
  const RegistrySnapshot snap = registry_->snapshot();
  for (const auto& [name, value] : snap.counters) {
    std::string component_name;
    if (!strip_affixes(name, "profile_", "_samples_total", component_name)) {
      continue;
    }
    if (!filter.empty() && component_name != filter) continue;
    ComponentStats stats;
    stats.name = component_name;
    stats.samples = value;
    const std::string prefix = "profile_" + component_name;
    stats.wall_seconds =
        static_cast<double>(counter_or_zero(snap, prefix + "_wall_us_total")) /
        1e6;
    stats.cpu_seconds =
        static_cast<double>(counter_or_zero(snap, prefix + "_cpu_us_total")) /
        1e6;
    stats.blocked_seconds = stats.wall_seconds > stats.cpu_seconds
                                ? stats.wall_seconds - stats.cpu_seconds
                                : 0.0;
    stats.alloc_count = counter_or_zero(snap, prefix + "_allocs_total");
    stats.alloc_bytes = counter_or_zero(snap, prefix + "_alloc_bytes_total");
    out.push_back(std::move(stats));
  }
  return out;  // registry maps are ordered: already name-sorted
}

std::vector<Profiler::MutexStats> Profiler::mutexes() const {
  std::vector<MutexStats> out;
  if (registry_ == nullptr) return out;
  const RegistrySnapshot snap = registry_->snapshot();
  for (const auto& [name, value] : snap.counters) {
    std::string mutex_name;
    if (!strip_affixes(name, "mutex_", "_acquisitions_total", mutex_name)) {
      continue;
    }
    MutexStats stats;
    stats.name = mutex_name;
    stats.acquisitions = value;
    stats.contended =
        counter_or_zero(snap, "mutex_" + mutex_name + "_contended_total");
    const auto hist =
        snap.histograms.find("mutex_" + mutex_name + "_wait_seconds");
    if (hist != snap.histograms.end()) {
      stats.wait_seconds = hist->second.sum;
      stats.wait_p99 = hist->second.quantile(0.99);
    }
    out.push_back(std::move(stats));
  }
  std::sort(out.begin(), out.end(), [](const MutexStats& a,
                                       const MutexStats& b) {
    if (a.contended != b.contended) return a.contended > b.contended;
    return a.name < b.name;
  });
  return out;
}

void Profiler::write_json(std::ostream& out, const std::string& filter) const {
  out << "{\"enabled\":" << (enabled() ? "true" : "false")
      << ",\"components\":[";
  bool first = true;
  for (const ComponentStats& component : stats(filter)) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << component.name
        << "\",\"samples\":" << component.samples << ",\"wall_seconds\":";
    write_number(out, component.wall_seconds);
    out << ",\"cpu_seconds\":";
    write_number(out, component.cpu_seconds);
    out << ",\"blocked_seconds\":";
    write_number(out, component.blocked_seconds);
    out << ",\"allocs\":" << component.alloc_count
        << ",\"alloc_bytes\":" << component.alloc_bytes << "}";
  }
  out << "],\"mutexes\":[";
  first = true;
  for (const MutexStats& mutex : mutexes()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << mutex.name
        << "\",\"acquisitions\":" << mutex.acquisitions
        << ",\"contended\":" << mutex.contended << ",\"wait_seconds\":";
    write_number(out, mutex.wait_seconds);
    out << ",\"wait_p99\":";
    write_number(out, mutex.wait_p99);
    out << "}";
  }
  out << "]}";
}

ProfiledMutex::Probe ProfiledMutex::make_probe(Registry& registry,
                                               const std::string& name) {
  Probe probe;
  probe.acquisitions =
      &registry.counter("mutex_" + name + "_acquisitions_total");
  probe.contended = &registry.counter("mutex_" + name + "_contended_total");
  probe.wait = &registry.histogram("mutex_" + name + "_wait_seconds");
  return probe;
}

}  // namespace prts::obs

// ----------------------------------------------- global operator new/delete
//
// Library-wide allocation hooks: every binary linking prts routes its
// allocations through here, which is what makes AllocScope deltas
// meaningful anywhere in the fabric. The per-allocation cost is two
// thread-local integer adds on top of malloc. Deallocation is
// deliberately untracked — the profiler's question is "how many
// allocations does a request cost", not a heap census.

void* operator new(std::size_t size) {
  return prts::obs::profiled_allocate(size, 0, /*nothrow=*/false);
}

void* operator new[](std::size_t size) {
  return prts::obs::profiled_allocate(size, 0, /*nothrow=*/false);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return prts::obs::profiled_allocate(size, 0, /*nothrow=*/true);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return prts::obs::profiled_allocate(size, 0, /*nothrow=*/true);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return prts::obs::profiled_allocate(size, static_cast<std::size_t>(align),
                                      /*nothrow=*/false);
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return prts::obs::profiled_allocate(size, static_cast<std::size_t>(align),
                                      /*nothrow=*/false);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return prts::obs::profiled_allocate(size, static_cast<std::size_t>(align),
                                      /*nothrow=*/true);
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return prts::obs::profiled_allocate(size, static_cast<std::size_t>(align),
                                      /*nothrow=*/true);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}
