// Exposition-side helpers (src/obs/): the consumer half of the
// prometheus text format that write_prometheus() produces. A scraper
// needs two things a registry never does: to validate sample lines it
// did not render itself, and to turn successive cumulative scrapes into
// per-interval counter deltas without crying wolf when the target
// restarted.
//
// The restart case is the subtle one. A counter that reads lower than
// last scrape is either corruption (a real monotonicity bug worth a
// nonzero exit) or a process restart (counters legitimately back to
// zero). The two are distinguished by process_start_time_seconds: every
// Telemetry stamps it at construction, so a fresh value alongside lower
// counters means "new process, new baseline", while lower counters
// under an unchanged start time is an error. ScrapeDeltaTracker
// encapsulates exactly that verdict so prts_cli and tests share it.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace prts::obs {

/// Validates one prometheus exposition sample line. Returns false for
/// malformed lines; '#' comments and blank lines are NOT accepted here
/// (the caller skips them — this validates samples only). On success
/// fills `name` (including any {labels} block verbatim) and `value`.
bool parse_exposition_line(const std::string& line, std::string& name,
                           double& value);

/// Turns successive cumulative scrapes of one target into counter
/// deltas, with restart detection keyed on process_start_time_seconds.
class ScrapeDeltaTracker {
 public:
  struct Delta {
    std::string name;
    double value = 0.0;  ///< increment since the previous scrape
  };

  struct Result {
    /// First scrape ever seen: no baseline, no deltas.
    bool first = false;
    /// The target restarted between scrapes (counters reset AND
    /// process_start_time_seconds changed). Deltas are computed from a
    /// zero baseline — the new process's counts are all new increments.
    bool restart = false;
    /// Counters that decreased without a restart: genuine monotonicity
    /// violations. Empty on a healthy scrape.
    std::vector<std::string> backwards;
    /// Nonzero increments for *_total families, name-ordered.
    std::vector<Delta> deltas;
  };

  /// Feeds the cumulative samples of one scrape and returns the verdict
  /// against the previous one. The sample map becomes the new baseline
  /// (after a restart, the baseline is the fresh process's samples).
  Result feed(const std::map<std::string, double>& samples);

 private:
  std::map<std::string, double> previous_;
  bool have_previous_ = false;
};

}  // namespace prts::obs
