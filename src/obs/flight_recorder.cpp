#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <chrono>

namespace prts::obs {

FlightRecorder::FlightRecorder(Registry* registry)
    : registry_(registry), started_at_(std::chrono::steady_clock::now()) {}

FlightRecorder::~FlightRecorder() { stop(); }

void FlightRecorder::configure(FlightRecorderConfig config) {
  const std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  if (config_.capacity == 0) config_.capacity = 1;
  while (ring_.size() > config_.capacity) ring_.pop_front();
}

FlightRecorderConfig FlightRecorder::config() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

void FlightRecorder::start() {
  stop();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ticker_stop_ = false;
  }
  ticker_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const auto interval = std::chrono::duration<double>(
          std::max(config_.interval_seconds, 1e-3));
      if (ticker_cv_.wait_for(lock, interval,
                              [this] { return ticker_stop_; })) {
        return;
      }
      lock.unlock();
      tick_now();
      lock.lock();
    }
  });
}

void FlightRecorder::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ticker_stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
}

bool FlightRecorder::running() const { return ticker_.joinable(); }

void FlightRecorder::tick_now() {
  // The registry snapshot is taken outside the recorder lock (it takes
  // the registry's own mutex; holding both invites ordering trouble).
  RegistrySnapshot current = registry_->snapshot();
  const double uptime = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started_at_)
                            .count();

  std::unique_lock<std::mutex> lock(mutex_);
  Tick tick;
  tick.seq = total_ticks_++;
  tick.uptime_seconds = uptime;
  tick.interval_seconds = uptime - previous_uptime_;
  for (const auto& [name, value] : current.counters) {
    const auto it = previous_.counters.find(name);
    const std::uint64_t before = it == previous_.counters.end() ? 0 : it->second;
    const std::uint64_t delta = value >= before ? value - before : 0;
    if (delta != 0) tick.counter_deltas.emplace(name, delta);
  }
  tick.gauges = current.gauges;
  for (const auto& [name, snap] : current.histograms) {
    const auto it = previous_.histograms.find(name);
    const Histogram::Snapshot window =
        it == previous_.histograms.end() ? snap
                                         : snap.delta_since(it->second);
    if (window.count == 0) continue;
    Tick::HistogramWindow hw;
    hw.count = window.count;
    hw.mean = window.mean();
    hw.p50 = window.quantile(0.50);
    hw.p90 = window.quantile(0.90);
    hw.p99 = window.quantile(0.99);
    hw.p999 = window.quantile(0.999);
    tick.histograms.emplace(name, hw);
  }
  previous_ = std::move(current);
  previous_uptime_ = uptime;
  Tick completed = tick;
  ring_.push_back(std::move(tick));
  while (ring_.size() > config_.capacity) ring_.pop_front();
  const auto observer = observer_;
  lock.unlock();
  // Outside the recorder lock: the observer (the alert engine) sets
  // registry gauges and must not be able to deadlock against a
  // concurrent recent()/configure().
  if (observer) observer(completed);
}

void FlightRecorder::set_observer(std::function<void(const Tick&)> observer) {
  const std::lock_guard<std::mutex> lock(mutex_);
  observer_ = std::move(observer);
}

std::vector<FlightRecorder::Tick> FlightRecorder::recent(
    std::size_t limit) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t count =
      limit == 0 ? ring_.size() : std::min(limit, ring_.size());
  return std::vector<Tick>(ring_.end() - static_cast<std::ptrdiff_t>(count),
                           ring_.end());
}

std::uint64_t FlightRecorder::total_ticks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_ticks_;
}

}  // namespace prts::obs
