// Continuous in-process profiler (src/obs/): the attribution layer the
// hot-path rebuild needs — not "p99 got worse" but *where the time and
// memory went*. Three probes, all dependency-free and cheap enough to
// leave on in production:
//
//   1. Dual-clock work samples: a ScopedSample reads the steady wall
//      clock AND the calling thread's CPU clock
//      (CLOCK_THREAD_CPUTIME_ID). wall - cpu = time the thread spent
//      blocked (lock waits, socket reads, scheduler delay) inside the
//      span — the quantity that distinguishes "the solver is slow"
//      from "the solver is waiting".
//   2. Thread-local allocation accounting: global operator new/delete
//      replacements (profiler.cpp) tally every allocation into
//      thread-local counters; an AllocScope reads the delta across a
//      region. This yields allocations-per-request and per-span byte
//      counts — the baseline number the zero-allocation rebuild must
//      drive to zero.
//   3. ProfiledMutex: a std::mutex drop-in that counts acquisitions,
//      counts contended acquisitions, and records contended wait time
//      into a registry histogram. Attached to the engine batch-queue
//      mutex, the cache shard mutexes and the router in-flight map, it
//      answers "which lock is the fabric actually fighting over".
//
// Samples are aggregated per *component* (a span name: solver_run,
// wire_round_trip, submit_path, ...) into plain registry counters
// (profile_<component>_{samples,wall_us,cpu_us,allocs,alloc_bytes}_total)
// so they ride every existing surface for free: prometheus scrapes,
// flight-recorder ticks, stats frames. The Profiler object is just the
// handle cache plus the JSON/stats renderer over those counters.
//
// Everything is gated on Profiler::enabled(): instrumented call sites
// check it once per request and skip the clock_gettime/TLS reads when
// off, so the A/B in bench/profile_overhead.cpp measures the real
// marginal cost of measuring.
//
// Cost model: the allocation tally is two relaxed TLS loads (~free),
// but CLOCK_THREAD_CPUTIME_ID is a real syscall (~200ns on this class
// of kernel — it is not in the vDSO), and a warm cache hit is only a
// few microseconds end to end. Paying two CPU-clock reads per sample
// on *every* request would alone blow the <5% overhead budget. So the
// per-request fast path (submit_path, cache_lookup, near_miss_lookup,
// canonicalize) takes dual-clock samples *statistically* — 1 in
// sample_period() requests, decided by should_sample() — while the
// allocation counters (engine_request_allocs_total and friends) stay
// exact and always-on. Amortized sites that run once per batch or per
// network round trip (solver_run, wire_round_trip, frame_handler)
// sample every occurrence: their work dwarfs the clock reads.
// Consequence: fast-path components report samples ≈ requests/period;
// their wall/cpu/alloc totals are unbiased estimates scaled down by
// the period, not exhaustive sums.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace prts::obs {

// ------------------------------------------------ allocation accounting

/// This thread's allocation tally (monotonic since thread start).
/// Maintained by the global operator new replacements in profiler.cpp;
/// reading it is two relaxed TLS loads.
struct AllocCounts {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

AllocCounts thread_alloc_counts() noexcept;

/// Scoped delta of the calling thread's allocation tally. Only
/// meaningful for work that stays on one thread — which is exactly how
/// the engine uses it (submit path on the caller thread, solve spans on
/// the batch worker).
class AllocScope {
 public:
  AllocScope() noexcept : start_(thread_alloc_counts()) {}

  AllocCounts delta() const noexcept {
    const AllocCounts now = thread_alloc_counts();
    return AllocCounts{now.count - start_.count, now.bytes - start_.bytes};
  }

 private:
  AllocCounts start_;
};

// ----------------------------------------------------- dual-clock timer

/// CPU time consumed by the calling thread, in seconds
/// (CLOCK_THREAD_CPUTIME_ID; falls back to 0.0 where unsupported).
double thread_cpu_seconds() noexcept;

/// One measured region: wall, thread-CPU and allocation deltas.
struct WorkSample {
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;

  /// Time the thread was not on-CPU inside the region (floored at zero:
  /// clock granularity can make cpu read a hair above wall on very
  /// short regions).
  double blocked_seconds() const noexcept {
    return wall_seconds > cpu_seconds ? wall_seconds - cpu_seconds : 0.0;
  }
};

/// Starts all three probes at construction; finish() returns the
/// deltas. Plain value type — copy it into lambdas, keep it across
/// scopes, finish() as many times as useful.
class ScopedSample {
 public:
  ScopedSample() noexcept
      : wall_start_(std::chrono::steady_clock::now()),
        cpu_start_(thread_cpu_seconds()),
        alloc_start_() {}

  WorkSample finish() const noexcept {
    WorkSample sample;
    sample.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start_)
                              .count();
    const double cpu = thread_cpu_seconds() - cpu_start_;
    sample.cpu_seconds = cpu < 0.0 ? 0.0 : cpu;
    const AllocCounts allocs = alloc_start_.delta();
    sample.alloc_count = allocs.count;
    sample.alloc_bytes = allocs.bytes;
    return sample;
  }

 private:
  std::chrono::steady_clock::time_point wall_start_;
  double cpu_start_;
  AllocScope alloc_start_;
};

// ------------------------------------------------ per-component rollup

/// Accumulates WorkSamples per component into registry counters and
/// renders the rollup. Component handles are resolved once (registration
/// locks the registry) and recording afterward is relaxed atomics only.
class Profiler {
 public:
  /// `registry` may be null (a profiler that swallows everything —
  /// keeps call sites unconditional). Must outlive the profiler.
  explicit Profiler(Registry* registry = nullptr);

  /// The master switch instrumented call sites check before paying for
  /// clock/TLS reads. Defaults on.
  bool enabled() const noexcept {
    return registry_ != nullptr && enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Statistical gate for per-request fast-path dual-clock samples:
  /// true for 1 in sample_period() calls on this thread (every call
  /// when the period is <= 1, never when disabled). The counter is
  /// thread-local, so concurrent clients each sample at the configured
  /// stride without sharing a cache line.
  bool should_sample() noexcept {
    if (!enabled()) return false;
    const std::uint32_t period =
        sample_period_.load(std::memory_order_relaxed);
    if (period <= 1) return true;
    thread_local std::uint32_t stride = 0;
    return ++stride % period == 0;
  }

  std::uint32_t sample_period() const noexcept {
    return sample_period_.load(std::memory_order_relaxed);
  }
  /// 0 and 1 both mean "sample every request" (tests use this to make
  /// fast-path sampling deterministic).
  void set_sample_period(std::uint32_t period) noexcept {
    sample_period_.store(period, std::memory_order_relaxed);
  }

  /// Resolved counter handles for one component. Stable address for the
  /// profiler's lifetime.
  struct Component {
    Counter* samples = nullptr;
    Counter* wall_us = nullptr;
    Counter* cpu_us = nullptr;
    Counter* allocs = nullptr;
    Counter* alloc_bytes = nullptr;
  };

  /// Registers (or looks up) profile_<name>_* counters. Call sites on
  /// hot paths should cache the reference.
  Component& component(const std::string& name);

  /// Folds one sample into a component (relaxed adds; sub-microsecond
  /// times still count the sample).
  static void record(Component& component, const WorkSample& sample) noexcept;

  /// Convenience for cold call sites: resolve + record.
  void record(const std::string& name, const WorkSample& sample);

  /// One component's lifetime totals, decoded back from the counters.
  struct ComponentStats {
    std::string name;
    std::uint64_t samples = 0;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;
    double blocked_seconds = 0.0;  ///< wall - cpu, floored at zero
    std::uint64_t alloc_count = 0;
    std::uint64_t alloc_bytes = 0;
  };
  /// Name-sorted; empty filter = all components.
  std::vector<ComponentStats> stats(const std::string& filter = "") const;

  /// One profiled mutex's totals, scanned from mutex_<name>_* families.
  struct MutexStats {
    std::string name;
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
    double wait_seconds = 0.0;  ///< summed contended wait
    double wait_p99 = 0.0;
  };
  /// Contended-count descending — [0] is the top contended mutex.
  std::vector<MutexStats> mutexes() const;

  /// {"enabled":..,"components":[{"name":..,"samples":..,"wall_seconds":
  ///   ..,"cpu_seconds":..,"blocked_seconds":..,"allocs":..,
  ///   "alloc_bytes":..},...],"mutexes":[{"name":..,"acquisitions":..,
  ///   "contended":..,"wait_seconds":..,"wait_p99":..},...]}
  void write_json(std::ostream& out, const std::string& filter = "") const;

 private:
  Registry* const registry_;
  std::atomic<bool> enabled_{true};
  /// Fast-path sampling stride, odd on purpose: a warm request calls
  /// should_sample() a fixed number of times (canonicalize, then the
  /// submit profile), so an even period would parity-lock every hit
  /// onto one call site and starve the other. 17 keeps the CPU-clock
  /// syscalls to ~1 in 17 gate checks, well under the 5% A/B budget,
  /// while rotating hits across the fast-path sites.
  std::atomic<std::uint32_t> sample_period_{17};
  mutable std::mutex mutex_;
  /// unique_ptr slots: Component addresses stay stable across growth.
  std::map<std::string, std::unique_ptr<Component>> components_;
};

// ------------------------------------------------------- ProfiledMutex

/// std::mutex drop-in (BasicLockable + try_lock) with an optionally
/// attached contention probe. Without a probe the cost over a plain
/// mutex is one relaxed load. With one, the uncontended fast path adds
/// a try_lock + relaxed counter; only *contended* acquisitions pay for
/// a steady_clock read pair and a histogram record.
class ProfiledMutex {
 public:
  /// Shared counter handles: several mutexes may point at one probe (the
  /// cache attaches a single "cache_shard" probe to every shard, which
  /// aggregates instead of minting 2N histogram families).
  struct Probe {
    Counter* acquisitions = nullptr;
    Counter* contended = nullptr;
    Histogram* wait = nullptr;
  };

  /// Registers mutex_<name>_{acquisitions_total,contended_total} and
  /// mutex_<name>_wait_seconds and returns the resolved probe.
  static Probe make_probe(Registry& registry, const std::string& name);

  ProfiledMutex() = default;
  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

  /// Attach (nullptr detaches). The probe must outlive the mutex. Safe
  /// to call while other threads lock/unlock, but counts from before
  /// the attach are lost — attach at construction time in practice.
  void attach(const Probe* probe) noexcept {
    probe_.store(probe, std::memory_order_release);
  }

  void lock() {
    const Probe* const probe = probe_.load(std::memory_order_acquire);
    if (probe == nullptr) {
      mutex_.lock();
      return;
    }
    probe->acquisitions->add();
    if (mutex_.try_lock()) return;
    probe->contended->add();
    const auto wait_start = std::chrono::steady_clock::now();
    mutex_.lock();
    probe->wait->record(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wait_start)
                            .count());
  }

  bool try_lock() {
    if (!mutex_.try_lock()) return false;
    if (const Probe* const probe = probe_.load(std::memory_order_acquire)) {
      probe->acquisitions->add();
    }
    return true;
  }

  void unlock() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
  std::atomic<const Probe*> probe_{nullptr};
};

}  // namespace prts::obs
