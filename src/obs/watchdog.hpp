// Stall watchdog (src/obs/): a per-component heartbeat registry plus a
// monitor thread that flags components whose heartbeat age exceeds a
// threshold — the liveness half of the observability story. Latency
// histograms say how slow served requests were; the watchdog says when
// a component stopped serving at all (a batch runner wedged on a lock,
// a gossip thread that died, a frame handler stuck on a dead peer).
//
// Two component shapes, because "no heartbeat" only means "stuck" when
// a beat was due:
//   - on-demand components (expected_interval == 0) beat while doing
//     work and carry a *load* count (outstanding work items). They are
//     flagged only while load > 0 and the last beat is older than the
//     stall threshold: an idle engine is silent AND innocent, a busy
//     engine that stopped beating is wedged.
//   - periodic components (expected_interval > 0, e.g. a gossip timer)
//     are expected to beat every interval regardless of load; they are
//     flagged when the age exceeds max(periodic_factor * interval,
//     stall threshold).
//
// beat()/add_load() are single relaxed atomic stores — safe and cheap
// on any hot path. The monitor thread (or an on-demand check()) scans
// the registry, mirrors results into the metrics registry
// (watchdog_stalls_total, watchdog_stalled_components) and remembers
// which components are currently stalled so one stall episode counts
// once, not once per poll.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace prts::obs {

/// One component's liveness handle. Stable address for the watchdog's
/// lifetime; all methods are lock-free.
class Heartbeat {
 public:
  /// Progress happened now. Also remembers the largest inter-beat gap
  /// since the watchdog last looked: a periodic component that froze
  /// and recovered *between* two monitor polls still shows up as a
  /// missed-beat episode instead of racing the poll (see check()).
  void beat() noexcept {
    const std::int64_t now = now_ns();
    const std::int64_t previous =
        last_beat_ns_.exchange(now, std::memory_order_relaxed);
    if (previous == 0) return;  // registration beat: no gap yet
    const std::int64_t gap = now - previous;
    std::int64_t seen = max_gap_ns_.load(std::memory_order_relaxed);
    while (gap > seen && !max_gap_ns_.compare_exchange_weak(
                             seen, gap, std::memory_order_relaxed)) {
    }
  }

  /// Outstanding work items (on-demand components are only expected to
  /// beat while load > 0). Negative deltas floor at zero defensively.
  void add_load(std::int64_t delta) noexcept {
    load_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set_load(std::int64_t load) noexcept {
    load_.store(load, std::memory_order_relaxed);
  }

  std::int64_t load() const noexcept {
    return load_.load(std::memory_order_relaxed);
  }

  const std::string& name() const noexcept { return name_; }

  /// Seconds since the last beat (registration counts as a beat).
  double age_seconds() const noexcept {
    return static_cast<double>(now_ns() -
                               last_beat_ns_.load(std::memory_order_relaxed)) /
           1e9;
  }

 private:
  friend class Watchdog;

  static std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::string name_;
  double expected_interval_seconds_ = 0.0;  ///< > 0: periodic
  std::atomic<std::int64_t> last_beat_ns_{0};
  /// Largest inter-beat gap since the last check(); read-and-reset by
  /// the watchdog.
  std::atomic<std::int64_t> max_gap_ns_{0};
  std::atomic<std::int64_t> load_{0};
};

struct WatchdogConfig {
  /// On-demand components stall when busy and silent this long.
  double stall_threshold_seconds = 2.0;
  /// Periodic components stall at max(factor * expected_interval,
  /// stall_threshold_seconds).
  double periodic_factor = 4.0;
  /// Monitor thread poll period.
  double poll_interval_seconds = 0.25;
};

/// One currently-stalled component, as seen by a check.
struct Stall {
  std::string component;
  double age_seconds = 0.0;
  std::int64_t load = 0;
};

class Watchdog {
 public:
  /// `metrics` (optional, must outlive the watchdog) receives
  /// watchdog_stalls_total / watchdog_stalled_components /
  /// watchdog_components mirrors.
  explicit Watchdog(Registry* metrics = nullptr);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers (or looks up) a component by name. Re-registration
  /// returns the existing heartbeat refreshed — a revived server reuses
  /// its slot instead of leaking a stale one. The returned reference is
  /// stable for the watchdog's lifetime.
  Heartbeat& component(const std::string& name,
                       double expected_interval_seconds = 0.0);

  /// Scans every component against `config()` thresholds, updates the
  /// stall bookkeeping (a component entering the stalled state bumps
  /// stalls_total exactly once until it recovers) and returns the
  /// currently stalled set. Called by the monitor thread every poll,
  /// and usable directly for deterministic tests / stats rendering.
  std::vector<Stall> check();

  /// Starts the monitor thread (idempotent; reconfigures thresholds).
  void start(WatchdogConfig config);
  /// Stops the monitor thread; check() keeps working.
  void stop();

  /// Total stall *episodes* observed (a component counts again only
  /// after recovering).
  std::uint64_t stalls_total() const;

  WatchdogConfig config() const;

  /// '{"stalls_total":N,"components":N,"stalled":[{"component":..,
  ///   "age_seconds":..,"load":..},...]}' — runs a check() so the
  /// verdict is current.
  void write_json(std::ostream& out);

 private:
  Registry* const metrics_;
  Counter* stalls_counter_ = nullptr;      ///< non-null iff metrics_
  Gauge* stalled_gauge_ = nullptr;
  Gauge* components_gauge_ = nullptr;

  mutable std::mutex mutex_;
  WatchdogConfig config_;
  /// unique_ptr slots: Heartbeat addresses stay stable across growth.
  std::vector<std::unique_ptr<Heartbeat>> components_;
  std::vector<bool> stalled_;  ///< parallel to components_
  std::uint64_t stalls_total_ = 0;

  std::condition_variable monitor_cv_;
  bool monitor_stop_ = false;
  std::thread monitor_;
};

}  // namespace prts::obs
