#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>
#include <utility>

namespace prts::obs {
namespace {

/// splitmix64 — cheap, well-mixed; two ranks seeding from different
/// clocks/addresses will not mint colliding ids in any realistic run.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Tracer::Tracer(TracerConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.slow_capacity == 0) config_.slow_capacity = 1;
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  salt_ = mix64(static_cast<std::uint64_t>(now.count()) ^
                reinterpret_cast<std::uintptr_t>(this));
}

std::uint64_t Tracer::start(const std::string& label) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t id = 0;
  // 0 is the "no trace" sentinel; skip it in the astronomically
  // unlikely case the mix lands there.
  while (id == 0) id = mix64(salt_ ^ ++sequence_);
  ring_.push_back(Trace{id, label, {}, 0.0, false, false});
  index_[id] = std::prev(ring_.end());
  evict_locked();
  return id;
}

void Tracer::start_with_id(std::uint64_t id, const std::string& label) {
  if (id == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(id);
  if (it != index_.end()) {
    if (it->second->label.empty()) it->second->label = label;
    return;
  }
  ring_.push_back(Trace{id, label, {}, 0.0, false, false});
  index_[id] = std::prev(ring_.end());
  evict_locked();
}

void Tracer::record(std::uint64_t id, Span span) {
  if (id == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  it->second->spans.push_back(std::move(span));
}

void Tracer::record(std::uint64_t id, const std::string& name, int rank,
                    double start_seconds, double duration_seconds) {
  record(id, Span{name, rank, start_seconds, duration_seconds});
}

void Tracer::finish(std::uint64_t id, double total_seconds) {
  if (id == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  Trace& trace = *it->second;
  trace.finished = true;
  // Upsert: an amended finish (failover) extends the total.
  if (total_seconds > trace.total_seconds) trace.total_seconds = total_seconds;
  if (trace.total_seconds >= config_.slow_threshold_seconds &&
      !trace.slow_logged) {
    mark_slow_locked(trace);
  }
}

bool Tracer::find(std::uint64_t id, Trace& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  out = *it->second;
  return true;
}

std::vector<Trace> Tracer::recent(std::size_t limit) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Trace> out;
  out.reserve(std::min(limit, ring_.size()));
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < limit;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

std::vector<Trace> Tracer::slow(std::size_t limit) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Trace> out;
  out.reserve(std::min(limit, slow_ring_.size()));
  for (auto it = slow_ring_.rbegin();
       it != slow_ring_.rend() && out.size() < limit; ++it) {
    out.push_back(*it);
  }
  return out;
}

std::uint64_t Tracer::slow_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slow_count_;
}

void Tracer::evict_locked() {
  while (ring_.size() > config_.capacity) {
    index_.erase(ring_.front().id);
    ring_.pop_front();
  }
}

void Tracer::mark_slow_locked(Trace& trace) {
  trace.slow_logged = true;
  ++slow_count_;
  slow_ring_.push_back(trace);
  while (slow_ring_.size() > config_.slow_capacity) slow_ring_.pop_front();
  if (config_.slow_log != nullptr) {
    std::ostream& log = *config_.slow_log;
    log << "[slow-trace] id=" << id_to_hex(trace.id);
    if (!trace.label.empty()) log << " label=" << trace.label;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), " total_ms=%.3f",
                  trace.total_seconds * 1e3);
    log << buffer << " spans=" << trace.spans.size();
    for (const Span& span : trace.spans) {
      std::snprintf(buffer, sizeof(buffer), " %s@r%d=%.3fms",
                    span.name.c_str(), span.rank,
                    span.duration_seconds * 1e3);
      log << buffer;
    }
    log << "\n";
  }
}

std::string id_to_hex(std::uint64_t id) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

std::uint64_t id_from_hex(const std::string& text) {
  if (text.empty() || text.size() > 16) return 0;
  std::uint64_t id = 0;
  for (char c : text) {
    id <<= 4;
    if (c >= '0' && c <= '9') {
      id |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      id |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      id |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return 0;
    }
  }
  return id;
}


void Telemetry::init() {
  // Wall-clock birth time: a scraper comparing two expositions tells a
  // counter reset apart from corruption by whether this moved.
  metrics.gauge("process_start_time_seconds")
      .set(std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
               .count());
  recorder.set_observer(
      [this](const FlightRecorder::Tick& tick) { alerts.evaluate(tick); });
}

}  // namespace prts::obs
