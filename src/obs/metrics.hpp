// The fabric's metrics layer (bottom of src/obs/): named monotonic
// counters, gauges, and fixed-bucket log-scale latency histograms
// behind one string-keyed registry, dependency-free and safe to record
// into from any thread.
//
// Design for the hot path: a component resolves its Counter/Histogram
// references ONCE (registration takes the registry mutex) and then
// records lock-free — every record is a relaxed atomic add into a
// fixed bucket array, so instrumenting a cache hit costs a few
// nanoseconds, not a lock. References returned by the registry are
// stable for the registry's lifetime.
//
// Histograms cover 1 microsecond .. ~100 seconds in 10 buckets per
// decade (ratio 10^0.1 ~ 1.26x), which brackets any quantile to ~26%
// relative error — tight enough to tell a 2ms p99 from a 20ms one,
// coarse enough that a histogram is 81 words. Extraction interpolates
// within the bucket. Snapshots can atomically reset (each recorded
// value lands in exactly one snapshot), the semantics a periodic
// scraper wants.
//
// Exposition: write_json emits one JSON object (counters, gauges,
// histogram quantiles); write_prometheus emits the text format
// (counter/gauge lines plus cumulative _bucket/_sum/_count series) so
// any rank can be scraped by standard tooling.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace prts::obs {

/// A monotonic counter. add() is lock-free and relaxed — counters are
/// statistics, not synchronization.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Snapshot-and-reset: returns the value and zeroes the counter in
  /// one atomic step (no increment is lost or double-counted).
  std::uint64_t exchange(std::uint64_t reset_to = 0) noexcept {
    return value_.exchange(reset_to, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A last-writer-wins instantaneous value.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log-scale latency histogram with lock-free recording.
class Histogram {
 public:
  /// Finite bucket upper bounds: kFirstBound * 10^(i/kBucketsPerDecade)
  /// for i in [0, kFiniteBuckets); one overflow bucket above.
  static constexpr double kFirstBound = 1e-6;  ///< seconds
  static constexpr std::size_t kBucketsPerDecade = 10;
  static constexpr std::size_t kFiniteBuckets = 80;  ///< up to ~100 s
  static constexpr std::size_t kBucketCount = kFiniteBuckets + 1;

  /// Upper bound of bucket `index` (+inf for the overflow bucket).
  /// Bucket `index` covers (upper_bound(index-1), upper_bound(index)].
  static double upper_bound(std::size_t index) noexcept;

  /// The bucket a value lands in (values <= 0 land in bucket 0).
  static std::size_t bucket_index(double seconds) noexcept;

  /// Lock-free: one relaxed atomic add per call.
  void record(double seconds) noexcept;

  struct Snapshot {
    std::array<std::uint64_t, kBucketCount> counts{};
    std::uint64_t count = 0;  ///< sum of counts
    double sum = 0.0;         ///< sum of recorded seconds

    /// Quantile estimate (q in [0,1]) by linear interpolation inside
    /// the holding bucket; 0 when empty. The overflow bucket reports
    /// the largest finite bound.
    double quantile(double q) const noexcept;
    double mean() const noexcept { return count ? sum / count : 0.0; }

    /// Adds `other`'s buckets into this snapshot. Because buckets are
    /// fixed and identical across all histograms, aggregating N ranks'
    /// snapshots yields exactly the histogram a single rank would have
    /// recorded from the union of their samples — the basis for
    /// fleet-wide quantiles.
    void merge(const Snapshot& other) noexcept;

    /// The per-window difference `this - earlier` (counts clamped at
    /// zero against torn reads): what was recorded between two
    /// cumulative snapshots. The flight recorder's per-tick view.
    Snapshot delta_since(const Snapshot& earlier) const noexcept;
  };

  /// Consistent-enough snapshot (each bucket read atomically).
  Snapshot snapshot() const noexcept;

  /// Snapshot that zeroes the histogram: every record() lands in
  /// exactly one snapshot's bucket counts, so periodic scrapes
  /// partition the traffic with nothing lost or double-counted.
  Snapshot snapshot_and_reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> counts_{};
  std::atomic<double> sum_{0.0};
};

/// A point-in-time copy of every metric in a Registry — the unit the
/// flight recorder diffs tick over tick, and what a cross-rank
/// aggregator merges.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
};

/// The string-keyed registry. Registration (counter/gauge/histogram)
/// takes a mutex and returns a stable reference; resolve once, record
/// forever. Metric names should be prometheus-shaped
/// ([a-zA-Z_][a-zA-Z0-9_]*); exposition replaces offending characters
/// with '_'.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Non-destructive copy of every metric's current value (counters and
  /// histograms stay cumulative — scrapers and the flight recorder can
  /// coexist because nobody resets shared state).
  RegistrySnapshot snapshot() const;

  /// One JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"mean":..,
  ///                          "p50":..,"p90":..,"p99":..,"p999":..}}}
  void write_json(std::ostream& out) const;

  /// Prometheus text exposition: every counter/gauge as one sample,
  /// every histogram as cumulative _bucket{le="..."} series plus _sum,
  /// _count and quantile gauges (_p50/_p90/_p99/_p999).
  void write_prometheus(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  // std::map: exposition output is sorted and stable across runs.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace prts::obs
