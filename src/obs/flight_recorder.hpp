// Flight recorder (src/obs/): a bounded ring of periodic Registry
// snapshots, so a running rank's last N seconds of behavior are always
// reconstructable — the question "what was happening right before the
// latency spike" is answered from memory already on the rank, not from
// an external scrape pipeline that happened to be running.
//
// Every tick the recorder takes one non-destructive Registry::snapshot
// and stores the *delta* against the previous tick: counter increments,
// current gauge values, and per-window histogram quantiles (computed
// from the bucket-count difference, so a tick's p99 describes that
// tick's traffic, not the process lifetime). Nothing in the registry is
// reset — prometheus scrapes and the recorder coexist.
//
// Exposed via the line protocol's `timeseries [n]` command and driven
// either by the built-in tick thread (start/stop) or manually
// (tick_now) for deterministic tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <condition_variable>
#include <vector>

#include "obs/metrics.hpp"

namespace prts::obs {

struct FlightRecorderConfig {
  double interval_seconds = 1.0;  ///< tick thread period
  std::size_t capacity = 120;     ///< ring size (ticks kept)
};

class FlightRecorder {
 public:
  /// One per-tick window. Counters and histograms are deltas over the
  /// tick; gauges are the value at tick time. Zero-delta counters and
  /// empty histogram windows are dropped — a tick names what moved.
  struct Tick {
    std::uint64_t seq = 0;           ///< 0-based tick number (never wraps)
    double uptime_seconds = 0.0;     ///< since recorder construction
    double interval_seconds = 0.0;   ///< actual time since previous tick
    std::map<std::string, std::uint64_t> counter_deltas;
    std::map<std::string, double> gauges;
    struct HistogramWindow {
      std::uint64_t count = 0;
      double mean = 0.0;
      double p50 = 0.0;
      double p90 = 0.0;
      double p99 = 0.0;
      double p999 = 0.0;
    };
    std::map<std::string, HistogramWindow> histograms;
  };

  /// `registry` must outlive the recorder. Inert until start() or the
  /// first tick_now().
  explicit FlightRecorder(Registry* registry);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void configure(FlightRecorderConfig config);
  FlightRecorderConfig config() const;

  /// Starts the tick thread (idempotent: restarts with the current
  /// config).
  void start();
  void stop();
  bool running() const;

  /// Takes one tick immediately (also what the tick thread calls).
  void tick_now();

  /// Called with a copy of every completed tick, outside the recorder's
  /// lock (the observer may touch the registry). One observer; set
  /// before start() — the alert engine hook in obs::Telemetry.
  void set_observer(std::function<void(const Tick&)> observer);

  /// Oldest-first copies of the most recent `limit` ticks (the whole
  /// ring when limit == 0 or exceeds it).
  std::vector<Tick> recent(std::size_t limit = 0) const;

  /// Ticks taken over the recorder's lifetime (>= ring size).
  std::uint64_t total_ticks() const;

 private:
  Registry* const registry_;
  const std::chrono::steady_clock::time_point started_at_;

  mutable std::mutex mutex_;
  FlightRecorderConfig config_;
  std::function<void(const Tick&)> observer_;
  RegistrySnapshot previous_;      ///< cumulative baseline of last tick
  double previous_uptime_ = 0.0;
  std::deque<Tick> ring_;          ///< oldest at front
  std::uint64_t total_ticks_ = 0;

  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;
  std::thread ticker_;
};

}  // namespace prts::obs
