#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "common/thread_pool.hpp"

namespace prts::sim {
namespace {

bool attempt(Rng& rng, double rate, double duration) {
  if (rate <= 0.0 || duration <= 0.0) return true;
  return rng.bernoulli(std::exp(-rate * duration));
}

}  // namespace

bool sample_routing_success(Rng& rng, const TaskChain& chain,
                            const Platform& platform,
                            const Mapping& mapping) {
  const IntervalPartition& part = mapping.partition();
  for (std::size_t j = 0; j < part.interval_count(); ++j) {
    const double work = part.work(chain, j);
    const double in_size = j == 0 ? 0.0 : part.out_size(chain, j - 1);
    const double out_size = part.out_size(chain, j);
    bool stage_ok = false;
    for (std::size_t u : mapping.processors(j)) {
      const bool branch_ok =
          attempt(rng, platform.link_failure_rate(),
                  platform.comm_time(in_size)) &&
          attempt(rng, platform.failure_rate(u), work / platform.speed(u)) &&
          attempt(rng, platform.link_failure_rate(),
                  platform.comm_time(out_size));
      stage_ok = stage_ok || branch_ok;
    }
    if (!stage_ok) return false;
  }
  return true;
}

bool sample_no_routing_success(Rng& rng, const TaskChain& chain,
                               const Platform& platform,
                               const Mapping& mapping) {
  const IntervalPartition& part = mapping.partition();
  const std::size_t m = part.interval_count();
  std::vector<std::uint8_t> valid;  // stage j: which replicas hold data

  for (std::size_t j = 0; j < m; ++j) {
    const auto procs = mapping.processors(j);
    const double work = part.work(chain, j);
    const double out_comm = platform.comm_time(part.out_size(chain, j));
    std::vector<std::uint8_t> next(procs.size(), 0);
    for (std::size_t v = 0; v < procs.size(); ++v) {
      bool received;
      if (j == 0) {
        received = true;  // from the environment, o_0 = 0
      } else {
        received = false;
        const double in_comm =
            platform.comm_time(part.out_size(chain, j - 1));
        for (std::size_t u = 0; u < valid.size(); ++u) {
          // Every valid sender attempts its own transfer to v.
          if (valid[u] &&
              attempt(rng, platform.link_failure_rate(), in_comm)) {
            received = true;
            // Keep sampling the remaining transfers? Not needed: failures
            // are independent and unobserved branches do not bias the
            // result, so short-circuit.
            break;
          }
        }
      }
      bool ok = received &&
                attempt(rng, platform.failure_rate(procs[v]),
                        work / platform.speed(procs[v]));
      if (ok && j + 1 == m && out_comm > 0.0) {
        // Environment delivery folded into the last stage.
        ok = attempt(rng, platform.link_failure_rate(), out_comm);
      }
      next[v] = ok ? 1 : 0;
    }
    valid = std::move(next);
  }
  return std::any_of(valid.begin(), valid.end(),
                     [](std::uint8_t v) { return v != 0; });
}

MonteCarloResult estimate_reliability(const TaskChain& chain,
                                      const Platform& platform,
                                      const Mapping& mapping,
                                      std::size_t trials, std::uint64_t seed,
                                      bool use_routing, std::size_t threads) {
  ThreadPool pool(threads);
  const std::size_t workers = pool.thread_count();
  const std::size_t chunk = (trials + workers - 1) / std::max<std::size_t>(
                                workers, 1);
  std::atomic<std::size_t> successes{0};

  pool.parallel_for(workers, [&](std::size_t w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(trials, begin + chunk);
    if (begin >= end) return;
    std::uint64_t stream = seed;
    for (std::size_t skip = 0; skip <= w; ++skip) splitmix64_next(stream);
    Rng rng(stream);
    std::size_t local = 0;
    for (std::size_t t = begin; t < end; ++t) {
      const bool ok = use_routing
                          ? sample_routing_success(rng, chain, platform,
                                                   mapping)
                          : sample_no_routing_success(rng, chain, platform,
                                                      mapping);
      if (ok) ++local;
    }
    successes.fetch_add(local);
  });

  MonteCarloResult result;
  result.trials = trials;
  result.successes = successes.load();
  result.estimate = trials == 0 ? 0.0
                                : static_cast<double>(result.successes) /
                                      static_cast<double>(trials);
  if (trials > 0) result.ci95 = wilson_interval(result.successes, trials);
  return result;
}

std::optional<double> sample_interval_completion(
    Rng& rng, const Platform& platform, double work,
    std::span<const std::size_t> procs) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t u : procs) {
    const double duration = work / platform.speed(u);
    if (attempt(rng, platform.failure_rate(u), duration)) {
      best = std::min(best, duration);
    }
  }
  if (!std::isfinite(best)) return std::nullopt;
  return best;
}

}  // namespace prts::sim
