// Discrete-event simulation of the pipelined execution of a mapping:
// periodic data sets flow through the replicated intervals, computations
// and communications occupy their processors/ports for their real
// durations, and every operation may fail transiently (fail-silent, hot
// failure model of Section 2.4: a failed operation simply delivers
// nothing).
//
// The simulator exercises the runtime semantics the paper only describes
// textually: overlap of communication and computation (Section 2.2),
// bounded multiport-K sending ports, routing operations between intervals
// (Section 4, zero duration and perfectly reliable) or, alternatively,
// direct all-to-all replica communication (the no-routing Figure 4
// semantics), and the deadline structure of the introduction (data set k
// has deadline k*P + L).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

#include "common/stats.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts::sim {

/// One simulator occurrence, for tracing/gantt purposes. Events are
/// emitted in causal order per data set and stage; they are NOT globally
/// sorted by time (sort by `time` downstream if needed).
struct TraceEvent {
  enum class Kind : unsigned char {
    kRelease,        ///< data set enters the system
    kComputeStart,   ///< replica starts computing (processor set)
    kComputeEnd,     ///< replica finished (success = no transient fault)
    kTransferStart,  ///< link transfer begins (processor = sender or router)
    kTransferEnd,    ///< link transfer done (success = no transient fault)
    kComplete,       ///< data set delivered its final result
  };

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  Kind kind = Kind::kRelease;
  double time = 0.0;
  std::size_t dataset = 0;
  std::size_t stage = kNone;      ///< interval index, when applicable
  std::size_t processor = kNone;  ///< processor id, when applicable
  bool success = true;            ///< operation outcome
};

/// Callback receiving every trace event; must be cheap (called inline).
using TraceObserver = std::function<void(const TraceEvent&)>;

/// Simulation parameters.
struct SimulationConfig {
  /// Number of data sets pushed through the pipeline.
  std::size_t dataset_count = 1000;

  /// Spacing between data-set releases (the input period P).
  double input_period = 0.0;

  /// Route inter-interval traffic through routing operations (paper
  /// model); false simulates direct all-to-all replica communication.
  bool use_routing = true;

  /// Sample transient failures; false gives the fault-free timing.
  bool inject_failures = true;

  /// Deadline slack L: data set k has deadline k*input_period + L.
  /// Infinite by default (no deadline accounting).
  double latency_deadline = std::numeric_limits<double>::infinity();

  /// RNG seed for the failure process.
  std::uint64_t seed = 1;

  /// Optional event tracer (nullptr: tracing disabled, zero overhead).
  const TraceObserver* observer = nullptr;
};

/// Aggregated outcome of one simulation run.
struct SimulationResult {
  std::size_t datasets = 0;
  std::size_t successes = 0;        ///< data sets that produced a result
  std::size_t deadline_misses = 0;  ///< successes completing after deadline
  RunningStats latency;             ///< completion - release, successes only
  RunningStats inter_completion;    ///< gap between consecutive completions
  double makespan = 0.0;            ///< last event time

  double success_rate() const noexcept {
    return datasets == 0
               ? 0.0
               : static_cast<double>(successes) / static_cast<double>(datasets);
  }
};

/// Runs the discrete-event simulation of `mapping` under `config`.
/// The mapping must be valid for the platform.
SimulationResult simulate_pipeline(const TaskChain& chain,
                                   const Platform& platform,
                                   const Mapping& mapping,
                                   const SimulationConfig& config);

}  // namespace prts::sim
