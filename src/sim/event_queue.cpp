#include "sim/event_queue.hpp"

#include <utility>

namespace prts::sim {

void EventQueue::schedule(double time, std::function<void()> fire) {
  heap_.push(Event{time, next_sequence_++, std::move(fire)});
}

double EventQueue::run_next() {
  // Moving out of the top of a priority_queue requires a const_cast; the
  // element is popped immediately afterwards, so the mutation is safe.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  event.fire();
  return event.time;
}

double EventQueue::run_all() {
  double last = 0.0;
  while (!heap_.empty()) last = run_next();
  return last;
}

}  // namespace prts::sim
