#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace prts::sim {
namespace {

/// The K outgoing channels of one sender (processor or routing operation):
/// a transfer grabs the earliest-free channel and occupies it for the
/// transfer duration, serializing sends beyond the multiport bound.
class PortPool {
 public:
  PortPool() = default;
  explicit PortPool(unsigned channels) : free_at_(channels, 0.0) {}

  /// Starts a transfer that becomes ready at `ready`; returns its start
  /// time (>= ready) and occupies the chosen channel until start+duration.
  double acquire(double ready, double duration) {
    auto earliest = std::min_element(free_at_.begin(), free_at_.end());
    const double start = std::max(ready, *earliest);
    *earliest = start + duration;
    return start;
  }

 private:
  std::vector<double> free_at_;
};

/// Full simulation state; events are closures over this object.
class Simulator {
 public:
  Simulator(const TaskChain& chain, const Platform& platform,
            const Mapping& mapping, const SimulationConfig& config)
      : chain_(chain),
        platform_(platform),
        mapping_(mapping),
        config_(config),
        rng_(config.seed),
        stage_count_(mapping.interval_count()),
        proc_free_(platform.processor_count(), 0.0),
        proc_ports_(platform.processor_count(),
                    PortPool(platform.max_replication())),
        router_ports_(stage_count_ > 0 ? stage_count_ - 1 : 0,
                      PortPool(platform.max_replication())) {
    const IntervalPartition& part = mapping.partition();
    stage_work_.reserve(stage_count_);
    stage_out_comm_.reserve(stage_count_);
    for (std::size_t j = 0; j < stage_count_; ++j) {
      stage_work_.push_back(part.work(chain, j));
      stage_out_comm_.push_back(
          platform.comm_time(part.out_size(chain, j)));
    }
    const std::size_t d = config.dataset_count;
    release_.resize(d);
    completion_.assign(d, -1.0);
    router_done_.assign(d * std::max<std::size_t>(stage_count_ - 1, 1),
                        0);
    std::size_t replica_slots = 0;
    stage_offset_.reserve(stage_count_);
    for (std::size_t j = 0; j < stage_count_; ++j) {
      stage_offset_.push_back(replica_slots);
      replica_slots += mapping.processors(j).size();
    }
    computed_.assign(d * replica_slots, 0);
    replica_slots_ = replica_slots;
  }

  void emit(TraceEvent::Kind kind, double time, std::size_t dataset,
            std::size_t stage, std::size_t processor, bool success) {
    if (config_.observer == nullptr || !*config_.observer) return;
    TraceEvent event;
    event.kind = kind;
    event.time = time;
    event.dataset = dataset;
    event.stage = stage;
    event.processor = processor;
    event.success = success;
    (*config_.observer)(event);
  }

  SimulationResult run() {
    for (std::size_t d = 0; d < config_.dataset_count; ++d) {
      const double t = static_cast<double>(d) * config_.input_period;
      release_[d] = t;
      queue_.schedule(t, [this, d] { release_dataset(d); });
    }
    const double makespan = queue_.run_all();

    SimulationResult result;
    result.datasets = config_.dataset_count;
    result.makespan = makespan;
    std::vector<double> completions;
    for (std::size_t d = 0; d < config_.dataset_count; ++d) {
      if (completion_[d] < 0.0) continue;
      ++result.successes;
      result.latency.add(completion_[d] - release_[d]);
      if (completion_[d] > release_[d] + config_.latency_deadline) {
        ++result.deadline_misses;
      }
      completions.push_back(completion_[d]);
    }
    std::sort(completions.begin(), completions.end());
    for (std::size_t i = 1; i < completions.size(); ++i) {
      result.inter_completion.add(completions[i] - completions[i - 1]);
    }
    return result;
  }

 private:
  bool attempt(double rate, double duration) {
    if (!config_.inject_failures || rate <= 0.0) return true;
    return rng_.bernoulli(std::exp(-rate * duration));
  }

  std::uint8_t& computed_flag(std::size_t d, std::size_t j, std::size_t v) {
    return computed_[d * replica_slots_ + stage_offset_[j] + v];
  }

  void release_dataset(std::size_t d) {
    const double t = release_[d];
    emit(TraceEvent::Kind::kRelease, t, d, TraceEvent::kNone,
         TraceEvent::kNone, true);
    for (std::size_t v = 0; v < mapping_.processors(0).size(); ++v) {
      input_arrival(d, 0, v, t);
    }
  }

  /// A valid copy of the stage-j input reaches replica v at time t.
  void input_arrival(std::size_t d, std::size_t j, std::size_t v, double t) {
    std::uint8_t& done = computed_flag(d, j, v);
    if (done) return;  // duplicate arrival (no-routing all-to-all)
    done = 1;
    const std::size_t proc = mapping_.processors(j)[v];
    const double duration = stage_work_[j] / platform_.speed(proc);
    const double start = std::max(t, proc_free_[proc]);
    const double end = start + duration;
    proc_free_[proc] = end;
    const bool success = attempt(platform_.failure_rate(proc), duration);
    emit(TraceEvent::Kind::kComputeStart, start, d, j, proc, true);
    emit(TraceEvent::Kind::kComputeEnd, end, d, j, proc, success);
    if (!success) return;  // fail-silent: nothing is produced
    queue_.schedule(end, [this, d, j, v, end] { output_ready(d, j, v, end); });
  }

  /// Replica v of stage j finished computing dataset d successfully at t.
  void output_ready(std::size_t d, std::size_t j, std::size_t v, double t) {
    const std::size_t proc = mapping_.processors(j)[v];
    if (j + 1 == stage_count_) {
      if (stage_out_comm_[j] > 0.0) {
        // Environment delivery through the replica's own port.
        const double start = proc_ports_[proc].acquire(t, stage_out_comm_[j]);
        const double end = start + stage_out_comm_[j];
        const bool sent =
            attempt(platform_.link_failure_rate(), stage_out_comm_[j]);
        emit(TraceEvent::Kind::kTransferStart, start, d, j, proc, true);
        emit(TraceEvent::Kind::kTransferEnd, end, d, j, proc, sent);
        if (sent) {
          queue_.schedule(end, [this, d, end] { complete(d, end); });
        }
      } else {
        complete(d, t);
      }
      return;
    }
    const double comm = stage_out_comm_[j];
    if (config_.use_routing) {
      const double start = proc_ports_[proc].acquire(t, comm);
      const double end = start + comm;
      const bool sent = attempt(platform_.link_failure_rate(), comm);
      emit(TraceEvent::Kind::kTransferStart, start, d, j, proc, true);
      emit(TraceEvent::Kind::kTransferEnd, end, d, j, proc, sent);
      if (sent) {
        queue_.schedule(end, [this, d, j, end] { router_arrival(d, j, end); });
      }
    } else {
      // Direct all-to-all: one transfer per receiving replica.
      const std::size_t receivers = mapping_.processors(j + 1).size();
      for (std::size_t w = 0; w < receivers; ++w) {
        const double start = proc_ports_[proc].acquire(t, comm);
        const double end = start + comm;
        const bool sent = attempt(platform_.link_failure_rate(), comm);
        emit(TraceEvent::Kind::kTransferStart, start, d, j, proc, true);
        emit(TraceEvent::Kind::kTransferEnd, end, d, j, proc, sent);
        if (sent) {
          queue_.schedule(
              end, [this, d, j, w, end] { input_arrival(d, j + 1, w, end); });
        }
      }
    }
  }

  /// The routing operation after stage j received a valid copy at t.
  void router_arrival(std::size_t d, std::size_t j, double t) {
    std::uint8_t& done = router_done_[d * (stage_count_ - 1) + j];
    if (done) return;  // the data is already being forwarded
    done = 1;
    const double comm = stage_out_comm_[j];
    const std::size_t receivers = mapping_.processors(j + 1).size();
    for (std::size_t w = 0; w < receivers; ++w) {
      const double start = router_ports_[j].acquire(t, comm);
      const double end = start + comm;
      const bool sent = attempt(platform_.link_failure_rate(), comm);
      emit(TraceEvent::Kind::kTransferStart, start, d, j, TraceEvent::kNone,
           true);
      emit(TraceEvent::Kind::kTransferEnd, end, d, j, TraceEvent::kNone,
           sent);
      if (sent) {
        queue_.schedule(
            end, [this, d, j, w, end] { input_arrival(d, j + 1, w, end); });
      }
    }
  }

  void complete(std::size_t d, double t) {
    if (completion_[d] >= 0.0) return;
    completion_[d] = t;
    emit(TraceEvent::Kind::kComplete, t, d, TraceEvent::kNone,
         TraceEvent::kNone, true);
  }

  const TaskChain& chain_;
  const Platform& platform_;
  const Mapping& mapping_;
  const SimulationConfig& config_;
  Rng rng_;
  EventQueue queue_;

  std::size_t stage_count_;
  std::vector<double> stage_work_;
  std::vector<double> stage_out_comm_;
  std::vector<double> proc_free_;
  std::vector<PortPool> proc_ports_;
  std::vector<PortPool> router_ports_;

  std::vector<double> release_;
  std::vector<double> completion_;          // -1: not (yet) completed
  std::vector<std::uint8_t> router_done_;   // [dataset][stage]
  std::vector<std::uint8_t> computed_;      // [dataset][stage-replica slot]
  std::vector<std::size_t> stage_offset_;
  std::size_t replica_slots_ = 0;
};

}  // namespace

SimulationResult simulate_pipeline(const TaskChain& chain,
                                   const Platform& platform,
                                   const Mapping& mapping,
                                   const SimulationConfig& config) {
  Simulator simulator(chain, platform, mapping, config);
  return simulator.run();
}

}  // namespace prts::sim
