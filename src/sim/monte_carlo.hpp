// Monte-Carlo estimation of mapping reliability by direct failure
// sampling (no timing), used to validate the closed-form Eq. (9), the
// no-routing exact evaluators, and the expected-time formula Eq. (3)
// against the modeled semantics. Trials are independent (the hot transient
// failure model makes every data set an independent Bernoulli trial), so
// the work parallelizes embarrassingly across the thread pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts::sim {

/// Outcome of a reliability estimation.
struct MonteCarloResult {
  std::size_t trials = 0;
  std::size_t successes = 0;
  double estimate = 0.0;    ///< successes / trials
  ConfidenceInterval ci95;            ///< Wilson 95% interval for the reliability
};

/// One validity-only sample of a data set under the routing semantics
/// (Eq. (9) / Figure 5): every stage needs one replica whose
/// comm-in, compute, comm-out chain all succeed.
bool sample_routing_success(Rng& rng, const TaskChain& chain,
                            const Platform& platform, const Mapping& mapping);

/// One validity-only sample under the direct all-to-all semantics
/// (Figure 4, no routing operations); cross-checks
/// rbd::no_routing_reliability.
bool sample_no_routing_success(Rng& rng, const TaskChain& chain,
                               const Platform& platform,
                               const Mapping& mapping);

/// Estimates the mapping reliability over `trials` independent data sets,
/// split across `threads` workers (hardware concurrency when 0) with
/// independent deterministic substreams of `seed`.
MonteCarloResult estimate_reliability(const TaskChain& chain,
                                      const Platform& platform,
                                      const Mapping& mapping,
                                      std::size_t trials, std::uint64_t seed,
                                      bool use_routing = true,
                                      std::size_t threads = 0);

/// One sample of the completion time of an interval of weight `work`
/// replicated on `procs`: the finish time of the fastest replica whose
/// computation succeeds, or nullopt when every replica fails. Averaging
/// the non-null samples converges to Eq. (3).
std::optional<double> sample_interval_completion(
    Rng& rng, const Platform& platform, double work,
    std::span<const std::size_t> procs);

}  // namespace prts::sim
