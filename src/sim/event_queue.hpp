// A deterministic time-ordered event queue for the discrete-event
// simulator: ties in time are broken by insertion sequence so simulation
// runs are bit-reproducible for a fixed seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace prts::sim {

/// One scheduled occurrence: an opaque payload fired at a point in time.
struct Event {
  double time = 0.0;
  std::uint64_t sequence = 0;  ///< insertion order, breaks time ties
  std::function<void()> fire;
};

/// Min-heap of events ordered by (time, sequence).
class EventQueue {
 public:
  /// Schedules `fire` at `time` (must not precede the current time of a
  /// running simulation; not checked here).
  void schedule(double time, std::function<void()> fire);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the next event; only valid when not empty.
  double next_time() const { return heap_.top().time; }

  /// Pops and fires the next event, returning its time.
  double run_next();

  /// Runs events until the queue drains; returns the last event time
  /// (0 when the queue was empty).
  double run_all();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace prts::sim
