// Minimal POSIX TCP wrappers for the solve fabric (the lowest layer of
// src/net/): an RAII socket with all-or-nothing send and timeout-aware
// receive, a connect-with-timeout helper, and a listening socket whose
// accept loop can be woken from another thread.
//
// Deliberately dependency-free (raw sockets, no event loop, no external
// library): the fabric's connections are few and long-lived — one peer
// link per remote shard — so blocking IO on pool threads is the right
// complexity level, matching the blocking batch workers of
// src/service/engine.*.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace prts::net {

/// RAII wrapper around a connected TCP socket file descriptor.
/// Move-only; closing is idempotent. IO helpers never throw and never
/// raise SIGPIPE — failures (peer reset, timeout, EOF) surface as
/// `false` so callers treat every degradation uniformly.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  void close() noexcept;

  /// Wakes any thread blocked in recv/send on this socket (they fail),
  /// without releasing the descriptor — safe to call concurrently.
  void shutdown() noexcept;

  /// Blocking receive timeout for subsequent recv calls; <= 0 blocks
  /// forever. False when the option cannot be set.
  bool set_receive_timeout(double seconds) noexcept;

  /// Sends the whole buffer (looping over partial writes); false on any
  /// error. Retries EINTR.
  bool send_all(const void* data, std::size_t size) noexcept;

  /// Why a receive stopped short: a receive *timeout* (the peer is slow
  /// or wedged, but the connection may well be alive) is a different
  /// verdict from EOF or a hard error — the frame layer backs the two
  /// off differently.
  enum class RecvStatus {
    kOk,       ///< the requested bytes arrived
    kClosed,   ///< orderly EOF
    kTimeout,  ///< SO_RCVTIMEO elapsed (EAGAIN/EWOULDBLOCK)
    kError,    ///< any other socket error (reset, shutdown, ...)
  };

  /// Receives exactly `size` bytes; false on EOF, error or timeout.
  bool recv_all(void* data, std::size_t size) noexcept;

  /// recv_all with the failure reason surfaced.
  RecvStatus recv_exact(void* data, std::size_t size) noexcept;

  /// One recv call: true with got > 0 on data, false on EOF/error.
  bool recv_some(void* data, std::size_t capacity,
                 std::size_t& got) noexcept;

  /// recv_some with the failure reason surfaced (kOk implies got > 0).
  RecvStatus recv_some_status(void* data, std::size_t capacity,
                              std::size_t& got) noexcept;

 private:
  int fd_ = -1;
};

/// Connects to host:port with a bounded connect timeout (name resolution
/// via getaddrinfo, first address that answers wins). nullopt on
/// failure; the result has TCP_NODELAY set (frames are small
/// request/reply exchanges, Nagle only adds latency).
std::optional<Socket> tcp_connect(const std::string& host,
                                  std::uint16_t port,
                                  double timeout_seconds);

/// A listening TCP socket (loopback-or-any bind, SO_REUSEADDR).
/// close() from another thread wakes a blocked accept().
class Listener {
 public:
  Listener() = default;
  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;

  /// Binds and listens; `port` 0 picks an ephemeral port (see port()).
  /// nullopt when the address is taken or sockets are unavailable.
  static std::optional<Listener> open(std::uint16_t port);

  bool valid() const noexcept { return socket_.valid(); }

  /// The bound port (resolves ephemeral binds).
  std::uint16_t port() const noexcept { return port_; }

  /// Blocks for one connection; nullopt once the listener was closed.
  std::optional<Socket> accept() noexcept;

  /// Stops accepting and wakes blocked accept() calls.
  void close() noexcept;

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

}  // namespace prts::net
