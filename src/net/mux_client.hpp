// A pipelined request/reply client over ONE framed TCP connection:
// protocol v2 request-id multiplexing (net/frame.hpp), so many solves,
// pings, gossip digests and scrapes are in flight simultaneously where
// FrameClient carries exactly one.
//
// Shape (the classic async-transport trio): callers enqueue
// (frame, promise) pairs via call_async(); a writer thread drains the
// queue onto the socket, stamping each frame with a fresh 48-bit id; a
// dedicated reader thread demultiplexes out-of-order replies through an
// id -> promise map. Per-request deadlines are swept by the reader on a
// short receive-timeout tick, so an abandoned request resolves nullopt
// without poisoning the connection — unlike the lock-step client, a
// late reply is simply dropped by id, framing is never lost.
//
// Failure model, matching FrameClient so the router's failover path is
// unchanged: connection death (EOF, IO error, protocol garbage, or a
// peer gone silent past the reply timeout) fails ALL outstanding
// promises with nullopt — exactly once per waiter — and arms an
// exponential backoff window during which calls fail fast. Reply
// timeouts arm the gentler slow-peer backoff; refused connections the
// full one.
//
// Interop: on connect the client sends a v2 kPing. A v2 server echoes
// the id (mux mode); a v1 peer answers kBadVersion with a v1 kError and
// closes, and the client silently reconnects in v1 lock-step mode — the
// writer thread then performs one blocking exchange at a time, so mixed
// fleets survive a rolling upgrade.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/frame.hpp"
#include "net/frame_client.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace prts::net {

class MuxFrameClient {
 public:
  MuxFrameClient(std::string host, std::uint16_t port,
                 FrameClientConfig config = {});
  ~MuxFrameClient();

  MuxFrameClient(const MuxFrameClient&) = delete;
  MuxFrameClient& operator=(const MuxFrameClient&) = delete;

  const std::string& host() const noexcept { return host_; }
  std::uint16_t port() const noexcept { return port_; }

  /// Enqueues one exchange; the future resolves with the peer's reply,
  /// or nullopt on connect failure, connection death, deadline expiry,
  /// or fast-fail inside the backoff window. Never blocks on IO.
  /// The default deadline is config.reply_timeout_seconds.
  std::future<std::optional<Frame>> call_async(Frame request);

  /// Same with an explicit per-request deadline (seconds from now;
  /// <= 0 expires immediately, +inf never).
  std::future<std::optional<Frame>> call_async(Frame request,
                                               double deadline_seconds);

  /// Blocking convenience: call_async + get. Many threads may call
  /// concurrently; their exchanges share the connection in flight.
  std::optional<Frame> call(const Frame& request);

  /// True while calls would fail fast (inside the backoff window).
  /// Never waits behind in-flight IO.
  bool suspect() const;

  /// True when the peer negotiated down to v1 lock-step (no mux).
  bool peer_is_v1() const;

  FrameClientStats stats() const;

  /// Replies that matched no outstanding id (late arrivals after a
  /// deadline expiry, or a confused peer); dropped, connection kept.
  std::uint64_t unknown_replies() const;

  /// Drops the connection, failing all outstanding promises, and clears
  /// the backoff (next call reconnects immediately).
  void reset();

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    Frame frame;
    std::promise<std::optional<Frame>> promise;
    Clock::time_point deadline;
  };

  struct Pending {
    std::promise<std::optional<Frame>> promise;
    Clock::time_point deadline;
    Clock::time_point written;
  };

  /// Reader tick: bounds how stale a deadline sweep can be.
  static constexpr double kSweepIntervalSeconds = 0.05;

  void worker_loop();
  void reader_loop(std::shared_ptr<Socket> socket, std::uint64_t generation);

  /// Connect + version negotiation, called unlocked. On success returns
  /// the socket and sets `v1_mode`; nullopt sets `timeout` when the
  /// failure was a slow reply rather than a refused connection.
  std::shared_ptr<Socket> connect_and_negotiate(bool& v1_mode, bool& timeout);

  /// Sends the configured auth token on a fresh socket and waits for
  /// the server's kPong; true when no token is configured.
  bool authenticate(Socket& socket);

  /// All *_locked helpers require mutex_.
  void fail_connection_locked(std::uint64_t generation, bool timeout);
  void fail_queue_locked(bool fast);
  void arm_backoff_locked(bool timeout);
  void resolve_locked(Pending& pending, std::optional<Frame> reply);
  void update_depth_locked();
  void sweep_deadlines_locked(std::uint64_t generation);

  const std::string host_;
  const std::uint16_t port_;
  const FrameClientConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  Clock::time_point soonest_deadline_ = Clock::time_point::max();
  std::uint64_t next_id_ = 1;
  std::uint64_t generation_ = 0;  ///< bumped on every connection death
  bool stop_ = false;
  bool v1_mode_ = false;
  std::shared_ptr<Socket> conn_;  ///< null while disconnected
  Clock::time_point last_rx_{};   ///< last inbound frame on conn_
  double backoff_seconds_ = 0.0;
  Clock::time_point next_attempt_{};
  std::uint64_t jitter_state_;  ///< advanced per armed backoff window
  FrameClientStats stats_;
  std::uint64_t unknown_replies_ = 0;

  std::thread worker_;
  std::thread reader_;  ///< joined by the worker between connections

  obs::Counter* calls_counter_ = nullptr;
  obs::Counter* failures_counter_ = nullptr;
  obs::Counter* connects_counter_ = nullptr;
  obs::Counter* fast_failures_counter_ = nullptr;
  obs::Counter* suspects_counter_ = nullptr;
  obs::Counter* timeouts_counter_ = nullptr;
  obs::Counter* unknown_replies_counter_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Histogram* depth_histogram_ = nullptr;
};

}  // namespace prts::net
