#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

namespace prts::net {
namespace {

void set_nodelay(int fd) noexcept {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool Socket::set_receive_timeout(double seconds) noexcept {
  if (fd_ < 0) return false;
  struct timeval tv {};
  if (seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
  }
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

bool Socket::send_all(const void* data, std::size_t size) noexcept {
  const char* bytes = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a reset peer must yield an error, not SIGPIPE.
    const ssize_t sent = ::send(fd_, bytes, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool Socket::recv_all(void* data, std::size_t size) noexcept {
  return recv_exact(data, size) == RecvStatus::kOk;
}

Socket::RecvStatus Socket::recv_exact(void* data, std::size_t size) noexcept {
  char* bytes = static_cast<char*>(data);
  while (size > 0) {
    std::size_t got = 0;
    const RecvStatus status = recv_some_status(bytes, size, got);
    if (status != RecvStatus::kOk) return status;
    bytes += got;
    size -= got;
  }
  return RecvStatus::kOk;
}

bool Socket::recv_some(void* data, std::size_t capacity,
                       std::size_t& got) noexcept {
  return recv_some_status(data, capacity, got) == RecvStatus::kOk;
}

Socket::RecvStatus Socket::recv_some_status(void* data, std::size_t capacity,
                                            std::size_t& got) noexcept {
  got = 0;
  for (;;) {
    const ssize_t received = ::recv(fd_, data, capacity, 0);
    if (received > 0) {
      got = static_cast<std::size_t>(received);
      return RecvStatus::kOk;
    }
    if (received == 0) return RecvStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::kTimeout;
    return RecvStatus::kError;
  }
}

std::optional<Socket> tcp_connect(const std::string& host,
                                  std::uint16_t port,
                                  double timeout_seconds) {
  struct addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &results) != 0) {
    return std::nullopt;
  }

  Socket connected;
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    Socket candidate(fd);

    // Non-blocking connect bounded by poll: a dead host must cost
    // timeout_seconds, not the kernel's minutes-long SYN retry budget.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    bool ok = rc == 0;
    if (!ok && errno == EINPROGRESS) {
      struct pollfd pfd {};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int timeout_ms =
          timeout_seconds > 0.0
              ? static_cast<int>(timeout_seconds * 1000.0)
              : -1;
      if (::poll(&pfd, 1, timeout_ms) == 1) {
        int error = 0;
        socklen_t len = sizeof(error);
        ok = ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) == 0 &&
             error == 0;
      }
    }
    if (!ok) continue;
    ::fcntl(fd, F_SETFL, flags);
    set_nodelay(fd);
    connected = std::move(candidate);
    break;
  }
  ::freeaddrinfo(results);
  if (!connected.valid()) return std::nullopt;
  return connected;
}

std::optional<Listener> Listener::open(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  Socket socket(fd);

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    return std::nullopt;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    return std::nullopt;
  }

  Listener listener;
  listener.socket_ = std::move(socket);
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

std::optional<Socket> Listener::accept() noexcept {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return std::nullopt;  // listener closed or fatal error
  }
}

void Listener::close() noexcept {
  // shutdown() first: on Linux, close() alone does not reliably wake a
  // thread blocked in accept() on the same descriptor.
  socket_.shutdown();
  socket_.close();
}

}  // namespace prts::net
