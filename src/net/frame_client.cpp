#include "net/frame_client.hpp"

#include <algorithm>
#include <utility>

namespace prts::net {

FrameClient::FrameClient(std::string host, std::uint16_t port,
                         FrameClientConfig config)
    : host_(std::move(host)), port_(port), config_(std::move(config)) {
  // Resolve the registry counters once (registration locks); every
  // bump afterward is a lock-free relaxed add.
  if (config_.metrics != nullptr) {
    const std::string& prefix = config_.metrics_prefix;
    calls_counter_ = &config_.metrics->counter(prefix + "calls_total");
    failures_counter_ = &config_.metrics->counter(prefix + "failures_total");
    connects_counter_ = &config_.metrics->counter(prefix + "connects_total");
    fast_failures_counter_ =
        &config_.metrics->counter(prefix + "fast_failures_total");
    suspects_counter_ = &config_.metrics->counter(prefix + "suspects_total");
  }
}

bool FrameClient::ensure_connected_locked() {
  if (socket_.valid()) return true;
  if (backoff_seconds_ > 0.0 && Clock::now() < next_attempt_) {
    ++stats_.fast_failures;
    if (fast_failures_counter_) fast_failures_counter_->add();
    return false;
  }
  auto connected =
      tcp_connect(host_, port_, config_.connect_timeout_seconds);
  if (!connected) {
    mark_failed_locked();
    return false;
  }
  socket_ = std::move(*connected);
  socket_.set_receive_timeout(config_.reply_timeout_seconds);
  ++stats_.connects;
  if (connects_counter_) connects_counter_->add();
  return true;
}

void FrameClient::mark_failed_locked() {
  socket_.close();
  if (backoff_seconds_ == 0.0) {
    // Healthy -> suspect edge, not every failure inside the window.
    ++stats_.suspects;
    if (suspects_counter_) suspects_counter_->add();
  }
  backoff_seconds_ =
      backoff_seconds_ == 0.0
          ? config_.backoff_initial_seconds
          : std::min(backoff_seconds_ * 2.0, config_.backoff_max_seconds);
  next_attempt_ =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(backoff_seconds_));
}

std::optional<Frame> FrameClient::call(const Frame& request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.calls;
  if (calls_counter_) calls_counter_->add();
  if (!ensure_connected_locked()) {
    ++stats_.failures;
    if (failures_counter_) failures_counter_->add();
    return std::nullopt;
  }
  Frame reply;
  if (!write_frame(socket_, request) ||
      read_frame(socket_, reply, config_.max_payload) !=
          FrameReadStatus::kOk) {
    mark_failed_locked();
    ++stats_.failures;
    if (failures_counter_) failures_counter_->add();
    return std::nullopt;
  }
  backoff_seconds_ = 0.0;  // healthy again
  return reply;
}

bool FrameClient::suspect() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return backoff_seconds_ > 0.0 && Clock::now() < next_attempt_;
}

FrameClientStats FrameClient::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FrameClient::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  socket_.close();
  backoff_seconds_ = 0.0;
}

}  // namespace prts::net
