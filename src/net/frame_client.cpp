#include "net/frame_client.hpp"

#include <algorithm>
#include <utility>

namespace prts::net {

FrameClient::FrameClient(std::string host, std::uint16_t port,
                         FrameClientConfig config)
    : host_(std::move(host)), port_(port), config_(std::move(config)) {
  // Resolve the registry counters once (registration locks); every
  // bump afterward is a lock-free relaxed add.
  if (config_.metrics != nullptr) {
    const std::string& prefix = config_.metrics_prefix;
    calls_counter_ = &config_.metrics->counter(prefix + "calls_total");
    failures_counter_ = &config_.metrics->counter(prefix + "failures_total");
    connects_counter_ = &config_.metrics->counter(prefix + "connects_total");
    fast_failures_counter_ =
        &config_.metrics->counter(prefix + "fast_failures_total");
    suspects_counter_ = &config_.metrics->counter(prefix + "suspects_total");
    timeouts_counter_ = &config_.metrics->counter(prefix + "timeouts_total");
  }
}

bool FrameClient::ensure_connected_io_locked() {
  if (socket_.valid()) return true;
  {
    const std::lock_guard<std::mutex> state(state_mutex_);
    if (backoff_seconds_ > 0.0 && Clock::now() < next_attempt_) {
      ++stats_.fast_failures;
      if (fast_failures_counter_) fast_failures_counter_->add();
      return false;
    }
  }
  auto connected =
      tcp_connect(host_, port_, config_.connect_timeout_seconds);
  if (!connected) {
    mark_failed_io_locked(/*timeout=*/false);
    return false;
  }
  socket_ = std::move(*connected);
  socket_.set_receive_timeout(config_.reply_timeout_seconds);
  const std::lock_guard<std::mutex> state(state_mutex_);
  ++stats_.connects;
  if (connects_counter_) connects_counter_->add();
  return true;
}

void FrameClient::mark_failed_io_locked(bool timeout) {
  socket_.close();
  const std::lock_guard<std::mutex> state(state_mutex_);
  if (timeout) {
    ++stats_.timeouts;
    if (timeouts_counter_) timeouts_counter_->add();
  }
  if (backoff_seconds_ == 0.0) {
    // Healthy -> suspect edge, not every failure inside the window.
    ++stats_.suspects;
    if (suspects_counter_) suspects_counter_->add();
  }
  const double initial = timeout ? config_.backoff_timeout_initial_seconds
                                 : config_.backoff_initial_seconds;
  backoff_seconds_ =
      backoff_seconds_ == 0.0
          ? initial
          : std::min(backoff_seconds_ * 2.0, config_.backoff_max_seconds);
  next_attempt_ =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(backoff_seconds_));
}

std::optional<Frame> FrameClient::call(const Frame& request) {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  {
    const std::lock_guard<std::mutex> state(state_mutex_);
    ++stats_.calls;
    stats_.max_inflight = std::max<std::uint64_t>(stats_.max_inflight, 1);
    if (calls_counter_) calls_counter_->add();
  }
  if (!ensure_connected_io_locked()) {
    const std::lock_guard<std::mutex> state(state_mutex_);
    ++stats_.failures;
    if (failures_counter_) failures_counter_->add();
    return std::nullopt;
  }
  Frame reply;
  FrameReadStatus status = FrameReadStatus::kClosed;
  if (write_frame(socket_, request)) {
    status = read_frame(socket_, reply, config_.max_payload);
  }
  if (status != FrameReadStatus::kOk) {
    // A timed-out reply still poisons the connection (the late reply
    // would desynchronize the lock-step pairing), but it arms the
    // gentler slow-peer backoff instead of the refused-peer one.
    mark_failed_io_locked(status == FrameReadStatus::kTimeout);
    const std::lock_guard<std::mutex> state(state_mutex_);
    ++stats_.failures;
    if (failures_counter_) failures_counter_->add();
    return std::nullopt;
  }
  const std::lock_guard<std::mutex> state(state_mutex_);
  backoff_seconds_ = 0.0;  // healthy again
  return reply;
}

bool FrameClient::suspect() const {
  const std::lock_guard<std::mutex> state(state_mutex_);
  return backoff_seconds_ > 0.0 && Clock::now() < next_attempt_;
}

FrameClientStats FrameClient::stats() const {
  const std::lock_guard<std::mutex> state(state_mutex_);
  return stats_;
}

void FrameClient::reset() {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  socket_.close();
  const std::lock_guard<std::mutex> state(state_mutex_);
  backoff_seconds_ = 0.0;
}

}  // namespace prts::net
