#include "net/frame_client.hpp"

#include <algorithm>
#include <utility>

namespace prts::net {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t x = (state += 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double jittered_backoff(double seconds, double jitter_fraction,
                        std::uint64_t& state) {
  const double jitter = std::min(std::max(jitter_fraction, 0.0), 1.0);
  if (jitter == 0.0 || seconds <= 0.0) return seconds;
  // 53 uniform bits -> [0, 1) -> [1 - jitter, 1 + jitter).
  const double unit =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  return seconds * (1.0 - jitter + 2.0 * jitter * unit);
}

std::uint64_t jitter_seed_for(const std::string& host, std::uint16_t port) {
  // FNV-1a over "host:port"; forced non-zero so it never collides with
  // the "derive me" sentinel.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : host) {
    hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  hash = (hash ^ (port & 0xff)) * 1099511628211ULL;
  hash = (hash ^ (port >> 8)) * 1099511628211ULL;
  return hash == 0 ? 1 : hash;
}

FrameClient::FrameClient(std::string host, std::uint16_t port,
                         FrameClientConfig config)
    : host_(std::move(host)), port_(port), config_(std::move(config)) {
  jitter_state_ = config_.backoff_jitter_seed != 0
                      ? config_.backoff_jitter_seed
                      : jitter_seed_for(host_, port_);
  // Resolve the registry counters once (registration locks); every
  // bump afterward is a lock-free relaxed add.
  if (config_.metrics != nullptr) {
    const std::string& prefix = config_.metrics_prefix;
    calls_counter_ = &config_.metrics->counter(prefix + "calls_total");
    failures_counter_ = &config_.metrics->counter(prefix + "failures_total");
    connects_counter_ = &config_.metrics->counter(prefix + "connects_total");
    fast_failures_counter_ =
        &config_.metrics->counter(prefix + "fast_failures_total");
    suspects_counter_ = &config_.metrics->counter(prefix + "suspects_total");
    timeouts_counter_ = &config_.metrics->counter(prefix + "timeouts_total");
  }
}

bool FrameClient::ensure_connected_io_locked() {
  if (socket_.valid()) return true;
  {
    const std::lock_guard<std::mutex> state(state_mutex_);
    if (backoff_seconds_ > 0.0 && Clock::now() < next_attempt_) {
      ++stats_.fast_failures;
      if (fast_failures_counter_) fast_failures_counter_->add();
      return false;
    }
  }
  auto connected =
      tcp_connect(host_, port_, config_.connect_timeout_seconds);
  if (!connected) {
    mark_failed_io_locked(/*timeout=*/false);
    return false;
  }
  socket_ = std::move(*connected);
  socket_.set_receive_timeout(config_.reply_timeout_seconds);
  if (!config_.auth_token.empty()) {
    // Authenticate before anything else rides the connection; the
    // server rejects any other first frame when a token is configured.
    Frame auth;
    auth.type = FrameType::kAuth;
    auth.payload = config_.auth_token;
    Frame reply;
    if (!write_frame(socket_, auth) ||
        read_frame(socket_, reply, config_.max_payload) !=
            FrameReadStatus::kOk ||
        reply.type != FrameType::kPong) {
      mark_failed_io_locked(/*timeout=*/false);
      return false;
    }
  }
  const std::lock_guard<std::mutex> state(state_mutex_);
  ++stats_.connects;
  if (connects_counter_) connects_counter_->add();
  return true;
}

void FrameClient::mark_failed_io_locked(bool timeout) {
  socket_.close();
  const std::lock_guard<std::mutex> state(state_mutex_);
  if (timeout) {
    ++stats_.timeouts;
    if (timeouts_counter_) timeouts_counter_->add();
  }
  if (backoff_seconds_ == 0.0) {
    // Healthy -> suspect edge, not every failure inside the window.
    ++stats_.suspects;
    if (suspects_counter_) suspects_counter_->add();
  }
  const double initial = timeout ? config_.backoff_timeout_initial_seconds
                                 : config_.backoff_initial_seconds;
  backoff_seconds_ =
      backoff_seconds_ == 0.0
          ? initial
          : std::min(backoff_seconds_ * 2.0, config_.backoff_max_seconds);
  // The doubling state stays clean; only the armed window is jittered,
  // so restarted peers' clients de-synchronize without ever shortening
  // the asymptotic backoff.
  const double window =
      jittered_backoff(backoff_seconds_, config_.backoff_jitter, jitter_state_);
  next_attempt_ =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(window));
}

std::optional<Frame> FrameClient::call(const Frame& request) {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  {
    const std::lock_guard<std::mutex> state(state_mutex_);
    ++stats_.calls;
    stats_.max_inflight = std::max<std::uint64_t>(stats_.max_inflight, 1);
    if (calls_counter_) calls_counter_->add();
  }
  if (!ensure_connected_io_locked()) {
    const std::lock_guard<std::mutex> state(state_mutex_);
    ++stats_.failures;
    if (failures_counter_) failures_counter_->add();
    return std::nullopt;
  }
  Frame reply;
  FrameReadStatus status = FrameReadStatus::kClosed;
  if (write_frame(socket_, request)) {
    status = read_frame(socket_, reply, config_.max_payload);
  }
  if (status != FrameReadStatus::kOk) {
    // A timed-out reply still poisons the connection (the late reply
    // would desynchronize the lock-step pairing), but it arms the
    // gentler slow-peer backoff instead of the refused-peer one.
    mark_failed_io_locked(status == FrameReadStatus::kTimeout);
    const std::lock_guard<std::mutex> state(state_mutex_);
    ++stats_.failures;
    if (failures_counter_) failures_counter_->add();
    return std::nullopt;
  }
  const std::lock_guard<std::mutex> state(state_mutex_);
  backoff_seconds_ = 0.0;  // healthy again
  return reply;
}

bool FrameClient::suspect() const {
  const std::lock_guard<std::mutex> state(state_mutex_);
  return backoff_seconds_ > 0.0 && Clock::now() < next_attempt_;
}

FrameClientStats FrameClient::stats() const {
  const std::lock_guard<std::mutex> state(state_mutex_);
  return stats_;
}

void FrameClient::reset() {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  socket_.close();
  const std::lock_guard<std::mutex> state(state_mutex_);
  backoff_seconds_ = 0.0;
}

}  // namespace prts::net
