// A blocking request/reply client over one framed TCP connection, with
// lazy connect, automatic reconnect and exponential backoff.
//
// Failure model: any IO or protocol error closes the connection and
// arms a backoff window during which call() fails fast (the peer is
// *suspect*) instead of paying a connect timeout per request — exactly
// the degradation the shard router needs so a dead peer costs the
// fabric one timeout, not one per forwarded miss. A successful
// exchange resets the backoff.
//
// Thread safety: call() serializes callers on an IO mutex (one
// in-flight exchange per connection; replies are matched to requests by
// ordering). Health probes — suspect(), stats() — read a separate state
// mutex and never wait behind an in-flight round trip: the router polls
// suspect() on its submit path while solves are on the wire.
//
// For pipelined traffic (many in-flight exchanges on one connection)
// see MuxFrameClient in net/mux_client.hpp; this client stays the v1
// interop path and the simple tool-client.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace prts::net {

/// `seconds` scaled by a factor drawn uniformly from
/// [1 - jitter_fraction, 1 + jitter_fraction], advancing `state` with a
/// splitmix64 step — deterministic per seed (testable), different
/// across seeds (herd-breaking). jitter_fraction is clamped to [0, 1].
double jittered_backoff(double seconds, double jitter_fraction,
                        std::uint64_t& state);

/// A stable non-zero jitter seed derived from a peer address (used when
/// FrameClientConfig::backoff_jitter_seed is 0).
std::uint64_t jitter_seed_for(const std::string& host, std::uint16_t port);

struct FrameClientConfig {
  double connect_timeout_seconds = 2.0;
  /// Receive timeout per reply; covers the peer's solve time.
  double reply_timeout_seconds = 120.0;
  double backoff_initial_seconds = 0.2;
  /// Initial backoff after a *reply timeout*: the peer answered the
  /// connect, it is slow, not gone — back off more gently than a
  /// refused connection so one long solve does not eclipse a healthy
  /// peer for a full refusal window.
  double backoff_timeout_initial_seconds = 0.05;
  double backoff_max_seconds = 5.0;
  /// Each armed backoff window is multiplied by a factor drawn
  /// uniformly from [1 - jitter, 1 + jitter]: after a rank restart,
  /// its peers' reconnects de-synchronize instead of arriving as one
  /// thundering herd on identical doubled schedules. 0 disables.
  double backoff_jitter = 0.25;
  /// Seed for the jitter stream; 0 derives one from host:port so two
  /// clients of the same peer in one process still diverge.
  std::uint64_t backoff_jitter_seed = 0;
  std::size_t max_payload = kDefaultMaxPayload;

  /// When non-empty, sent as a kAuth frame immediately after every
  /// (re)connect, before any request — the shared-secret handshake of
  /// FrameServer::start's auth_token. A rejected token closes the
  /// connection and arms the normal backoff.
  std::string auth_token;

  /// When set, the client mirrors its counters into this registry under
  /// `metrics_prefix` + {calls,failures,connects,fast_failures,suspects,
  /// timeouts} + "_total" — reconnect churn and suspect transitions
  /// become scrapeable instead of silent. The mux client additionally
  /// keeps prefix+"inflight" (gauge) and prefix+"mux_depth" (histogram)
  /// live. Must outlive the client.
  obs::Registry* metrics = nullptr;
  std::string metrics_prefix = "net_client_";
};

/// Monotonic counters, snapshot under the client state mutex. Shared
/// with MuxFrameClient, which also maintains the inflight watermark.
struct FrameClientStats {
  std::uint64_t calls = 0;
  std::uint64_t failures = 0;  ///< calls answered nullopt
  std::uint64_t connects = 0;  ///< successful (re)connects
  std::uint64_t fast_failures = 0;  ///< rejected inside the backoff window
  std::uint64_t suspects = 0;  ///< healthy -> suspect transitions
  std::uint64_t timeouts = 0;  ///< failures that were reply timeouts
  /// High-water mark of concurrently outstanding exchanges on one
  /// connection. The lock-step client caps this at 1 by construction;
  /// the mux client is only doing its job when it exceeds 1.
  std::uint64_t max_inflight = 0;
};

class FrameClient {
 public:
  FrameClient(std::string host, std::uint16_t port,
              FrameClientConfig config = {});

  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  const std::string& host() const noexcept { return host_; }
  std::uint16_t port() const noexcept { return port_; }

  /// One blocking exchange: send `request`, read one reply frame.
  /// nullopt on connect failure, IO error, protocol garbage, or while
  /// the backoff window is open.
  std::optional<Frame> call(const Frame& request);

  /// True while call() would fail fast (inside the backoff window).
  bool suspect() const;

  FrameClientStats stats() const;

  /// Drops the connection (next call reconnects immediately).
  void reset();

 private:
  using Clock = std::chrono::steady_clock;

  /// Called with io_mutex_ held; takes state_mutex_ internally.
  bool ensure_connected_io_locked();
  void mark_failed_io_locked(bool timeout);

  const std::string host_;
  const std::uint16_t port_;
  const FrameClientConfig config_;

  /// Serializes the wire exchange (connect + write + read). Never taken
  /// while state_mutex_ is held.
  mutable std::mutex io_mutex_;
  Socket socket_;  ///< guarded by io_mutex_

  /// Guards backoff + stats only; held for nanoseconds, so suspect()
  /// and stats() return immediately even mid-round-trip.
  mutable std::mutex state_mutex_;
  double backoff_seconds_ = 0.0;      ///< 0 = healthy
  Clock::time_point next_attempt_{};  ///< meaningful when backoff > 0
  std::uint64_t jitter_state_;        ///< advanced per armed window
  FrameClientStats stats_;

  /// Registry counters resolved once at construction (see
  /// FrameClientConfig::metrics); null when mirroring is off.
  obs::Counter* calls_counter_ = nullptr;
  obs::Counter* failures_counter_ = nullptr;
  obs::Counter* connects_counter_ = nullptr;
  obs::Counter* fast_failures_counter_ = nullptr;
  obs::Counter* suspects_counter_ = nullptr;
  obs::Counter* timeouts_counter_ = nullptr;
};

}  // namespace prts::net
