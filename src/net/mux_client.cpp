#include "net/mux_client.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace prts::net {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_from(double seconds) {
  if (std::isinf(seconds)) return Clock::time_point::max();
  if (seconds < 0.0) seconds = 0.0;
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(seconds));
}

}  // namespace

MuxFrameClient::MuxFrameClient(std::string host, std::uint16_t port,
                               FrameClientConfig config)
    : host_(std::move(host)), port_(port), config_(std::move(config)) {
  jitter_state_ = config_.backoff_jitter_seed != 0
                      ? config_.backoff_jitter_seed
                      : jitter_seed_for(host_, port_);
  if (config_.metrics != nullptr) {
    const std::string& prefix = config_.metrics_prefix;
    calls_counter_ = &config_.metrics->counter(prefix + "calls_total");
    failures_counter_ = &config_.metrics->counter(prefix + "failures_total");
    connects_counter_ = &config_.metrics->counter(prefix + "connects_total");
    fast_failures_counter_ =
        &config_.metrics->counter(prefix + "fast_failures_total");
    suspects_counter_ = &config_.metrics->counter(prefix + "suspects_total");
    timeouts_counter_ = &config_.metrics->counter(prefix + "timeouts_total");
    unknown_replies_counter_ =
        &config_.metrics->counter(prefix + "unknown_replies_total");
    inflight_gauge_ = &config_.metrics->gauge(prefix + "inflight");
    depth_histogram_ = &config_.metrics->histogram(prefix + "mux_depth");
  }
  worker_ = std::thread(&MuxFrameClient::worker_loop, this);
}

MuxFrameClient::~MuxFrameClient() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    if (conn_) conn_->shutdown();
    cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
  if (reader_.joinable()) reader_.join();
  // Resolve whatever is still outstanding: a waiter must see nullopt,
  // never a broken promise.
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, pending] : pending_) pending.promise.set_value(std::nullopt);
  pending_.clear();
  for (auto& job : queue_) job.promise.set_value(std::nullopt);
  queue_.clear();
}

std::future<std::optional<Frame>> MuxFrameClient::call_async(Frame request) {
  const double seconds = config_.reply_timeout_seconds > 0.0
                             ? config_.reply_timeout_seconds
                             : std::numeric_limits<double>::infinity();
  return call_async(std::move(request), seconds);
}

std::future<std::optional<Frame>> MuxFrameClient::call_async(
    Frame request, double deadline_seconds) {
  std::promise<std::optional<Frame>> promise;
  std::future<std::optional<Frame>> future = promise.get_future();
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.calls;
  if (calls_counter_) calls_counter_->add();
  if (stop_ ||
      (backoff_seconds_ > 0.0 && Clock::now() < next_attempt_)) {
    if (!stop_) {
      ++stats_.fast_failures;
      if (fast_failures_counter_) fast_failures_counter_->add();
    }
    ++stats_.failures;
    if (failures_counter_) failures_counter_->add();
    promise.set_value(std::nullopt);
    return future;
  }
  Job job;
  job.frame = std::move(request);
  job.promise = std::move(promise);
  job.deadline = deadline_from(deadline_seconds);
  queue_.push_back(std::move(job));
  const std::size_t depth = queue_.size() + pending_.size();
  stats_.max_inflight =
      std::max<std::uint64_t>(stats_.max_inflight, depth);
  if (inflight_gauge_) inflight_gauge_->set(static_cast<double>(depth));
  if (depth_histogram_) depth_histogram_->record(static_cast<double>(depth));
  cv_.notify_all();
  return future;
}

std::optional<Frame> MuxFrameClient::call(const Frame& request) {
  return call_async(request).get();
}

bool MuxFrameClient::suspect() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return backoff_seconds_ > 0.0 && Clock::now() < next_attempt_;
}

bool MuxFrameClient::peer_is_v1() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return v1_mode_;
}

FrameClientStats MuxFrameClient::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t MuxFrameClient::unknown_replies() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return unknown_replies_;
}

void MuxFrameClient::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  fail_connection_locked(generation_, /*timeout=*/false);
  backoff_seconds_ = 0.0;  // reconnect immediately on the next call
}

void MuxFrameClient::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;

    // Jobs racing a freshly-armed backoff window fail fast here; jobs
    // arriving while the window is open already failed in call_async.
    if (backoff_seconds_ > 0.0 && Clock::now() < next_attempt_) {
      fail_queue_locked(/*fast=*/true);
      continue;
    }

    if (!conn_) {
      lock.unlock();
      if (reader_.joinable()) reader_.join();  // previous generation
      bool v1 = false;
      bool timeout = false;
      std::shared_ptr<Socket> socket = connect_and_negotiate(v1, timeout);
      lock.lock();
      if (stop_) return;  // destructor resolves the queue
      if (!socket) {
        if (timeout) {
          ++stats_.timeouts;
          if (timeouts_counter_) timeouts_counter_->add();
        }
        arm_backoff_locked(timeout);
        fail_queue_locked(/*fast=*/false);
        continue;
      }
      conn_ = std::move(socket);
      v1_mode_ = v1;
      last_rx_ = Clock::now();
      ++stats_.connects;
      if (connects_counter_) connects_counter_->add();
      if (!v1_mode_) {
        reader_ = std::thread(&MuxFrameClient::reader_loop, this, conn_,
                              generation_);
      }
    }

    if (queue_.empty()) continue;

    if (v1_mode_) {
      // Negotiated-down peer: one lock-step exchange at a time, v1
      // framing, ids stripped — exactly the FrameClient discipline.
      Job job = std::move(queue_.front());
      queue_.pop_front();
      update_depth_locked();
      const std::uint64_t generation = generation_;
      std::shared_ptr<Socket> socket = conn_;
      lock.unlock();
      Frame request = std::move(job.frame);
      request.version = kProtocolVersion;
      request.request_id = 0;
      Frame reply;
      FrameReadStatus status = FrameReadStatus::kClosed;
      if (write_frame(*socket, request)) {
        status = read_frame(*socket, reply, config_.max_payload);
      }
      lock.lock();
      if (status == FrameReadStatus::kOk) {
        backoff_seconds_ = 0.0;
        job.promise.set_value(std::move(reply));
      } else {
        ++stats_.failures;
        if (failures_counter_) failures_counter_->add();
        if (status == FrameReadStatus::kTimeout) {
          ++stats_.timeouts;
          if (timeouts_counter_) timeouts_counter_->add();
        }
        job.promise.set_value(std::nullopt);
        fail_connection_locked(generation,
                               status == FrameReadStatus::kTimeout);
      }
      continue;
    }

    // Mux dispatch: stamp a fresh id, move the waiter to the pending
    // map *before* the write (the reply can race the write's return),
    // then write without holding the lock.
    Job job = std::move(queue_.front());
    queue_.pop_front();
    const std::uint64_t id = next_id_++;
    if (next_id_ > kMaxRequestId) next_id_ = 1;
    Frame frame = std::move(job.frame);
    frame.version = kProtocolVersion2;
    frame.request_id = id;
    Pending pending;
    pending.promise = std::move(job.promise);
    pending.deadline = job.deadline;
    pending.written = Clock::now();
    soonest_deadline_ = std::min(soonest_deadline_, pending.deadline);
    pending_.emplace(id, std::move(pending));
    update_depth_locked();
    const std::uint64_t generation = generation_;
    std::shared_ptr<Socket> socket = conn_;
    lock.unlock();
    const bool written = write_frame(*socket, frame);
    lock.lock();
    if (!written) {
      fail_connection_locked(generation, /*timeout=*/false);
    }
  }
}

void MuxFrameClient::reader_loop(std::shared_ptr<Socket> socket,
                                 std::uint64_t generation) {
  for (;;) {
    Frame reply;
    const FrameReadStatus status =
        read_frame(*socket, reply, config_.max_payload);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || generation_ != generation) return;
    if (status == FrameReadStatus::kOk) {
      last_rx_ = Clock::now();
      auto it = pending_.find(reply.request_id);
      if (it == pending_.end()) {
        // Late reply for an expired request, or a confused peer:
        // drop it, the connection itself is healthy.
        ++unknown_replies_;
        if (unknown_replies_counter_) unknown_replies_counter_->add();
      } else {
        it->second.promise.set_value(std::move(reply));
        pending_.erase(it);
        backoff_seconds_ = 0.0;  // a live reply proves health
        update_depth_locked();
      }
      if (last_rx_ >= soonest_deadline_) sweep_deadlines_locked(generation);
      if (generation_ != generation) return;
      continue;
    }
    if (status == FrameReadStatus::kTimeout) {
      // Idle tick: no frame for a sweep interval. Expire overdue
      // requests; a fully silent peer fails the whole connection.
      sweep_deadlines_locked(generation);
      if (generation_ != generation) return;
      continue;
    }
    fail_connection_locked(generation, /*timeout=*/false);
    return;
  }
}

std::shared_ptr<Socket> MuxFrameClient::connect_and_negotiate(bool& v1_mode,
                                                              bool& timeout) {
  v1_mode = false;
  timeout = false;
  auto connected = tcp_connect(host_, port_, config_.connect_timeout_seconds);
  if (!connected) return nullptr;
  auto socket = std::make_shared<Socket>(std::move(*connected));
  socket->set_receive_timeout(config_.connect_timeout_seconds > 0.0
                                  ? config_.connect_timeout_seconds
                                  : 2.0);
  if (!authenticate(*socket)) return nullptr;

  // Version probe: a v2 peer echoes the id on a kPong; a v1 peer
  // rejects the version byte with a v1 kError and closes. Bounded by
  // the connect timeout — version dispatch is cheap on a healthy peer.
  Frame ping;
  ping.version = kProtocolVersion2;
  ping.type = FrameType::kPing;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ping.request_id = next_id_++;
    if (next_id_ > kMaxRequestId) next_id_ = 1;
  }
  if (!write_frame(*socket, ping)) return nullptr;
  Frame reply;
  const FrameReadStatus status =
      read_frame(*socket, reply, config_.max_payload);
  if (status == FrameReadStatus::kTimeout) {
    timeout = true;
    return nullptr;
  }
  if (status == FrameReadStatus::kOk &&
      reply.version == kProtocolVersion2 &&
      reply.request_id == ping.request_id) {
    // Mux mode: short receive timeout so the reader can sweep
    // per-request deadlines between frames.
    socket->set_receive_timeout(kSweepIntervalSeconds);
    return socket;
  }
  if (status == FrameReadStatus::kOk && reply.version == kProtocolVersion) {
    // v1 peer: it answered (then closed) — reconnect in lock-step mode.
    // The fresh connection re-authenticates (per-connection state).
    auto fresh = tcp_connect(host_, port_, config_.connect_timeout_seconds);
    if (!fresh) return nullptr;
    auto v1_socket = std::make_shared<Socket>(std::move(*fresh));
    v1_socket->set_receive_timeout(config_.reply_timeout_seconds);
    if (!authenticate(*v1_socket)) return nullptr;
    v1_mode = true;
    return v1_socket;
  }
  return nullptr;
}

bool MuxFrameClient::authenticate(Socket& socket) {
  if (config_.auth_token.empty()) return true;
  Frame auth;
  auth.type = FrameType::kAuth;
  auth.payload = config_.auth_token;
  Frame reply;
  return write_frame(socket, auth) &&
         read_frame(socket, reply, config_.max_payload) ==
             FrameReadStatus::kOk &&
         reply.type == FrameType::kPong;
}

void MuxFrameClient::fail_connection_locked(std::uint64_t generation,
                                            bool timeout) {
  if (generation_ != generation) return;  // someone else already did
  ++generation_;
  if (conn_) conn_->shutdown();  // wake the peer thread's blocked IO
  conn_.reset();
  v1_mode_ = false;
  for (auto& [id, pending] : pending_) {
    ++stats_.failures;
    if (failures_counter_) failures_counter_->add();
    pending.promise.set_value(std::nullopt);
  }
  pending_.clear();
  soonest_deadline_ = Clock::time_point::max();
  fail_queue_locked(/*fast=*/false);
  arm_backoff_locked(timeout);
  update_depth_locked();
  cv_.notify_all();
}

void MuxFrameClient::fail_queue_locked(bool fast) {
  for (auto& job : queue_) {
    ++stats_.failures;
    if (failures_counter_) failures_counter_->add();
    if (fast) {
      ++stats_.fast_failures;
      if (fast_failures_counter_) fast_failures_counter_->add();
    }
    job.promise.set_value(std::nullopt);
  }
  queue_.clear();
  update_depth_locked();
}

void MuxFrameClient::arm_backoff_locked(bool timeout) {
  if (backoff_seconds_ == 0.0) {
    ++stats_.suspects;
    if (suspects_counter_) suspects_counter_->add();
  }
  const double initial = timeout ? config_.backoff_timeout_initial_seconds
                                 : config_.backoff_initial_seconds;
  backoff_seconds_ =
      backoff_seconds_ == 0.0
          ? initial
          : std::min(backoff_seconds_ * 2.0, config_.backoff_max_seconds);
  // Jitter only the armed window (not the doubling state): peers of a
  // restarted rank spread their reconnects instead of herding.
  const double window =
      jittered_backoff(backoff_seconds_, config_.backoff_jitter, jitter_state_);
  next_attempt_ =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(window));
}

void MuxFrameClient::update_depth_locked() {
  if (inflight_gauge_) {
    inflight_gauge_->set(static_cast<double>(queue_.size() + pending_.size()));
  }
}

void MuxFrameClient::sweep_deadlines_locked(std::uint64_t generation) {
  const Clock::time_point now = Clock::now();
  if (now < soonest_deadline_) return;
  Clock::time_point soonest = Clock::time_point::max();
  bool silent_peer = false;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.deadline <= now) {
      if (last_rx_ < it->second.written) {
        // Nothing at all arrived since this request went out: the peer
        // is wedged, not merely slow on one solve — fail the connection
        // (every outstanding waiter, once) instead of trickling
        // expiries while new requests pile onto a dead wire.
        silent_peer = true;
        break;
      }
      ++stats_.timeouts;
      if (timeouts_counter_) timeouts_counter_->add();
      ++stats_.failures;
      if (failures_counter_) failures_counter_->add();
      it->second.promise.set_value(std::nullopt);
      it = pending_.erase(it);
    } else {
      soonest = std::min(soonest, it->second.deadline);
      ++it;
    }
  }
  if (silent_peer) {
    ++stats_.timeouts;
    if (timeouts_counter_) timeouts_counter_->add();
    fail_connection_locked(generation, /*timeout=*/true);
    return;
  }
  soonest_deadline_ = soonest;
  update_depth_locked();
}

}  // namespace prts::net
