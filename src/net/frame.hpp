// The fabric's wire unit: length-prefixed frames carried over the raw
// sockets of net/socket.hpp. Two header layouts share the magic and the
// version byte, so both generations coexist on one port:
//
// v1 header, 12 bytes (lock-step request/reply):
//   bytes 0..3   magic "PRTF"
//   byte  4      protocol version = 1
//   byte  5      frame type (FrameType)
//   bytes 6..7   reserved, zero
//   bytes 8..11  payload length, big-endian
//
// v2 header, 16 bytes (request-id multiplexing — many in-flight
// exchanges on one connection, replies in any order):
//   bytes 0..3   magic "PRTF"
//   byte  4      protocol version = 2
//   byte  5      frame type (FrameType)
//   bytes 6..7   request id, high 16 bits, big-endian (the v1 reserved
//                bytes — a v1 decoder rejects the version byte before
//                it ever interprets them)
//   bytes 8..11  payload length, big-endian
//   bytes 12..15 request id, low 32 bits, big-endian
//
// A reply carries the request id of the frame it answers; id 0 is
// reserved for unsolicited frames.
//
// The decoder is incremental (feed it a growing buffer, it reports
// kNeedMore until a full frame is present) and defensive: bad magic,
// unsupported version and oversized length are distinct, recoverable
// verdicts — a server answers them with a kError frame and closes the
// connection instead of trusting a corrupted length field.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace prts::net {

class Socket;

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::uint8_t kProtocolVersion2 = 2;
inline constexpr std::size_t kFrameHeaderBytes = 12;
inline constexpr std::size_t kFrameHeaderBytesV2 = 16;

/// Request ids are 48 bits on the wire (16 high bits in the v1 reserved
/// bytes, 32 low bits appended); encode_frame masks anything wider.
inline constexpr std::uint64_t kMaxRequestId = (std::uint64_t{1} << 48) - 1;

/// Refuse to allocate for absurd length fields (a corrupted or hostile
/// header must not become a multi-gigabyte allocation).
inline constexpr std::size_t kDefaultMaxPayload = 64 * 1024 * 1024;

enum class FrameType : std::uint8_t {
  kError = 0,         ///< payload: human-readable reason
  kSolveRequest = 1,  ///< payload: service::encode wire request
  kSolveReply = 2,    ///< payload: service::encode wire reply
  kPing = 3,          ///< payload ignored
  kPong = 4,          ///< answer to kPing, payload echoed
  kStatsRequest = 5,  ///< payload ignored
  kStatsReply = 6,    ///< payload: one JSON object
  kGossipDigest = 7,  ///< payload: service::encode_gossip_digest (hot
                      ///< owned keys + hit counts); answered with kPong
  kReplicaFetch = 8,  ///< payload: service::encode_replica_fetch (keys
                      ///< a peer wants replicated)
  kReplicaFetchReply = 9,  ///< payload: service::encode_replica_entries
  kMetricsRequest = 10,    ///< payload ignored; scrape this rank
  kMetricsReply = 11,      ///< payload: prometheus-style text exposition
  kJoinRequest = 12,       ///< payload: service::encode_join_request (a
                           ///< rank dialing any seed to enter the
                           ///< fleet); answered with kMembershipUpdate
  kMembershipUpdate = 13,  ///< payload: service::encode_membership_update
                           ///< (epoch-stamped member list); answered
                           ///< with the receiver's own merged view
  kHandoffBegin = 14,      ///< payload: service::encode_handoff stamp —
                           ///< "I am about to stream N cache entries
                           ///< your ring slice now owns"
  kHandoffChunk = 15,      ///< payload: handoff stamp + bounded batch of
                           ///< cache entries (PRTS1 entry codec)
  kHandoffDone = 16,       ///< payload: handoff stamp (entries = total
                           ///< streamed); closes one handoff
  kAuth = 17,              ///< payload: shared-secret token; must be a
                           ///< connection's first frame when the server
                           ///< has a token configured. kPong on success,
                           ///< kError + close on mismatch.
};

struct Frame {
  std::uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kError;
  /// v2 correlation id (48 bits used); always 0 on decoded v1 frames.
  std::uint64_t request_id = 0;
  std::string payload;
};

/// Header + payload as one byte string.
std::string encode_frame(const Frame& frame);

enum class DecodeStatus {
  kFrame,       ///< a complete frame was decoded
  kNeedMore,    ///< buffer holds a prefix of a valid frame
  kBadMagic,    ///< first four bytes are not "PRTF"
  kBadVersion,  ///< header version is neither v1 nor v2
  kOversized,   ///< length field exceeds max_payload
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;              ///< valid iff status == kFrame
  std::size_t consumed = 0; ///< bytes to drop from the buffer front
};

/// Decodes the first frame of `buffer`. On kFrame, `consumed` covers
/// header + payload; on the error verdicts the connection is
/// unrecoverable (framing is lost) and the caller should close.
DecodeResult decode_frame(std::string_view buffer,
                          std::size_t max_payload = kDefaultMaxPayload);

/// Incremental frame decoder over an arbitrarily-chunked byte stream:
/// feed() whatever the transport delivered (single bytes, coalesced
/// frames, anything in between), next() yields complete frames in
/// order. Decoding is invariant under re-chunking — the property the
/// frame soak tests pin. Error verdicts (bad magic/version/oversized)
/// are sticky: framing is lost for good and every later next() repeats
/// the verdict.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes to the internal buffer.
  void feed(std::string_view bytes);

  /// Decodes (and consumes) the earliest complete frame in the buffer;
  /// kNeedMore while only a prefix is present.
  DecodeResult next();

  /// Bytes fed but not yet consumed by next().
  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
  std::size_t max_payload_;
  std::optional<DecodeStatus> poisoned_;  ///< sticky error verdict
};

enum class FrameReadStatus {
  kOk,
  kClosed,      ///< clean EOF between frames, or hard IO error
  kTimeout,     ///< the socket's receive timeout elapsed — the peer is
                ///< slow or wedged, not necessarily dead; clients back
                ///< this off more gently than a refused connection
  kTruncated,   ///< EOF or error in the middle of a frame
  kBadMagic,
  kBadVersion,
  kOversized,
};

/// Blocking read of exactly one frame from the socket.
FrameReadStatus read_frame(Socket& socket, Frame& frame,
                           std::size_t max_payload = kDefaultMaxPayload);

/// Blocking write of one frame; false on any IO error.
bool write_frame(Socket& socket, const Frame& frame);

}  // namespace prts::net
