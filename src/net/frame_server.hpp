// The fabric's listening side: one accept thread hands each connection
// to a task on a caller-supplied ThreadPool, where a read/handle/write
// loop serves framed requests until the peer disconnects.
//
// Robustness contract (exercised by tests/test_net.cpp): malformed
// magic, version mismatch and oversized length fields are answered with
// one kError frame and a close — never a crash, never a hang, and the
// server keeps accepting new connections. Truncated frames and
// mid-stream disconnects just close the connection.
//
// Connections occupy a pool thread for their lifetime, so the pool must
// be dedicated to the server (or sized for the expected number of
// long-lived peer links) — do NOT share the solve engine's pool, or
// idle peer connections will starve solves.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>

#include "common/thread_pool.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/watchdog.hpp"

namespace prts::net {

/// Answers one request frame; nullopt closes the connection without a
/// reply. Runs on a pool thread; must be thread-safe across
/// connections.
using FrameHandler = std::function<std::optional<Frame>(const Frame&)>;

/// Monotonic counters (snapshot; the server keeps running).
struct FrameServerStats {
  std::uint64_t connections = 0;
  std::uint64_t frames = 0;           ///< well-formed frames handled
  std::uint64_t protocol_errors = 0;  ///< bad magic/version/length
};

class FrameServer {
 public:
  /// Binds `port` (0 = ephemeral) and starts the accept thread.
  /// nullptr when the port cannot be bound. When `metrics` is set the
  /// server mirrors its counters into it as net_server_connections_total
  /// / net_server_frames_total / net_server_protocol_errors_total (the
  /// registry must outlive the server). When `watchdog` is set the
  /// server registers a "frame_server" heartbeat: load tracks frames
  /// currently inside the handler, beats mark accepts and handled
  /// frames — a handler wedged on a dead peer shows up as a stall.
  /// When `profiler` is set every handler invocation is sampled into
  /// the "frame_handler" component (cpu/wall/alloc attribution of peer
  /// traffic).
  static std::unique_ptr<FrameServer> start(
      std::uint16_t port, FrameHandler handler, ThreadPool& pool,
      std::size_t max_payload = kDefaultMaxPayload,
      obs::Registry* metrics = nullptr,
      obs::Watchdog* watchdog = nullptr,
      obs::Profiler* profiler = nullptr);

  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// The bound port (resolves an ephemeral bind).
  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Stops accepting, wakes every connection's blocked read, and waits
  /// for connection loops to drain. Idempotent.
  void stop();

  FrameServerStats stats() const;

 private:
  FrameServer(Listener listener, FrameHandler handler, ThreadPool& pool,
              std::size_t max_payload, obs::Registry* metrics,
              obs::Watchdog* watchdog, obs::Profiler* profiler);

  void accept_loop();
  void serve_connection(const std::shared_ptr<Socket>& socket_ptr);

  Listener listener_;
  FrameHandler handler_;
  ThreadPool& pool_;
  const std::size_t max_payload_;

  std::atomic<bool> stopping_{false};
  mutable std::mutex mutex_;
  std::condition_variable drained_cv_;
  std::unordered_set<int> open_fds_;  ///< live connection descriptors
  FrameServerStats stats_;
  /// Registry counters resolved once at construction; null when
  /// mirroring is off.
  obs::Counter* connections_counter_ = nullptr;
  obs::Counter* frames_counter_ = nullptr;
  obs::Counter* protocol_errors_counter_ = nullptr;
  /// "frame_server" liveness handle; null when no watchdog was given.
  obs::Heartbeat* heartbeat_ = nullptr;
  /// "frame_handler" profile component; null when no profiler was given.
  obs::Profiler* profiler_ = nullptr;
  obs::Profiler::Component* handler_component_ = nullptr;
  std::thread accept_thread_;
};

}  // namespace prts::net
