// The fabric's listening side: one accept thread hands each connection
// to a dedicated reader thread. v1 frames are handled inline in the
// reader (the legacy lock-step read→handle→write discipline, replies in
// request order); v2 frames are dispatched to the caller-supplied
// ThreadPool, replies stamped with the request id and written under a
// per-connection write mutex whenever they finish — so one connection
// carries many concurrent solves and a slow one no longer blocks the
// pings, gossip digests and scrapes behind it.
//
// Robustness contract (exercised by tests/test_net.cpp): malformed
// magic, version mismatch and oversized length fields are answered with
// one kError frame and a close — never a crash, never a hang, and the
// server keeps accepting new connections. Truncated frames and
// mid-stream disconnects just close the connection.
//
// The pool is the handler executor: size it for the desired number of
// concurrently-running handlers, not for the number of peer links
// (idle connections cost a parked reader thread, not a pool slot).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/watchdog.hpp"

namespace prts::net {

/// Answers one request frame; nullopt closes the connection without a
/// reply (for a v2 request this also aborts the other in-flight
/// exchanges on that connection — a deliberate peer-death simulation).
/// Runs on a pool thread; must be thread-safe across connections and,
/// under v2, across concurrent frames of ONE connection.
using FrameHandler = std::function<std::optional<Frame>(const Frame&)>;

/// Monotonic counters (snapshot; the server keeps running).
struct FrameServerStats {
  std::uint64_t connections = 0;
  std::uint64_t frames = 0;           ///< well-formed frames handled
  std::uint64_t protocol_errors = 0;  ///< bad magic/version/length
  std::uint64_t auth_failures = 0;    ///< wrong token / missing handshake
};

class FrameServer {
 public:
  /// Binds `port` (0 = ephemeral) and starts the accept thread.
  /// nullptr when the port cannot be bound. When `metrics` is set the
  /// server mirrors its counters into it as net_server_connections_total
  /// / net_server_frames_total / net_server_protocol_errors_total (the
  /// registry must outlive the server). When `watchdog` is set the
  /// server registers a "frame_server" heartbeat: load tracks frames
  /// currently inside the handler, beats mark accepts and handled
  /// frames — a handler wedged on a dead peer shows up as a stall.
  /// When `profiler` is set every handler invocation is sampled into
  /// the "frame_handler" component (cpu/wall/alloc attribution of peer
  /// traffic). When `auth_token` is non-empty every connection must
  /// present it in a kAuth frame before anything else: any other first
  /// frame (or a wrong token) is answered with kError, counted in
  /// net_server_auth_failures_total, and the connection is closed.
  static std::unique_ptr<FrameServer> start(
      std::uint16_t port, FrameHandler handler, ThreadPool& pool,
      std::size_t max_payload = kDefaultMaxPayload,
      obs::Registry* metrics = nullptr,
      obs::Watchdog* watchdog = nullptr,
      obs::Profiler* profiler = nullptr,
      std::string auth_token = {});

  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// The bound port (resolves an ephemeral bind).
  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Stops accepting, wakes every connection's blocked read, and waits
  /// for connection loops and in-flight handlers to drain. Idempotent.
  void stop();

  FrameServerStats stats() const;

 private:
  FrameServer(Listener listener, FrameHandler handler, ThreadPool& pool,
              std::size_t max_payload, obs::Registry* metrics,
              obs::Watchdog* watchdog, obs::Profiler* profiler,
              std::string auth_token);

  void accept_loop();
  void serve_connection(std::uint64_t conn_id,
                        std::shared_ptr<Socket> socket_ptr);

  /// Runs the handler for one frame and writes the reply (version and
  /// request id echoed from the request, write serialized on
  /// `write_mutex`). False when the connection must close.
  bool handle_frame(const Frame& request, Socket& socket,
                    std::mutex& write_mutex);

  void begin_handler();
  void end_handler();

  /// Joins reader threads whose connections have finished; called from
  /// the accept loop so a long-lived server does not accumulate dead
  /// thread handles.
  void reap_finished();

  Listener listener_;
  FrameHandler handler_;
  ThreadPool& pool_;
  const std::size_t max_payload_;
  const std::string auth_token_;  ///< empty = authentication off

  std::atomic<bool> stopping_{false};
  mutable std::mutex mutex_;
  std::condition_variable drained_cv_;
  std::unordered_set<int> open_fds_;  ///< live connection descriptors
  std::uint64_t next_conn_id_ = 0;
  std::unordered_map<std::uint64_t, std::thread> connections_;
  std::vector<std::uint64_t> finished_;  ///< conn ids ready to join
  std::size_t pending_handlers_ = 0;     ///< v2 handlers in the pool
  FrameServerStats stats_;
  /// Registry counters resolved once at construction; null when
  /// mirroring is off.
  obs::Counter* connections_counter_ = nullptr;
  obs::Counter* frames_counter_ = nullptr;
  obs::Counter* protocol_errors_counter_ = nullptr;
  obs::Counter* auth_failures_counter_ = nullptr;
  /// "frame_server" liveness handle; null when no watchdog was given.
  obs::Heartbeat* heartbeat_ = nullptr;
  /// "frame_handler" profile component; null when no profiler was given.
  obs::Profiler* profiler_ = nullptr;
  obs::Profiler::Component* handler_component_ = nullptr;
  std::thread accept_thread_;
};

}  // namespace prts::net
