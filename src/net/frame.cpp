#include "net/frame.hpp"

#include <cstring>

#include "net/socket.hpp"

namespace prts::net {
namespace {

constexpr char kMagic[4] = {'P', 'R', 'T', 'F'};

void put_u32_be(char* out, std::uint32_t value) noexcept {
  out[0] = static_cast<char>((value >> 24) & 0xff);
  out[1] = static_cast<char>((value >> 16) & 0xff);
  out[2] = static_cast<char>((value >> 8) & 0xff);
  out[3] = static_cast<char>(value & 0xff);
}

std::uint32_t get_u32_be(const unsigned char* in) noexcept {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

std::uint16_t get_u16_be(const unsigned char* in) noexcept {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(in[0]) << 8) |
                                    static_cast<std::uint16_t>(in[1]));
}

std::size_t header_bytes_for(std::uint8_t version) noexcept {
  return version == kProtocolVersion2 ? kFrameHeaderBytesV2
                                      : kFrameHeaderBytes;
}

/// Validates the 12-byte common header prefix; kFrame here means
/// "header well-formed" (a v2 header still owes 4 id bytes).
DecodeStatus check_header(const unsigned char* header,
                          std::size_t max_payload,
                          std::uint32_t& length) noexcept {
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return DecodeStatus::kBadMagic;
  }
  if (header[4] != kProtocolVersion && header[4] != kProtocolVersion2) {
    return DecodeStatus::kBadVersion;
  }
  length = get_u32_be(header + 8);
  if (length > max_payload) return DecodeStatus::kOversized;
  return DecodeStatus::kFrame;
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  const std::size_t header_bytes = header_bytes_for(frame.version);
  const std::uint64_t id = frame.request_id & kMaxRequestId;
  std::string bytes;
  bytes.resize(header_bytes + frame.payload.size());
  std::memcpy(bytes.data(), kMagic, sizeof(kMagic));
  bytes[4] = static_cast<char>(frame.version);
  bytes[5] = static_cast<char>(frame.type);
  if (frame.version == kProtocolVersion2) {
    bytes[6] = static_cast<char>((id >> 40) & 0xff);
    bytes[7] = static_cast<char>((id >> 32) & 0xff);
  } else {
    bytes[6] = 0;
    bytes[7] = 0;
  }
  put_u32_be(bytes.data() + 8,
             static_cast<std::uint32_t>(frame.payload.size()));
  if (frame.version == kProtocolVersion2) {
    put_u32_be(bytes.data() + 12, static_cast<std::uint32_t>(id & 0xffffffffu));
  }
  std::memcpy(bytes.data() + header_bytes, frame.payload.data(),
              frame.payload.size());
  return bytes;
}

DecodeResult decode_frame(std::string_view buffer, std::size_t max_payload) {
  DecodeResult result;
  if (buffer.size() < kFrameHeaderBytes) return result;  // kNeedMore

  const auto* header =
      reinterpret_cast<const unsigned char*>(buffer.data());
  std::uint32_t length = 0;
  const DecodeStatus verdict = check_header(header, max_payload, length);
  if (verdict != DecodeStatus::kFrame) {
    result.status = verdict;
    return result;
  }
  const std::size_t header_bytes = header_bytes_for(header[4]);
  if (buffer.size() < header_bytes + length) return result;

  result.status = DecodeStatus::kFrame;
  result.frame.version = header[4];
  result.frame.type = static_cast<FrameType>(header[5]);
  if (header[4] == kProtocolVersion2) {
    result.frame.request_id =
        (static_cast<std::uint64_t>(get_u16_be(header + 6)) << 32) |
        static_cast<std::uint64_t>(get_u32_be(header + 12));
  }
  result.frame.payload.assign(buffer.data() + header_bytes, length);
  result.consumed = header_bytes + length;
  return result;
}

void FrameDecoder::feed(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

DecodeResult FrameDecoder::next() {
  if (poisoned_) {
    DecodeResult result;
    result.status = *poisoned_;
    return result;
  }
  DecodeResult result = decode_frame(buffer_, max_payload_);
  if (result.status == DecodeStatus::kFrame) {
    buffer_.erase(0, result.consumed);
    result.consumed = 0;  // already dropped; nothing left for the caller
  } else if (result.status != DecodeStatus::kNeedMore) {
    poisoned_ = result.status;
  }
  return result;
}

FrameReadStatus read_frame(Socket& socket, Frame& frame,
                           std::size_t max_payload) {
  unsigned char header[kFrameHeaderBytesV2];
  // The first byte separates "clean EOF between frames" from "peer died
  // mid-frame" — the robustness tests distinguish the two. A receive
  // timeout anywhere is its own verdict: the connection may be fine,
  // the peer is just slow.
  std::size_t got = 0;
  switch (socket.recv_some_status(header, 1, got)) {
    case Socket::RecvStatus::kOk:
      break;
    case Socket::RecvStatus::kTimeout:
      return FrameReadStatus::kTimeout;
    default:
      return FrameReadStatus::kClosed;
  }
  switch (socket.recv_exact(header + 1, kFrameHeaderBytes - 1)) {
    case Socket::RecvStatus::kOk:
      break;
    case Socket::RecvStatus::kTimeout:
      return FrameReadStatus::kTimeout;
    default:
      return FrameReadStatus::kTruncated;
  }

  std::uint32_t length = 0;
  switch (check_header(header, max_payload, length)) {
    case DecodeStatus::kBadMagic:
      return FrameReadStatus::kBadMagic;
    case DecodeStatus::kBadVersion:
      return FrameReadStatus::kBadVersion;
    case DecodeStatus::kOversized:
      return FrameReadStatus::kOversized;
    default:
      break;
  }

  frame.version = header[4];
  frame.type = static_cast<FrameType>(header[5]);
  frame.request_id = 0;
  if (frame.version == kProtocolVersion2) {
    switch (socket.recv_exact(header + kFrameHeaderBytes,
                              kFrameHeaderBytesV2 - kFrameHeaderBytes)) {
      case Socket::RecvStatus::kOk:
        break;
      case Socket::RecvStatus::kTimeout:
        return FrameReadStatus::kTimeout;
      default:
        return FrameReadStatus::kTruncated;
    }
    frame.request_id =
        (static_cast<std::uint64_t>(get_u16_be(header + 6)) << 32) |
        static_cast<std::uint64_t>(get_u32_be(header + 12));
  }
  frame.payload.resize(length);
  if (length > 0) {
    switch (socket.recv_exact(frame.payload.data(), length)) {
      case Socket::RecvStatus::kOk:
        break;
      case Socket::RecvStatus::kTimeout:
        return FrameReadStatus::kTimeout;
      default:
        return FrameReadStatus::kTruncated;
    }
  }
  return FrameReadStatus::kOk;
}

bool write_frame(Socket& socket, const Frame& frame) {
  const std::string bytes = encode_frame(frame);
  return socket.send_all(bytes.data(), bytes.size());
}

}  // namespace prts::net
