#include "net/frame_server.hpp"

#include <sys/socket.h>

#include <chrono>
#include <string>
#include <utility>

namespace prts::net {

std::unique_ptr<FrameServer> FrameServer::start(std::uint16_t port,
                                                FrameHandler handler,
                                                ThreadPool& pool,
                                                std::size_t max_payload,
                                                obs::Registry* metrics,
                                                obs::Watchdog* watchdog,
                                                obs::Profiler* profiler) {
  auto listener = Listener::open(port);
  if (!listener) return nullptr;
  return std::unique_ptr<FrameServer>(
      new FrameServer(std::move(*listener), std::move(handler), pool,
                      max_payload, metrics, watchdog, profiler));
}

FrameServer::FrameServer(Listener listener, FrameHandler handler,
                         ThreadPool& pool, std::size_t max_payload,
                         obs::Registry* metrics, obs::Watchdog* watchdog,
                         obs::Profiler* profiler)
    : listener_(std::move(listener)),
      handler_(std::move(handler)),
      pool_(pool),
      max_payload_(max_payload),
      connections_counter_(
          metrics ? &metrics->counter("net_server_connections_total")
                  : nullptr),
      frames_counter_(
          metrics ? &metrics->counter("net_server_frames_total") : nullptr),
      protocol_errors_counter_(
          metrics ? &metrics->counter("net_server_protocol_errors_total")
                  : nullptr),
      heartbeat_(watchdog ? &watchdog->component("frame_server") : nullptr),
      profiler_(profiler),
      handler_component_(profiler ? &profiler->component("frame_handler")
                                  : nullptr),
      accept_thread_([this] { accept_loop(); }) {}

FrameServer::~FrameServer() { stop(); }

void FrameServer::accept_loop() {
  while (!stopping_.load()) {
    auto accepted = listener_.accept();
    if (!accepted) break;  // listener closed
    auto socket = std::make_shared<Socket>(std::move(*accepted));
    if (heartbeat_) heartbeat_->beat();
    const int fd = socket->fd();
    {
      // Register before the pool task exists: stop() must be able to
      // wake this connection even if the task has not started yet.
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_.load()) break;
      ++stats_.connections;
      if (connections_counter_) connections_counter_->add();
      open_fds_.insert(fd);
    }
    auto future =
        pool_.submit([this, socket] { serve_connection(socket); });
    // A shut-down pool destroys the task unrun (exceptional future);
    // deregister here or stop() would wait for this connection forever.
    // The local `socket` copy keeps the fd alive past the erase.
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      try {
        future.get();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        open_fds_.erase(fd);
        drained_cv_.notify_all();
      }
    }
  }
}

void FrameServer::serve_connection(
    const std::shared_ptr<Socket>& socket_ptr) {
  Socket& socket = *socket_ptr;
  const int fd = socket.fd();
  while (!stopping_.load()) {
    Frame request;
    const FrameReadStatus status =
        read_frame(socket, request, max_payload_);
    if (status == FrameReadStatus::kOk) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.frames;
      }
      if (frames_counter_) frames_counter_->add();
      // Load brackets the handler call: a frame stuck inside the
      // handler keeps load > 0, so a silent wedge ages into a stall.
      if (heartbeat_) heartbeat_->add_load(1);
      std::optional<obs::ScopedSample> handler_sample;
      if (profiler_ && profiler_->enabled()) handler_sample.emplace();
      std::optional<Frame> reply;
      try {
        reply = handler_(request);
      } catch (const std::exception& error) {
        // A throwing handler must not kill the connection loop's
        // bookkeeping — answer with an error frame and close.
        if (heartbeat_) {
          heartbeat_->add_load(-1);
          heartbeat_->beat();
        }
        Frame failure;
        failure.type = FrameType::kError;
        failure.payload = std::string("handler error: ") + error.what();
        write_frame(socket, failure);
        break;
      } catch (...) {
        if (heartbeat_) {
          heartbeat_->add_load(-1);
          heartbeat_->beat();
        }
        break;
      }
      if (handler_sample) {
        obs::Profiler::record(*handler_component_, handler_sample->finish());
      }
      if (heartbeat_) {
        heartbeat_->add_load(-1);
        heartbeat_->beat();
      }
      if (!reply || !write_frame(socket, *reply)) break;
      continue;
    }
    if (status == FrameReadStatus::kBadMagic ||
        status == FrameReadStatus::kBadVersion ||
        status == FrameReadStatus::kOversized ||
        status == FrameReadStatus::kTruncated) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.protocol_errors;
      }
      if (protocol_errors_counter_) protocol_errors_counter_->add();
      if (status != FrameReadStatus::kTruncated) {
        Frame error;
        error.type = FrameType::kError;
        error.payload = status == FrameReadStatus::kBadMagic ? "bad magic"
                        : status == FrameReadStatus::kBadVersion
                            ? "unsupported protocol version"
                            : "payload too large";
        write_frame(socket, error);
      }
    }
    break;  // framing lost or peer gone: close
  }
  {
    // Deregister while the socket is still open, so stop() can never
    // shut down a descriptor that has already been recycled.
    const std::lock_guard<std::mutex> lock(mutex_);
    open_fds_.erase(fd);
    drained_cv_.notify_all();
  }
}

void FrameServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.close();
  std::unique_lock<std::mutex> lock(mutex_);
  for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  drained_cv_.wait(lock, [this] { return open_fds_.empty(); });
  lock.unlock();
  if (accept_thread_.joinable()) accept_thread_.join();
}

FrameServerStats FrameServer::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace prts::net
