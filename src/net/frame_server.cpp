#include "net/frame_server.hpp"

#include <sys/socket.h>

#include <chrono>
#include <string>
#include <utility>

namespace prts::net {

std::unique_ptr<FrameServer> FrameServer::start(std::uint16_t port,
                                                FrameHandler handler,
                                                ThreadPool& pool,
                                                std::size_t max_payload,
                                                obs::Registry* metrics,
                                                obs::Watchdog* watchdog,
                                                obs::Profiler* profiler,
                                                std::string auth_token) {
  auto listener = Listener::open(port);
  if (!listener) return nullptr;
  return std::unique_ptr<FrameServer>(
      new FrameServer(std::move(*listener), std::move(handler), pool,
                      max_payload, metrics, watchdog, profiler,
                      std::move(auth_token)));
}

FrameServer::FrameServer(Listener listener, FrameHandler handler,
                         ThreadPool& pool, std::size_t max_payload,
                         obs::Registry* metrics, obs::Watchdog* watchdog,
                         obs::Profiler* profiler, std::string auth_token)
    : listener_(std::move(listener)),
      handler_(std::move(handler)),
      pool_(pool),
      max_payload_(max_payload),
      auth_token_(std::move(auth_token)),
      connections_counter_(
          metrics ? &metrics->counter("net_server_connections_total")
                  : nullptr),
      frames_counter_(
          metrics ? &metrics->counter("net_server_frames_total") : nullptr),
      protocol_errors_counter_(
          metrics ? &metrics->counter("net_server_protocol_errors_total")
                  : nullptr),
      auth_failures_counter_(
          metrics ? &metrics->counter("net_server_auth_failures_total")
                  : nullptr),
      heartbeat_(watchdog ? &watchdog->component("frame_server") : nullptr),
      profiler_(profiler),
      handler_component_(profiler ? &profiler->component("frame_handler")
                                  : nullptr),
      accept_thread_([this] { accept_loop(); }) {}

FrameServer::~FrameServer() { stop(); }

void FrameServer::accept_loop() {
  while (!stopping_.load()) {
    auto accepted = listener_.accept();
    if (!accepted) break;  // listener closed
    reap_finished();
    auto socket = std::make_shared<Socket>(std::move(*accepted));
    if (heartbeat_) heartbeat_->beat();
    const int fd = socket->fd();
    {
      // Register before the reader thread exists: stop() must be able
      // to wake this connection even if the thread has not started yet.
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_.load()) break;
      ++stats_.connections;
      if (connections_counter_) connections_counter_->add();
      open_fds_.insert(fd);
      const std::uint64_t conn_id = next_conn_id_++;
      connections_.emplace(
          conn_id, std::thread([this, conn_id, socket] {
            serve_connection(conn_id, socket);
          }));
    }
  }
}

void FrameServer::reap_finished() {
  std::vector<std::thread> done;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::uint64_t conn_id : finished_) {
      auto it = connections_.find(conn_id);
      if (it == connections_.end()) continue;
      done.push_back(std::move(it->second));
      connections_.erase(it);
    }
    finished_.clear();
  }
  for (std::thread& thread : done) {
    if (thread.joinable()) thread.join();
  }
}

void FrameServer::begin_handler() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++pending_handlers_;
}

void FrameServer::end_handler() {
  const std::lock_guard<std::mutex> lock(mutex_);
  --pending_handlers_;
  drained_cv_.notify_all();
}

bool FrameServer::handle_frame(const Frame& request, Socket& socket,
                               std::mutex& write_mutex) {
  // Load brackets the handler call: a frame stuck inside the handler
  // keeps load > 0, so a silent wedge ages into a stall.
  if (heartbeat_) heartbeat_->add_load(1);
  std::optional<obs::ScopedSample> handler_sample;
  if (profiler_ && profiler_->enabled()) handler_sample.emplace();
  std::optional<Frame> reply;
  try {
    reply = handler_(request);
  } catch (const std::exception& error) {
    // A throwing handler must not kill the connection's bookkeeping —
    // answer with an error frame and close.
    if (heartbeat_) {
      heartbeat_->add_load(-1);
      heartbeat_->beat();
    }
    Frame failure;
    failure.version = request.version;
    failure.request_id = request.request_id;
    failure.type = FrameType::kError;
    failure.payload = std::string("handler error: ") + error.what();
    const std::lock_guard<std::mutex> write_lock(write_mutex);
    write_frame(socket, failure);
    return false;
  } catch (...) {
    if (heartbeat_) {
      heartbeat_->add_load(-1);
      heartbeat_->beat();
    }
    return false;
  }
  if (handler_sample) {
    obs::Profiler::record(*handler_component_, handler_sample->finish());
  }
  if (heartbeat_) {
    heartbeat_->add_load(-1);
    heartbeat_->beat();
  }
  if (!reply) return false;
  // The reply answers in the requester's dialect: same version, same
  // correlation id (0 under v1, where ordering is the correlation).
  reply->version = request.version;
  reply->request_id = request.request_id;
  const std::lock_guard<std::mutex> write_lock(write_mutex);
  return write_frame(socket, *reply);
}

void FrameServer::serve_connection(std::uint64_t conn_id,
                                   std::shared_ptr<Socket> socket_ptr) {
  Socket& socket = *socket_ptr;
  const int fd = socket.fd();
  auto write_mutex = std::make_shared<std::mutex>();
  bool authed = auth_token_.empty();
  while (!stopping_.load()) {
    auto request = std::make_shared<Frame>();
    const FrameReadStatus status =
        read_frame(socket, *request, max_payload_);
    if (status == FrameReadStatus::kOk) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.frames;
      }
      if (frames_counter_) frames_counter_->add();
      if (request->type == FrameType::kAuth || !authed) {
        // The auth gate runs before the handler ever sees a frame.
        // kAuth on an open (or already-authed) server is answered
        // benignly, so a token-configured client can talk to a
        // token-free server.
        Frame reply;
        reply.version = request->version;
        reply.request_id = request->request_id;
        if (request->type == FrameType::kAuth &&
            (authed || request->payload == auth_token_)) {
          authed = true;
          reply.type = FrameType::kPong;
          const std::lock_guard<std::mutex> write_lock(*write_mutex);
          if (!write_frame(socket, reply)) break;
          continue;
        }
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.auth_failures;
        }
        if (auth_failures_counter_) auth_failures_counter_->add();
        reply.type = FrameType::kError;
        reply.payload = "authentication required";
        const std::lock_guard<std::mutex> write_lock(*write_mutex);
        write_frame(socket, reply);
        break;
      }
      if (request->version == kProtocolVersion2) {
        // Pipelined path: hand the handler to the pool and keep
        // reading — the reply is written (id-correlated) whenever it
        // is ready, out of order with its neighbours. A handler that
        // declines or a failed write shuts the socket down, which
        // kicks this loop out of read_frame.
        begin_handler();
        auto future = pool_.submit(
            [this, request, socket_ptr, write_mutex] {
              if (!handle_frame(*request, *socket_ptr, *write_mutex)) {
                socket_ptr->shutdown();
              }
              end_handler();
            });
        // A shut-down pool destroys the task unrun (exceptional
        // future); degrade to inline lock-step handling.
        if (future.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
          bool rejected = false;
          try {
            future.get();
          } catch (...) {
            rejected = true;
          }
          if (rejected) {
            const bool keep =
                handle_frame(*request, socket, *write_mutex);
            end_handler();
            if (!keep) break;
          }
        }
        continue;
      }
      // v1 lock-step: handle inline, reply before the next read.
      if (!handle_frame(*request, socket, *write_mutex)) break;
      continue;
    }
    if (status == FrameReadStatus::kBadMagic ||
        status == FrameReadStatus::kBadVersion ||
        status == FrameReadStatus::kOversized ||
        status == FrameReadStatus::kTruncated) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.protocol_errors;
      }
      if (protocol_errors_counter_) protocol_errors_counter_->add();
      if (status != FrameReadStatus::kTruncated) {
        Frame error;
        error.type = FrameType::kError;
        error.payload = status == FrameReadStatus::kBadMagic ? "bad magic"
                        : status == FrameReadStatus::kBadVersion
                            ? "unsupported protocol version"
                            : "payload too large";
        const std::lock_guard<std::mutex> write_lock(*write_mutex);
        write_frame(socket, error);
      }
    }
    break;  // framing lost or peer gone: close
  }
  {
    // Deregister while the socket is still open, so stop() can never
    // shut down a descriptor that has already been recycled. In-flight
    // v2 handlers hold their own shared_ptr to the socket; their
    // writes fail harmlessly once the peer is gone.
    const std::lock_guard<std::mutex> lock(mutex_);
    open_fds_.erase(fd);
    finished_.push_back(conn_id);
    drained_cv_.notify_all();
  }
}

void FrameServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.close();
  std::unique_lock<std::mutex> lock(mutex_);
  for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  drained_cv_.wait(lock, [this] {
    return open_fds_.empty() && pending_handlers_ == 0;
  });
  std::vector<std::thread> remaining;
  remaining.reserve(connections_.size());
  for (auto& [conn_id, thread] : connections_) {
    remaining.push_back(std::move(thread));
  }
  connections_.clear();
  finished_.clear();
  lock.unlock();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& thread : remaining) {
    if (thread.joinable()) thread.join();
  }
}

FrameServerStats FrameServer::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace prts::net
