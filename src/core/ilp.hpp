// The Section 5.4 integer linear program, as data plus an exact solver.
//
// Variables a_{i,j,k} = 1 iff tasks i..j form one interval replicated on k
// processors. Constraints: every task in exactly one interval, at most p
// processors used in total, total latency within the bound, and no chosen
// interval may violate the period bound. Objective: maximize the sum of
// log stage reliabilities (the log of Eq. (9)).
//
// The paper solves this with CPLEX; we provide an in-house exact
// branch-and-bound that branches on the next interval (end, replication)
// along the chain and prunes with an admissible latency-free DP bound.
// Note: the paper's printed objective omits the communication
// reliabilities r_comm; by default we include them so that the ILP
// optimizes the same Eq. (9) objective as every other method (set
// include_comm_reliability = false for the literal printed coefficient).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// The ILP over interval variables.
class IlpFormulation {
 public:
  /// One 0-1 variable a_{first..last, replicas} with its objective
  /// coefficient log(1 - f^replicas).
  struct Variable {
    std::size_t first = 0;
    std::size_t last = 0;
    unsigned replicas = 0;
    double objective = 0.0;
    bool period_feasible = true;  ///< false when the period rows force 0
  };

  /// Builds all O(n^2 K) variables. Homogeneous platforms only (throws
  /// std::invalid_argument otherwise).
  IlpFormulation(const TaskChain& chain, const Platform& platform,
                 double period_bound, double latency_bound,
                 bool include_comm_reliability = true);

  std::span<const Variable> variables() const noexcept { return variables_; }

  /// Checks every constraint row for a 0/1 assignment over variables();
  /// returns an explanation of the first violated row, or nullopt.
  std::optional<std::string> violated_constraint(
      std::span<const std::uint8_t> assignment) const;

  /// Objective value of an assignment (sum of chosen coefficients).
  double objective_value(std::span<const std::uint8_t> assignment) const;

  const TaskChain& chain() const noexcept { return chain_; }
  const Platform& platform() const noexcept { return platform_; }
  double period_bound() const noexcept { return period_bound_; }
  double latency_bound() const noexcept { return latency_bound_; }

 private:
  const TaskChain& chain_;
  const Platform& platform_;
  double period_bound_;
  double latency_bound_;
  std::vector<Variable> variables_;
};

/// An optimal ILP solution: the chosen variables (indices into
/// formulation.variables()), the induced mapping (processor ids dealt in
/// chain order) and the objective (= log reliability).
struct IlpSolution {
  std::vector<std::size_t> chosen;
  Mapping mapping;
  double objective = 0.0;
};

/// Exact branch-and-bound over the chain structure. Returns nullopt when
/// the constraints are infeasible.
///
/// `objective_floor` is a warm-start pruning cut (-inf: none): subtrees
/// whose admissible upper bound cannot strictly beat it are pruned from
/// the start, before the search has found its own incumbent. The
/// incumbent-acceptance rule itself is untouched, so as long as the
/// caller passes a cut the true optimum strictly beats (e.g.
/// solver::warm_floor_cut of a known-feasible solution's objective),
/// the returned solution — the first DFS attainer of the optimum — is
/// identical to the uncut search's.
std::optional<IlpSolution> solve_ilp(
    const IlpFormulation& formulation,
    double objective_floor = -std::numeric_limits<double>::infinity());

}  // namespace prts
