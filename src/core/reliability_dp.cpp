#include "core/reliability_dp.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/dp_detail.hpp"

namespace prts {
namespace detail {

std::vector<std::vector<double>> interval_branch_failures(
    const TaskChain& chain, const Platform& platform) {
  const std::size_t n = chain.size();
  std::vector<std::vector<double>> failure(n + 1,
                                           std::vector<double>(n + 1, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = j + 1; i <= n; ++i) {
      const double in_size = j == 0 ? 0.0 : chain.out_size(j - 1);
      failure[j][i] = branch_reliability(platform, 0,
                                         chain.work_sum(j, i - 1), in_size,
                                         chain.out_size(i - 1))
                          .failure();
    }
  }
  return failure;
}

Mapping rebuild_mapping(const TaskChain& chain,
                        const std::vector<std::vector<DpChoice>>& parent,
                        std::size_t k_best) {
  // Walk the parents backwards to collect (interval, replicas) pairs.
  std::vector<std::pair<std::size_t, unsigned>> stages;  // (last+1, q)
  std::size_t i = chain.size();
  std::size_t k = k_best;
  while (i > 0) {
    const DpChoice& choice = parent[i][k];
    stages.emplace_back(i, choice.replicas);
    i = choice.prev_prefix;
    k -= choice.replicas;
  }
  std::reverse(stages.begin(), stages.end());

  std::vector<std::size_t> lasts;
  std::vector<std::vector<std::size_t>> procs;
  std::size_t next_proc = 0;
  for (const auto& [end, q] : stages) {
    lasts.push_back(end - 1);
    std::vector<std::size_t> replica_set(q);
    for (unsigned r = 0; r < q; ++r) replica_set[r] = next_proc++;
    procs.push_back(std::move(replica_set));
  }
  return Mapping(IntervalPartition::from_boundaries(lasts, chain.size()),
                 std::move(procs));
}

}  // namespace detail

DpSolution optimize_reliability(const TaskChain& chain,
                                const Platform& platform) {
  if (!platform.is_homogeneous()) {
    throw std::invalid_argument(
        "optimize_reliability: Algorithm 1 requires a homogeneous platform "
        "(the heterogeneous problem is NP-complete, Theorem 5)");
  }
  const std::size_t n = chain.size();
  const std::size_t p = platform.processor_count();
  const unsigned max_q = static_cast<unsigned>(
      std::min<std::size_t>(platform.max_replication(), p));

  const auto failure = detail::interval_branch_failures(chain, platform);

  // F[i][k]: best log-reliability for the first i tasks on exactly k
  // processors; -inf marks unreachable states.
  std::vector<std::vector<double>> F(
      n + 1, std::vector<double>(p + 1, detail::kMinusInf));
  std::vector<std::vector<detail::DpChoice>> parent(
      n + 1, std::vector<detail::DpChoice>(p + 1));
  F[0][0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t k = 1; k <= p; ++k) {
      for (std::size_t j = 0; j < i; ++j) {
        const unsigned q_max = static_cast<unsigned>(
            std::min<std::size_t>(max_q, k));
        for (unsigned q = 1; q <= q_max; ++q) {
          const double before = F[j][k - q];
          if (before == detail::kMinusInf) continue;
          const double value =
              before + detail::stage_log_reliability(failure[j][i], q);
          if (value > F[i][k]) {
            F[i][k] = value;
            parent[i][k] = detail::DpChoice{j, q};
          }
        }
      }
    }
  }

  std::size_t k_best = 0;
  for (std::size_t k = 1; k <= p; ++k) {
    if (k_best == 0 || F[n][k] > F[n][k_best]) k_best = k;
  }
  return DpSolution{detail::rebuild_mapping(chain, parent, k_best),
                    LogReliability::from_log(F[n][k_best])};
}

}  // namespace prts
