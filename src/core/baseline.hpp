// One-to-one mapping baseline: the restricted mapping class the paper's
// introduction motivates interval mappings against — every task is its
// own interval (requires n <= p). Replication is still allocated
// optimally (Algo-Alloc); what is lost versus interval mappings is the
// freedom to merge tasks and save communications/processors.
#pragma once

#include <optional>

#include "core/alloc.hpp"
#include "eval/evaluation.hpp"

namespace prts {

/// A baseline schedule with its evaluation.
struct BaselineSolution {
  Mapping mapping;
  MappingMetrics metrics;
};

/// The one-to-one mapping (one task per interval) with Algo-Alloc
/// replication, or nullopt when n > p, the period bound excludes some
/// task, or constraints are unsatisfiable.
std::optional<BaselineSolution> one_to_one_mapping(
    const TaskChain& chain, const Platform& platform,
    const AllocOptions& options = {});

}  // namespace prts
