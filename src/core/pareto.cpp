#include "core/pareto.hpp"

#include <algorithm>

#include "core/exact.hpp"

namespace prts {
namespace {

/// a dominates b: no worse on all three criteria, strictly better on one.
bool dominates(const MappingMetrics& a, const MappingMetrics& b) {
  const bool no_worse = a.worst_period <= b.worst_period &&
                        a.worst_latency <= b.worst_latency &&
                        a.failure <= b.failure;
  const bool better = a.worst_period < b.worst_period ||
                      a.worst_latency < b.worst_latency ||
                      a.failure < b.failure;
  return no_worse && better;
}

}  // namespace

std::vector<ParetoPoint> pareto_filter(std::vector<ParetoPoint> candidates) {
  std::vector<ParetoPoint> front;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < candidates.size() && !dominated; ++j) {
      if (i == j) continue;
      if (dominates(candidates[j].metrics, candidates[i].metrics)) {
        dominated = true;
      }
      // Of equal points keep only the first.
      if (j < i &&
          candidates[j].metrics.worst_period ==
              candidates[i].metrics.worst_period &&
          candidates[j].metrics.worst_latency ==
              candidates[i].metrics.worst_latency &&
          candidates[j].metrics.failure == candidates[i].metrics.failure) {
        dominated = true;
      }
    }
    if (!dominated) front.push_back(std::move(candidates[i]));
  }
  std::sort(front.begin(), front.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.metrics.worst_period != b.metrics.worst_period) {
                return a.metrics.worst_period < b.metrics.worst_period;
              }
              return a.metrics.worst_latency < b.metrics.worst_latency;
            });
  return front;
}

std::vector<ParetoPoint> exact_pareto_front(const TaskChain& chain,
                                            const Platform& platform) {
  const HomogeneousExactSolver solver(chain, platform);
  std::vector<ParetoPoint> candidates;
  candidates.reserve(solver.records().size());
  for (const auto& record : solver.records()) {
    std::vector<std::vector<std::size_t>> procs;
    std::size_t next_proc = 0;
    for (unsigned q : record.replicas) {
      std::vector<std::size_t> replica_set(q);
      for (unsigned r = 0; r < q; ++r) replica_set[r] = next_proc++;
      procs.push_back(std::move(replica_set));
    }
    Mapping mapping(
        IntervalPartition::from_boundaries(record.lasts, chain.size()),
        std::move(procs));
    MappingMetrics metrics = evaluate(chain, platform, mapping);
    candidates.push_back(ParetoPoint{std::move(mapping), metrics});
  }
  return pareto_filter(std::move(candidates));
}

std::vector<ParetoPoint> heuristic_pareto_front(const TaskChain& chain,
                                                const Platform& platform) {
  std::vector<ParetoPoint> candidates;
  for (HeuristicKind kind :
       {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
    // Unbounded allocation first.
    for (auto& sol : heuristic_candidates(chain, platform, kind)) {
      candidates.push_back(
          ParetoPoint{std::move(sol.mapping), sol.metrics});
    }
    // Re-allocate with each candidate's own achieved period as the bound:
    // on heterogeneous platforms this can exclude slow processors and
    // trade reliability for period.
    std::vector<double> periods;
    for (const auto& point : candidates) {
      periods.push_back(point.metrics.worst_period);
    }
    std::sort(periods.begin(), periods.end());
    periods.erase(std::unique(periods.begin(), periods.end()),
                  periods.end());
    for (double period : periods) {
      HeuristicOptions options;
      options.period_bound = period;
      for (auto& sol :
           heuristic_candidates(chain, platform, kind, options)) {
        candidates.push_back(
            ParetoPoint{std::move(sol.mapping), sol.metrics});
      }
    }
  }
  return pareto_filter(std::move(candidates));
}

}  // namespace prts
