#include "core/exact.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/alloc.hpp"
#include "core/dp_detail.hpp"

namespace prts {

HomogeneousExactSolver::HomogeneousExactSolver(const TaskChain& chain,
                                               const Platform& platform)
    : chain_(chain), platform_(platform) {
  if (!platform.is_homogeneous()) {
    throw std::invalid_argument(
        "HomogeneousExactSolver: exact tri-criteria optimization is only "
        "polynomial-by-enumeration on homogeneous platforms");
  }
  const std::size_t n = chain.size();
  const std::size_t max_intervals =
      std::min(n, platform.processor_count());
  const double speed = platform.speed(0);
  const auto branch_failure =
      detail::interval_branch_failures(chain, platform);

  // Recursive enumeration of partitions (by their interval ends).
  std::vector<std::size_t> lasts;
  std::vector<double> failures;  // per-interval branch failures
  double latency = 0.0;
  double period = 0.0;

  auto recurse = [&](auto&& self, std::size_t first) -> void {
    if (lasts.size() == max_intervals && first < n) return;
    for (std::size_t last = first; last < n; ++last) {
      const double work = chain.work_sum(first, last) / speed;
      const double comm = platform_.comm_time(chain.out_size(last));
      const double saved_latency = latency;
      const double saved_period = period;
      lasts.push_back(last);
      failures.push_back(branch_failure[first][last + 1]);
      latency += work + comm;
      period = std::max({period, work, comm});
      if (last + 1 == n) {
        PartitionRecord record;
        record.lasts = lasts;
        record.replicas = algo_alloc_counts(
            failures, platform_.processor_count(),
            platform_.max_replication());
        record.period = period;
        record.latency = latency;
        double log_rel = 0.0;
        for (std::size_t j = 0; j < failures.size(); ++j) {
          log_rel +=
              detail::stage_log_reliability(failures[j], record.replicas[j]);
        }
        record.log_reliability = log_rel;
        records_.push_back(std::move(record));
      } else {
        self(self, last + 1);
      }
      lasts.pop_back();
      failures.pop_back();
      latency = saved_latency;
      period = saved_period;
    }
  };
  recurse(recurse, 0);
}

std::optional<double> HomogeneousExactSolver::best_log_reliability(
    double period_bound, double latency_bound) const {
  const PartitionRecord* best = nullptr;
  for (const PartitionRecord& record : records_) {
    if (record.period > period_bound || record.latency > latency_bound) {
      continue;
    }
    if (best == nullptr || record.log_reliability > best->log_reliability) {
      best = &record;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->log_reliability;
}

std::optional<ExactSolution> HomogeneousExactSolver::solve(
    double period_bound, double latency_bound,
    double log_reliability_floor) const {
  const PartitionRecord* best = nullptr;
  for (const PartitionRecord& record : records_) {
    // Warm-start cut: a record strictly below a proven-achievable floor
    // can neither win nor tie with the winner, so skipping it keeps the
    // first-winner-on-ties selection identical to the unpruned scan.
    if (record.log_reliability < log_reliability_floor) continue;
    if (record.period > period_bound || record.latency > latency_bound) {
      continue;
    }
    if (best == nullptr || record.log_reliability > best->log_reliability) {
      best = &record;
    }
  }
  if (best == nullptr) return std::nullopt;

  std::vector<std::vector<std::size_t>> procs;
  std::size_t next_proc = 0;
  for (unsigned q : best->replicas) {
    std::vector<std::size_t> replica_set(q);
    for (unsigned r = 0; r < q; ++r) replica_set[r] = next_proc++;
    procs.push_back(std::move(replica_set));
  }
  Mapping mapping(
      IntervalPartition::from_boundaries(best->lasts, chain_.size()),
      std::move(procs));
  MappingMetrics metrics = evaluate(chain_, platform_, mapping);
  return ExactSolution{std::move(mapping), metrics};
}

std::optional<double> exact_dp_log_reliability(const TaskChain& chain,
                                               const Platform& platform,
                                               double period_bound,
                                               double latency_bound) {
  if (!platform.is_homogeneous()) {
    throw std::invalid_argument(
        "exact_dp_log_reliability: homogeneous platforms only");
  }
  const std::size_t n = chain.size();
  const std::size_t p = platform.processor_count();
  const double speed = platform.speed(0);
  const unsigned max_q =
      static_cast<unsigned>(std::min<std::size_t>(
          platform.max_replication(), p));

  // The latency dimension requires integral interval durations.
  auto as_index = [](double value) -> std::size_t {
    const double rounded = std::round(value);
    if (std::abs(value - rounded) > 1e-9) {
      throw std::invalid_argument(
          "exact_dp_log_reliability: interval durations must be integral");
    }
    return static_cast<std::size_t>(rounded);
  };

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += chain.work(i) / speed + platform.comm_time(chain.out_size(i));
  }
  const std::size_t max_latency = std::min(
      as_index(std::ceil(total)),
      latency_bound == std::numeric_limits<double>::infinity()
          ? as_index(std::ceil(total))
          : static_cast<std::size_t>(std::floor(latency_bound)));

  const auto branch_failure =
      detail::interval_branch_failures(chain, platform);

  // F[i][k][l]: best log-reliability for the first i tasks on exactly k
  // processors with accumulated latency exactly l.
  const std::size_t lat_states = max_latency + 1;
  std::vector<double> F((n + 1) * (p + 1) * lat_states, detail::kMinusInf);
  auto at = [&](std::size_t i, std::size_t k, std::size_t l) -> double& {
    return F[(i * (p + 1) + k) * lat_states + l];
  };
  at(0, 0, 0) = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double work = chain.work_sum(j, i - 1) / speed;
      const double comm = platform.comm_time(chain.out_size(i - 1));
      if (work > period_bound || comm > period_bound) continue;
      const std::size_t duration = as_index(work + comm);
      for (std::size_t k = 1; k <= p; ++k) {
        const unsigned q_hi =
            static_cast<unsigned>(std::min<std::size_t>(max_q, k));
        for (unsigned q = 1; q <= q_hi; ++q) {
          const double stage =
              detail::stage_log_reliability(branch_failure[j][i], q);
          for (std::size_t l = duration; l <= max_latency; ++l) {
            const double before = at(j, k - q, l - duration);
            if (before == detail::kMinusInf) continue;
            double& cell = at(i, k, l);
            cell = std::max(cell, before + stage);
          }
        }
      }
    }
  }

  double best = detail::kMinusInf;
  for (std::size_t k = 1; k <= p; ++k) {
    for (std::size_t l = 0; l <= max_latency; ++l) {
      best = std::max(best, at(n, k, l));
    }
  }
  if (best == detail::kMinusInf) return std::nullopt;
  return best;
}

}  // namespace prts
