// Pareto-front exploration over the three antagonistic criteria
// (worst-case period, worst-case latency, failure probability). Used by
// the examples to show the trade-offs the paper's introduction discusses.
#pragma once

#include <vector>

#include "core/heuristics.hpp"
#include "eval/evaluation.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// A schedule on the front.
struct ParetoPoint {
  Mapping mapping;
  MappingMetrics metrics;
};

/// Filters a candidate set down to the non-dominated points (strictly
/// better in at least one of period/latency/failure, no worse in all).
/// Deterministic order: by period, then latency.
std::vector<ParetoPoint> pareto_filter(std::vector<ParetoPoint> candidates);

/// The exact Pareto front on a homogeneous platform, from the exhaustive
/// partition enumeration (every partition with its optimal allocation).
std::vector<ParetoPoint> exact_pareto_front(const TaskChain& chain,
                                            const Platform& platform);

/// A heuristic front for any platform: candidates from both heuristics
/// at every interval count, allocated both without a period bound and at
/// each candidate's own period (tightened allocation), then filtered.
std::vector<ParetoPoint> heuristic_pareto_front(const TaskChain& chain,
                                                const Platform& platform);

}  // namespace prts
