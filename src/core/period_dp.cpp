#include "core/period_dp.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/dp_detail.hpp"
#include "eval/evaluation.hpp"

namespace prts {

std::optional<DpSolution> optimize_reliability_period(
    const TaskChain& chain, const Platform& platform, double period_bound) {
  if (!platform.is_homogeneous()) {
    throw std::invalid_argument(
        "optimize_reliability_period: Algorithm 2 requires a homogeneous "
        "platform");
  }
  const std::size_t n = chain.size();
  const std::size_t p = platform.processor_count();
  const double speed = platform.speed(0);
  const unsigned max_q = static_cast<unsigned>(
      std::min<std::size_t>(platform.max_replication(), p));

  const auto failure = detail::interval_branch_failures(chain, platform);

  // Period feasibility of the interval covering tasks j..i-1: computation
  // time and both boundary communications must fit the bound (Eq. (6)).
  auto interval_fits = [&](std::size_t j, std::size_t i) {
    if (chain.work_sum(j, i - 1) / speed > period_bound) return false;
    if (platform.comm_time(chain.out_size(i - 1)) > period_bound) {
      return false;
    }
    const double in_size = j == 0 ? 0.0 : chain.out_size(j - 1);
    return platform.comm_time(in_size) <= period_bound;
  };

  std::vector<std::vector<double>> F(
      n + 1, std::vector<double>(p + 1, detail::kMinusInf));
  std::vector<std::vector<detail::DpChoice>> parent(
      n + 1, std::vector<detail::DpChoice>(p + 1));
  F[0][0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t k = 1; k <= p; ++k) {
      for (std::size_t j = 0; j < i; ++j) {
        if (!interval_fits(j, i)) continue;
        const unsigned q_max = static_cast<unsigned>(
            std::min<std::size_t>(max_q, k));
        for (unsigned q = 1; q <= q_max; ++q) {
          const double before = F[j][k - q];
          if (before == detail::kMinusInf) continue;
          const double value =
              before + detail::stage_log_reliability(failure[j][i], q);
          if (value > F[i][k]) {
            F[i][k] = value;
            parent[i][k] = detail::DpChoice{j, q};
          }
        }
      }
    }
  }

  std::size_t k_best = 0;
  double best = detail::kMinusInf;
  for (std::size_t k = 1; k <= p; ++k) {
    if (F[n][k] > best) {
      best = F[n][k];
      k_best = k;
    }
  }
  if (k_best == 0) return std::nullopt;
  return DpSolution{detail::rebuild_mapping(chain, parent, k_best),
                    LogReliability::from_log(best)};
}

std::optional<PeriodSolution> optimize_period_reliability(
    const TaskChain& chain, const Platform& platform,
    LogReliability min_reliability) {
  if (!platform.is_homogeneous()) {
    throw std::invalid_argument(
        "optimize_period_reliability: requires a homogeneous platform");
  }
  const std::size_t n = chain.size();
  const double speed = platform.speed(0);

  // Candidate periods: interval computation times and communication times.
  std::vector<double> candidates;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = j; i < n; ++i) {
      candidates.push_back(chain.work_sum(j, i) / speed);
    }
    candidates.push_back(platform.comm_time(chain.out_size(j)));
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Feasible at a candidate period iff Algorithm 2 reaches the bound.
  auto feasible = [&](double period) -> std::optional<DpSolution> {
    auto solution = optimize_reliability_period(chain, platform, period);
    if (solution && solution->reliability >= min_reliability) {
      return solution;
    }
    return std::nullopt;
  };

  if (!feasible(candidates.back())) return std::nullopt;

  std::size_t lo = 0;
  std::size_t hi = candidates.size() - 1;  // known feasible
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feasible(candidates[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  auto solution = feasible(candidates[hi]);
  return PeriodSolution{std::move(solution->mapping), solution->reliability,
                        candidates[hi]};
}

}  // namespace prts
