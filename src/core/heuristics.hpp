// The two-phase heuristics of Section 7 for the general (NP-complete)
// problem: first split the chain into i intervals — Heur-L (Algorithm 3)
// cuts at the smallest communication costs to favor latency, Heur-P
// (Algorithm 4) balances interval loads with a DP to favor the period —
// then allocate processors with the (heterogeneous) Algo-Alloc variant.
// One candidate schedule is produced per interval count i = 1..min(n,p);
// the driver keeps the most reliable candidate meeting the period and
// latency bounds.
#pragma once

#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "core/alloc.hpp"
#include "eval/evaluation.hpp"
#include "model/constraints.hpp"
#include "model/interval.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// Which interval-computation heuristic to use.
enum class HeuristicKind {
  kHeurL,  ///< Algorithm 3: cut at the smallest communication costs.
  kHeurP,  ///< Algorithm 4: balance interval loads (min-period DP).
};

/// Algorithm 3: the partition into `interval_count` intervals that cuts
/// the chain after the interval_count-1 cheapest output communications.
/// Requires 1 <= interval_count <= n.
IntervalPartition heur_l_partition(const TaskChain& chain,
                                   std::size_t interval_count);

/// Algorithm 4: the partition into `interval_count` intervals minimizing
/// max_j max(W_j / speed, o_j / bandwidth) — the optimal period on a
/// homogeneous platform of the given speed (Theorem-free DP; the paper
/// uses unit speed and bandwidth). Requires 1 <= interval_count <= n.
IntervalPartition heur_p_partition(const TaskChain& chain,
                                   std::size_t interval_count,
                                   double speed = 1.0,
                                   double bandwidth = 1.0);

/// Options for the heuristic driver.
struct HeuristicOptions {
  double period_bound = std::numeric_limits<double>::infinity();
  double latency_bound = std::numeric_limits<double>::infinity();

  /// Check the bounds against expected metrics instead of worst-case ones
  /// (they coincide on homogeneous platforms).
  bool use_expected_metrics = false;

  /// Optional task-processor eligibility (nullptr: everything allowed).
  const AllocationConstraints* constraints = nullptr;
};

/// A candidate schedule with its full evaluation.
struct HeuristicSolution {
  Mapping mapping;
  MappingMetrics metrics;
};

/// Phase 1 + phase 2 for every interval count i = 1..min(n,p): returns
/// each candidate for which the allocator succeeds under the period
/// bound. The latency bound is *not* applied here (see run_heuristic).
std::vector<HeuristicSolution> heuristic_candidates(
    const TaskChain& chain, const Platform& platform, HeuristicKind kind,
    const HeuristicOptions& options = {});

/// The Section 8 selection rule shared by run_heuristic and the cached
/// solver sessions (src/solver/adapters.cpp): the most reliable
/// candidate meeting both bounds, first winner kept on ties; nullptr
/// when none qualifies.
///
/// `log_reliability_floor` is a warm-start pruning cut (-inf: none):
/// candidates strictly below it are skipped without the bounds checks.
/// With a cut the winner meets or beats (solver::warm_floor_cut of a
/// known-feasible incumbent), the selection — ties included — is
/// identical to the unpruned scan.
const HeuristicSolution* best_heuristic_candidate(
    std::span<const HeuristicSolution> candidates, double period_bound,
    double latency_bound, bool use_expected_metrics = false,
    double log_reliability_floor =
        -std::numeric_limits<double>::infinity());

/// The most reliable candidate meeting both bounds, or nullopt. This is
/// the selection rule used in the experiments of Section 8.
std::optional<HeuristicSolution> run_heuristic(
    const TaskChain& chain, const Platform& platform, HeuristicKind kind,
    const HeuristicOptions& options = {});

}  // namespace prts
