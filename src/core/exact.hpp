// Exact tri-criteria optimization on homogeneous platforms: maximize
// reliability subject to period and latency bounds. This plays the role
// of the Section 5.4 integer linear program (the paper solves it with
// CPLEX, which is proprietary; see DESIGN.md for the substitution
// argument).
//
// Key structural facts (Section 5.5): on a homogeneous platform the
// period and latency of a mapping depend only on the partition, and for a
// fixed partition the optimal replication is Algo-Alloc (Theorem 4). The
// optimum over mappings is therefore the optimum over the 2^(n-1)
// partitions with at most min(n,p) intervals — 16 384 partitions at the
// paper's n = 15, each allocated greedily in O(p m).
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "eval/evaluation.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// An exact optimum with its full evaluation.
struct ExactSolution {
  Mapping mapping;
  MappingMetrics metrics;
};

/// Enumerates every partition once, attaches the Algo-Alloc reliability,
/// and answers (period, latency) queries by linear scan. Build once per
/// instance, query per sweep point.
class HomogeneousExactSolver {
 public:
  /// Precomputes all partition records. Throws std::invalid_argument on a
  /// heterogeneous platform (the problem is NP-complete there).
  HomogeneousExactSolver(const TaskChain& chain, const Platform& platform);

  /// One enumerated partition with its optimal allocation.
  struct PartitionRecord {
    std::vector<std::size_t> lasts;   ///< last task of each interval
    std::vector<unsigned> replicas;   ///< Algo-Alloc replica counts
    double period = 0.0;              ///< = worst = expected period
    double latency = 0.0;             ///< = worst = expected latency
    double log_reliability = 0.0;     ///< after optimal allocation
  };

  std::span<const PartitionRecord> records() const noexcept {
    return records_;
  }

  /// Best log-reliability achievable with period <= period_bound and
  /// latency <= latency_bound, or nullopt when no partition fits.
  std::optional<double> best_log_reliability(double period_bound,
                                             double latency_bound) const;

  /// Like best_log_reliability, but materializes the optimal mapping
  /// (processor ids dealt in chain order) and its metrics.
  ///
  /// `log_reliability_floor` is a warm-start pruning cut (-inf: none):
  /// records strictly below it are skipped without comparison. Callers
  /// must pass a cut that the true optimum meets or beats (e.g.
  /// solver::warm_floor_cut of a known-feasible incumbent's
  /// reliability), which keeps the selected record — first winner on
  /// ties included — identical to the unpruned scan.
  std::optional<ExactSolution> solve(
      double period_bound, double latency_bound,
      double log_reliability_floor =
          -std::numeric_limits<double>::infinity()) const;

 private:
  const TaskChain& chain_;
  const Platform& platform_;
  std::vector<PartitionRecord> records_;
};

/// Pseudo-polynomial cross-check of the enumeration solver: a DP over
/// (prefix, processors used, accumulated latency) that requires every
/// interval computation time W/s and communication time o/b to be
/// integral (throws std::invalid_argument otherwise). Returns the best
/// log-reliability under the bounds, or nullopt when infeasible. Used by
/// tests; the enumeration solver is the production path.
std::optional<double> exact_dp_log_reliability(const TaskChain& chain,
                                               const Platform& platform,
                                               double period_bound,
                                               double latency_bound);

}  // namespace prts
