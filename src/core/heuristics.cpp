#include "core/heuristics.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace prts {

IntervalPartition heur_l_partition(const TaskChain& chain,
                                   std::size_t interval_count) {
  const std::size_t n = chain.size();
  if (interval_count < 1 || interval_count > n) {
    throw std::invalid_argument("heur_l_partition: bad interval count");
  }
  // Candidate cut after task t costs o_t; pick the interval_count-1
  // cheapest cuts (ties by position, like the paper's stable sort).
  std::vector<std::size_t> cuts(n - 1);
  std::iota(cuts.begin(), cuts.end(), std::size_t{0});
  std::sort(cuts.begin(), cuts.end(), [&](std::size_t a, std::size_t b) {
    if (chain.out_size(a) != chain.out_size(b)) {
      return chain.out_size(a) < chain.out_size(b);
    }
    return a < b;
  });
  cuts.resize(interval_count - 1);
  std::sort(cuts.begin(), cuts.end());
  cuts.push_back(n - 1);
  return IntervalPartition::from_boundaries(cuts, n);
}

IntervalPartition heur_p_partition(const TaskChain& chain,
                                   std::size_t interval_count, double speed,
                                   double bandwidth) {
  const std::size_t n = chain.size();
  if (interval_count < 1 || interval_count > n) {
    throw std::invalid_argument("heur_p_partition: bad interval count");
  }
  const auto inf = std::numeric_limits<double>::infinity();

  // Contribution of the interval covering tasks a..b (inclusive) to the
  // period: its computation time and its outgoing communication time.
  auto contribution = [&](std::size_t a, std::size_t b) {
    return std::max(chain.work_sum(a, b) / speed,
                    chain.out_size(b) / bandwidth);
  };

  // F[j][k]: minimal max-contribution for the first j tasks split into k
  // intervals; choice[j][k] is the preceding prefix length.
  std::vector<std::vector<double>> F(
      n + 1, std::vector<double>(interval_count + 1, inf));
  std::vector<std::vector<std::size_t>> choice(
      n + 1, std::vector<std::size_t>(interval_count + 1, 0));
  F[0][0] = 0.0;
  for (std::size_t j = 1; j <= n; ++j) {
    const std::size_t k_hi = std::min(interval_count, j);
    for (std::size_t k = 1; k <= k_hi; ++k) {
      for (std::size_t prev = k - 1; prev < j; ++prev) {
        if (F[prev][k - 1] == inf) continue;
        const double value =
            std::max(F[prev][k - 1], contribution(prev, j - 1));
        if (value < F[j][k]) {
          F[j][k] = value;
          choice[j][k] = prev;
        }
      }
    }
  }

  std::vector<std::size_t> lasts;
  std::size_t j = n;
  for (std::size_t k = interval_count; k >= 1; --k) {
    lasts.push_back(j - 1);
    j = choice[j][k];
  }
  std::reverse(lasts.begin(), lasts.end());
  return IntervalPartition::from_boundaries(lasts, n);
}

std::vector<HeuristicSolution> heuristic_candidates(
    const TaskChain& chain, const Platform& platform, HeuristicKind kind,
    const HeuristicOptions& options) {
  const std::size_t max_intervals =
      std::min(chain.size(), platform.processor_count());
  // Heur-P balances with the platform speed when it is meaningful (all
  // equal); otherwise the paper's unit-speed balancing applies.
  const double balance_speed =
      platform.is_homogeneous() ? platform.speed(0) : 1.0;

  AllocOptions alloc_options;
  alloc_options.period_bound = options.period_bound;
  alloc_options.constraints = options.constraints;

  std::vector<HeuristicSolution> candidates;
  for (std::size_t i = 1; i <= max_intervals; ++i) {
    IntervalPartition partition =
        kind == HeuristicKind::kHeurL
            ? heur_l_partition(chain, i)
            : heur_p_partition(chain, i, balance_speed,
                               platform.bandwidth());
    auto mapping =
        allocate_processors(chain, platform, partition, alloc_options);
    if (!mapping) continue;
    MappingMetrics metrics = evaluate(chain, platform, *mapping);
    candidates.push_back(HeuristicSolution{std::move(*mapping), metrics});
  }
  return candidates;
}

const HeuristicSolution* best_heuristic_candidate(
    std::span<const HeuristicSolution> candidates, double period_bound,
    double latency_bound, bool use_expected_metrics,
    double log_reliability_floor) {
  const HeuristicSolution* best = nullptr;
  for (const HeuristicSolution& candidate : candidates) {
    // Warm-start cut: strictly below a proven-achievable floor a
    // candidate can neither win nor tie, so skipping keeps the
    // first-winner selection identical.
    if (candidate.metrics.reliability.log() < log_reliability_floor) {
      continue;
    }
    const double period = use_expected_metrics
                              ? candidate.metrics.expected_period
                              : candidate.metrics.worst_period;
    const double latency = use_expected_metrics
                               ? candidate.metrics.expected_latency
                               : candidate.metrics.worst_latency;
    if (period > period_bound || latency > latency_bound) continue;
    if (best == nullptr ||
        candidate.metrics.reliability > best->metrics.reliability) {
      best = &candidate;
    }
  }
  return best;
}

std::optional<HeuristicSolution> run_heuristic(const TaskChain& chain,
                                               const Platform& platform,
                                               HeuristicKind kind,
                                               const HeuristicOptions& options) {
  const auto candidates =
      heuristic_candidates(chain, platform, kind, options);
  const HeuristicSolution* best = best_heuristic_candidate(
      candidates, options.period_bound, options.latency_bound,
      options.use_expected_metrics);
  if (best == nullptr) return std::nullopt;
  return *best;
}

}  // namespace prts
