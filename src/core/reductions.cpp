#include "core/reductions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace prts::reductions {

TwoPartitionReduction build_two_partition_reduction(
    const std::vector<double>& values, double lambda) {
  if (values.empty()) {
    throw std::invalid_argument("two_partition: need at least one value");
  }
  const std::size_t n = values.size();
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  const double half_sum = sum / 2.0;
  const double max_value = *std::max_element(values.begin(), values.end());
  const double min_value = *std::min_element(values.begin(), values.end());
  // B = (n/4 + n a_max^2 + T + 2) / (2 a_min), as in the proof.
  const double separator =
      (static_cast<double>(n) / 4.0 +
       static_cast<double>(n) * max_value * max_value + half_sum + 2.0) /
      (2.0 * min_value);

  // Chain: for each i, tasks (B), (1/2 with output a_i), (a_i); then a
  // final B task. All other outputs are 0 (per the proof's o values).
  std::vector<Task> tasks;
  tasks.reserve(3 * n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back(Task{separator, 0.0});
    tasks.push_back(Task{0.5, values[i]});
    tasks.push_back(Task{values[i], 0.0});
  }
  tasks.push_back(Task{separator, 0.0});

  // 6n unit-speed processors, K = 2; the proof's rcomm = 1 is modeled by
  // a zero link failure rate.
  Platform platform = Platform::homogeneous(6 * n, 1.0, lambda, 1.0, 0.0, 2);

  const double latency_bound = (static_cast<double>(n) + 1.0) * separator +
                               static_cast<double>(n) / 2.0 + 3.0 * half_sum;
  return TwoPartitionReduction{TaskChain(std::move(tasks)),
                               std::move(platform), latency_bound, separator,
                               half_sum};
}

Mapping two_partition_mapping(const TwoPartitionReduction& reduction,
                              const std::vector<bool>& in_subset) {
  const std::size_t n = in_subset.size();
  std::vector<std::size_t> lasts;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t base = 3 * i;  // first task of block i
    lasts.push_back(base);           // separator task alone
    if (in_subset[i]) {
      lasts.push_back(base + 1);  // split: (1/2) | (a_i)
      lasts.push_back(base + 2);
    } else {
      lasts.push_back(base + 2);  // merged: (1/2, a_i)
    }
  }
  lasts.push_back(3 * n);  // final separator

  std::vector<std::vector<std::size_t>> procs;
  std::size_t next = 0;
  for (std::size_t j = 0; j < lasts.size(); ++j) {
    procs.push_back({next, next + 1});  // every interval duplicated
    next += 2;
  }
  return Mapping(
      IntervalPartition::from_boundaries(lasts, reduction.chain.size()),
      std::move(procs));
}

ThreePartitionReduction build_three_partition_reduction(
    const std::vector<double>& values, double target, double lambda) {
  if (values.size() % 3 != 0 || values.empty()) {
    throw std::invalid_argument(
        "three_partition: need 3n values for some n >= 1");
  }
  const std::size_t n = values.size() / 3;
  const double gamma = 1.0 + 1.0 / (2.0 * (target - 1.0));

  // n tasks of work 1/n each, outputs 0 (rcomm = 1).
  std::vector<Task> tasks(n, Task{1.0 / static_cast<double>(n), 0.0});

  // 3n unit-speed processors with failure rate lambda * gamma^{a_u}.
  std::vector<Processor> processors;
  processors.reserve(values.size());
  for (double a : values) {
    processors.push_back(Processor{1.0, lambda * std::pow(gamma, a)});
  }
  Platform platform(std::move(processors), 1.0, 0.0, 3);
  return ThreePartitionReduction{TaskChain(std::move(tasks)),
                                 std::move(platform), gamma, lambda, target};
}

Mapping three_partition_mapping(
    const ThreePartitionReduction& reduction,
    const std::vector<std::vector<std::size_t>>& groups) {
  return Mapping(IntervalPartition::singletons(reduction.chain.size()),
                 groups);
}

}  // namespace prts::reductions
