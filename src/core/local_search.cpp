#include "core/local_search.hpp"

#include <algorithm>
#include <vector>

namespace prts {
namespace {

/// Mutable mapping state during the search.
struct State {
  std::vector<std::size_t> lasts;
  std::vector<std::vector<std::size_t>> procs;
};

State to_state(const Mapping& mapping) {
  State state;
  state.lasts = mapping.partition().boundaries();
  for (std::size_t j = 0; j < mapping.interval_count(); ++j) {
    state.procs.emplace_back(mapping.processors(j).begin(),
                             mapping.processors(j).end());
  }
  return state;
}

Mapping to_mapping(const State& state, std::size_t task_count) {
  return Mapping(IntervalPartition::from_boundaries(state.lasts, task_count),
                 state.procs);
}

/// Evaluates a state; returns nullopt when it violates the bounds or the
/// allocation constraints.
std::optional<MappingMetrics> check(const TaskChain& chain,
                                    const Platform& platform,
                                    const State& state,
                                    const LocalSearchOptions& options) {
  const Mapping mapping = to_mapping(state, chain.size());
  if (options.constraints != nullptr) {
    for (std::size_t j = 0; j < mapping.interval_count(); ++j) {
      for (std::size_t u : mapping.processors(j)) {
        if (!options.constraints->interval_allowed(
                mapping.partition().interval(j), u)) {
          return std::nullopt;
        }
      }
    }
  }
  const MappingMetrics metrics = evaluate(chain, platform, mapping);
  const double period = options.use_expected_metrics
                            ? metrics.expected_period
                            : metrics.worst_period;
  const double latency = options.use_expected_metrics
                             ? metrics.expected_latency
                             : metrics.worst_latency;
  if (period > options.period_bound || latency > options.latency_bound) {
    return std::nullopt;
  }
  return metrics;
}

/// All ways to split a replica set into two non-empty halves (by bitmask;
/// set sizes are <= K, typically <= 4, so this is at most 14 options).
std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
two_way_splits(const std::vector<std::size_t>& procs) {
  std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
      splits;
  const std::size_t k = procs.size();
  if (k < 2) return splits;
  for (std::size_t mask = 1; mask + 1 < (std::size_t{1} << k); ++mask) {
    std::vector<std::size_t> left;
    std::vector<std::size_t> right;
    for (std::size_t bit = 0; bit < k; ++bit) {
      ((mask >> bit) & 1u ? left : right).push_back(procs[bit]);
    }
    splits.emplace_back(std::move(left), std::move(right));
  }
  return splits;
}

}  // namespace

std::optional<LocalSearchResult> improve_mapping(
    const TaskChain& chain, const Platform& platform, const Mapping& start,
    const LocalSearchOptions& options) {
  if (start.validate(platform).has_value()) return std::nullopt;
  State state = to_state(start);
  auto current = check(chain, platform, state, options);
  if (!current) return std::nullopt;

  LocalSearchResult result{to_mapping(state, chain.size()), *current, 0, 0};
  const unsigned max_k = platform.max_replication();

  // Tries a candidate state; commits it when strictly more reliable.
  auto try_improve = [&](const State& candidate) -> bool {
    const auto metrics = check(chain, platform, candidate, options);
    if (!metrics) return false;
    if (metrics->reliability.log() <=
        current->reliability.log() + 1e-15) {
      return false;
    }
    state = candidate;
    current = metrics;
    ++result.moves_accepted;
    return true;
  };

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;
    bool improved = false;

    // Move 0: recruit an idle processor as an extra replica (always a
    // reliability gain; may be vetoed by the worst-case bounds).
    std::vector<bool> used(platform.processor_count(), false);
    for (const auto& replica_set : state.procs) {
      for (std::size_t u : replica_set) used[u] = true;
    }
    for (std::size_t u = 0; u < platform.processor_count() && !improved;
         ++u) {
      if (used[u]) continue;
      for (std::size_t j = 0; j < state.procs.size() && !improved; ++j) {
        if (state.procs[j].size() >= max_k) continue;
        State candidate = state;
        candidate.procs[j].push_back(u);
        if (try_improve(candidate)) improved = true;
      }
    }

    // Idle processors ordered most-reliable-per-work first, used by the
    // split move to refill both halves (a raw split loses redundancy and
    // almost never improves on its own — the refilled macro-move jumps
    // that valley).
    std::vector<std::size_t> idle;
    for (std::size_t u = 0; u < platform.processor_count(); ++u) {
      if (!used[u]) idle.push_back(u);
    }
    std::sort(idle.begin(), idle.end(), [&](std::size_t a, std::size_t b) {
      const double ka = platform.failure_rate(a) / platform.speed(a);
      const double kb = platform.failure_rate(b) / platform.speed(b);
      if (ka != kb) return ka < kb;
      return a < b;
    });

    // Move 1: split interval j at an inner boundary, dividing its
    // replicas between the halves (all 2-way divisions), optionally
    // refilling both halves with idle processors up to K.
    const std::size_t m = state.lasts.size();
    for (std::size_t j = 0; j < m && !improved; ++j) {
      const std::size_t first = j == 0 ? 0 : state.lasts[j - 1] + 1;
      const std::size_t last = state.lasts[j];
      if (first == last || state.procs[j].size() < 2) continue;
      for (std::size_t cut = first; cut < last && !improved; ++cut) {
        for (auto& [left, right] : two_way_splits(state.procs[j])) {
          for (const bool refill : {true, false}) {
            State candidate = state;
            std::vector<std::size_t> left_set = left;
            std::vector<std::size_t> right_set = right;
            if (refill) {
              std::size_t next_idle = 0;
              while (next_idle < idle.size() &&
                     (left_set.size() < max_k ||
                      right_set.size() < max_k)) {
                // Top up the thinner half first.
                auto& target = left_set.size() <= right_set.size() &&
                                       left_set.size() < max_k
                                   ? left_set
                                   : right_set;
                if (target.size() >= max_k) break;
                target.push_back(idle[next_idle++]);
              }
            }
            candidate.lasts.insert(
                candidate.lasts.begin() + static_cast<std::ptrdiff_t>(j),
                cut);
            candidate.procs[j] = left_set;
            candidate.procs.insert(
                candidate.procs.begin() + static_cast<std::ptrdiff_t>(j) +
                    1,
                right_set);
            if (try_improve(candidate)) {
              improved = true;
              break;
            }
          }
          if (improved) break;
        }
      }
    }

    // Move 2: merge adjacent intervals, keeping the most reliable <= K
    // replicas of the union (the rest go idle).
    for (std::size_t j = 0; j + 1 < state.lasts.size() && !improved; ++j) {
      State candidate = state;
      std::vector<std::size_t> merged = candidate.procs[j];
      merged.insert(merged.end(), candidate.procs[j + 1].begin(),
                    candidate.procs[j + 1].end());
      const std::size_t first = j == 0 ? 0 : candidate.lasts[j - 1] + 1;
      const std::size_t last = candidate.lasts[j + 1];
      const double work = chain.work_sum(first, last);
      // Most reliable first: smallest branch failure on the merged work.
      std::sort(merged.begin(), merged.end(),
                [&](std::size_t a, std::size_t b) {
                  const double fa = platform.failure_rate(a) *
                                    (work / platform.speed(a));
                  const double fb = platform.failure_rate(b) *
                                    (work / platform.speed(b));
                  if (fa != fb) return fa < fb;
                  return a < b;
                });
      if (merged.size() > max_k) merged.resize(max_k);
      candidate.lasts.erase(candidate.lasts.begin() +
                            static_cast<std::ptrdiff_t>(j));
      candidate.procs.erase(candidate.procs.begin() +
                            static_cast<std::ptrdiff_t>(j) + 1);
      candidate.procs[j] = std::move(merged);
      if (try_improve(candidate)) improved = true;
    }

    // Move 3: move one replica from interval a to interval b.
    for (std::size_t a = 0; a < state.procs.size() && !improved; ++a) {
      if (state.procs[a].size() < 2) continue;
      for (std::size_t b = 0; b < state.procs.size() && !improved; ++b) {
        if (a == b || state.procs[b].size() >= max_k) continue;
        for (std::size_t idx = 0; idx < state.procs[a].size(); ++idx) {
          State candidate = state;
          const std::size_t u = candidate.procs[a][idx];
          candidate.procs[a].erase(candidate.procs[a].begin() +
                                   static_cast<std::ptrdiff_t>(idx));
          candidate.procs[b].push_back(u);
          if (try_improve(candidate)) {
            improved = true;
            break;
          }
        }
      }
    }

    // Move 4: swap the replica sets of two intervals.
    for (std::size_t a = 0; a < state.procs.size() && !improved; ++a) {
      for (std::size_t b = a + 1; b < state.procs.size() && !improved;
           ++b) {
        State candidate = state;
        std::swap(candidate.procs[a], candidate.procs[b]);
        if (try_improve(candidate)) improved = true;
      }
    }

    // Move 5: shift the boundary between adjacent intervals by one task
    // in either direction (classic partition refinement).
    for (std::size_t j = 0; j + 1 < state.lasts.size() && !improved; ++j) {
      const std::size_t first = j == 0 ? 0 : state.lasts[j - 1] + 1;
      if (state.lasts[j] > first) {  // left interval keeps >= 1 task
        State candidate = state;
        --candidate.lasts[j];
        if (try_improve(candidate)) improved = true;
      }
      if (!improved && state.lasts[j] + 1 < state.lasts[j + 1]) {
        State candidate = state;
        ++candidate.lasts[j];
        if (try_improve(candidate)) improved = true;
      }
    }

    if (!improved) break;  // local optimum
  }

  result.mapping = to_mapping(state, chain.size());
  result.metrics = *current;
  return result;
}

}  // namespace prts
