// The NP-hardness reduction constructions of the paper, as code.
//
// Section 5.3 (Theorem 3) reduces 2-PARTITION to bi-criteria
// (reliability, latency) optimization on homogeneous platforms;
// Section 6 (Theorem 5) reduces 3-PARTITION to mono-criterion reliability
// optimization on heterogeneous platforms. Building the reduction
// instances programmatically lets the test suite check the *forward*
// direction of each proof end-to-end: a yes-instance of the source
// problem yields a mapping meeting the claimed reliability/latency
// bounds, and a better-than-claimed mapping cannot exist (verified by
// exhaustive search on small instances).
//
// The numerical constants of the paper (lambda = 1e-8 * 10^-n * a_max^-3n)
// underflow double precision for all but trivial sizes; the builders
// accept an explicit lambda so tests can use representable magnitudes
// while keeping the combinatorial structure intact.
#pragma once

#include <cstddef>
#include <vector>

#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts::reductions {

/// The Section 5.3 instance built from a 2-PARTITION input a_1..a_n:
/// 3n+1 tasks (alternating B-sized separators, 1/2-work tasks and
/// a_i-work tasks), 6n unit-speed processors, K = 2, plus the latency
/// budget L = (n+1)B + n/2 + 3T of the proof.
struct TwoPartitionReduction {
  TaskChain chain;
  Platform platform;
  double latency_bound;
  double separator_work;  ///< B
  double half_sum;        ///< T = (sum a_i) / 2
};

/// Builds the reduction instance. `lambda` overrides the paper's
/// (denormal) failure rate; the structure is unchanged.
TwoPartitionReduction build_two_partition_reduction(
    const std::vector<double>& values, double lambda);

/// The mapping the proof associates with a solution subset A' (indices
/// into `values`): every interval duplicated, separators alone, and for
/// each i the pair (tau_{3i-1}, tau_{3i}) split iff a_i is in A'.
/// Requires enough processors (guaranteed by the construction).
Mapping two_partition_mapping(const TwoPartitionReduction& reduction,
                              const std::vector<bool>& in_subset);

/// The Section 6 instance built from a 3-PARTITION input a_1..a_3n with
/// target T: n unit-work tasks (scaled by 1/n), 3n processors with
/// failure rates lambda * gamma^{a_u}, gamma = 1 + 1/(2(T-1)), K = 3.
struct ThreePartitionReduction {
  TaskChain chain;
  Platform platform;
  double gamma;
  double lambda;
  double target;  ///< T
};

/// Builds the reduction instance; `lambda` overrides 1e-8 / (n T^2).
ThreePartitionReduction build_three_partition_reduction(
    const std::vector<double>& values, double target, double lambda);

/// The mapping the proof associates with a partition B_1..B_n of the
/// processor indices: task i alone on the three processors of B_i.
Mapping three_partition_mapping(const ThreePartitionReduction& reduction,
                                const std::vector<std::vector<std::size_t>>&
                                    groups);

}  // namespace prts::reductions
