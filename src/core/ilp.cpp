#include "core/ilp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/dp_detail.hpp"

namespace prts {

IlpFormulation::IlpFormulation(const TaskChain& chain,
                               const Platform& platform, double period_bound,
                               double latency_bound,
                               bool include_comm_reliability)
    : chain_(chain),
      platform_(platform),
      period_bound_(period_bound),
      latency_bound_(latency_bound) {
  if (!platform.is_homogeneous()) {
    throw std::invalid_argument(
        "IlpFormulation: the Section 5.4 ILP is for homogeneous platforms");
  }
  const std::size_t n = chain.size();
  const double speed = platform.speed(0);
  const unsigned max_k = static_cast<unsigned>(std::min<std::size_t>(
      platform.max_replication(), platform.processor_count()));

  for (std::size_t first = 0; first < n; ++first) {
    for (std::size_t last = first; last < n; ++last) {
      const double work = chain.work_sum(first, last) / speed;
      const double in_size = first == 0 ? 0.0 : chain.out_size(first - 1);
      const double out_comm = platform.comm_time(chain.out_size(last));
      const bool fits = work <= period_bound_ && out_comm <= period_bound_ &&
                        platform.comm_time(in_size) <= period_bound_;

      double branch_failure;
      if (include_comm_reliability) {
        LogReliability r = LogReliability::exp_failure(
            platform.failure_rate(0), work);
        if (in_size > 0.0) {
          r *= LogReliability::exp_failure(platform.link_failure_rate(),
                                           platform.comm_time(in_size));
        }
        if (chain.out_size(last) > 0.0) {
          r *= LogReliability::exp_failure(platform.link_failure_rate(),
                                           out_comm);
        }
        branch_failure = r.failure();
      } else {
        // Literal printed coefficient: computation reliability only.
        branch_failure =
            failure_from_rate(platform.failure_rate(0), work);
      }

      for (unsigned k = 1; k <= max_k; ++k) {
        Variable var;
        var.first = first;
        var.last = last;
        var.replicas = k;
        var.objective = detail::stage_log_reliability(branch_failure, k);
        var.period_feasible = fits;
        variables_.push_back(var);
      }
    }
  }
}

std::optional<std::string> IlpFormulation::violated_constraint(
    std::span<const std::uint8_t> assignment) const {
  const std::size_t n = chain_.size();
  const double speed = platform_.speed(0);

  // (1) every task in exactly one chosen interval.
  std::vector<unsigned> cover(n, 0);
  std::size_t processors = 0;
  double latency = 0.0;
  for (std::size_t v = 0; v < variables_.size(); ++v) {
    if (!assignment[v]) continue;
    const Variable& var = variables_[v];
    for (std::size_t t = var.first; t <= var.last; ++t) ++cover[t];
    processors += var.replicas;
    latency += chain_.work_sum(var.first, var.last) / speed +
               platform_.comm_time(chain_.out_size(var.last));
    // (4) period rows: a chosen interval must be period-feasible.
    if (!var.period_feasible) {
      return "period row violated by interval [" +
             std::to_string(var.first) + "," + std::to_string(var.last) +
             "]";
    }
  }
  for (std::size_t t = 0; t < n; ++t) {
    if (cover[t] != 1) {
      return "task " + std::to_string(t) + " covered " +
             std::to_string(cover[t]) + " times";
    }
  }
  // (2) at most p processors.
  if (processors > platform_.processor_count()) {
    return "uses " + std::to_string(processors) + " processors, above p=" +
           std::to_string(platform_.processor_count());
  }
  // (3) latency row.
  if (latency > latency_bound_) {
    return "latency " + std::to_string(latency) + " above bound";
  }
  return std::nullopt;
}

double IlpFormulation::objective_value(
    std::span<const std::uint8_t> assignment) const {
  double value = 0.0;
  for (std::size_t v = 0; v < variables_.size(); ++v) {
    if (assignment[v]) value += variables_[v].objective;
  }
  return value;
}

namespace {

/// Variables regrouped by start task for the chain-structured search.
struct Arc {
  std::size_t variable_index;
  std::size_t last;
  unsigned replicas;
  double objective;
  double duration;  // contribution to latency
};

}  // namespace

std::optional<IlpSolution> solve_ilp(const IlpFormulation& formulation,
                                     double objective_floor) {
  const TaskChain& chain = formulation.chain();
  const Platform& platform = formulation.platform();
  const std::size_t n = chain.size();
  const std::size_t p = platform.processor_count();
  const double speed = platform.speed(0);

  std::vector<std::vector<Arc>> arcs(n);
  for (std::size_t v = 0; v < formulation.variables().size(); ++v) {
    const auto& var = formulation.variables()[v];
    if (!var.period_feasible) continue;
    const double duration =
        chain.work_sum(var.first, var.last) / speed +
        platform.comm_time(chain.out_size(var.last));
    arcs[var.first].push_back(
        Arc{v, var.last, var.replicas, var.objective, duration});
  }
  // Explore high-reliability choices first so the incumbent tightens fast.
  for (auto& outgoing : arcs) {
    std::sort(outgoing.begin(), outgoing.end(),
              [](const Arc& a, const Arc& b) {
                return a.objective > b.objective;
              });
  }

  // Admissible bound: best objective for tasks t..n-1 with at most k
  // processors, ignoring latency (a relaxation, hence an upper bound).
  std::vector<std::vector<double>> bound(
      n + 1, std::vector<double>(p + 1, detail::kMinusInf));
  for (std::size_t k = 0; k <= p; ++k) bound[n][k] = 0.0;
  for (std::size_t t = n; t-- > 0;) {
    for (std::size_t k = 1; k <= p; ++k) {
      bound[t][k] = bound[t][k - 1];  // "at most k": monotone in k
      for (const Arc& arc : arcs[t]) {
        if (arc.replicas > k) continue;
        const double after = bound[arc.last + 1][k - arc.replicas];
        if (after == detail::kMinusInf) continue;
        bound[t][k] = std::max(bound[t][k], arc.objective + after);
      }
    }
  }
  if (bound[0][p] == detail::kMinusInf) return std::nullopt;

  double best_value = detail::kMinusInf;
  std::vector<std::size_t> best_chosen;
  std::vector<std::size_t> current;

  // The warm-start floor only *prunes*; acceptance still starts from
  // -inf. The uncut search's answer is the first DFS leaf attaining the
  // optimum M, and every ancestor of that leaf has an admissible bound
  // >= M > objective_floor (the caller's cut is strictly below M), so
  // the extra pruning can only remove subtrees the answer is not in —
  // same leaf, same chosen variables, same construction.
  auto dfs = [&](auto&& self, std::size_t t, std::size_t procs_left,
                 double latency_left, double value) -> void {
    if (t == n) {
      if (value > best_value) {
        best_value = value;
        best_chosen = current;
      }
      return;
    }
    if (value + bound[t][procs_left] <= std::max(best_value, objective_floor)) {
      return;  // prune
    }
    for (const Arc& arc : arcs[t]) {
      if (arc.replicas > procs_left) continue;
      if (arc.duration > latency_left) continue;
      current.push_back(arc.variable_index);
      self(self, arc.last + 1, procs_left - arc.replicas,
           latency_left - arc.duration, value + arc.objective);
      current.pop_back();
    }
  };
  dfs(dfs, 0, p, formulation.latency_bound(), 0.0);

  if (best_value == detail::kMinusInf) return std::nullopt;

  std::vector<std::size_t> lasts;
  std::vector<std::vector<std::size_t>> procs;
  std::size_t next_proc = 0;
  std::sort(best_chosen.begin(), best_chosen.end(),
            [&](std::size_t a, std::size_t b) {
              return formulation.variables()[a].first <
                     formulation.variables()[b].first;
            });
  for (std::size_t v : best_chosen) {
    const auto& var = formulation.variables()[v];
    lasts.push_back(var.last);
    std::vector<std::size_t> replica_set(var.replicas);
    for (unsigned r = 0; r < var.replicas; ++r) replica_set[r] = next_proc++;
    procs.push_back(std::move(replica_set));
  }
  Mapping mapping(IntervalPartition::from_boundaries(lasts, n),
                  std::move(procs));
  return IlpSolution{std::move(best_chosen), std::move(mapping), best_value};
}

}  // namespace prts
