// Local-search improvement of mappings — a step toward the paper's §9
// future work ("heuristics for even more difficult problems"). Starting
// from any feasible mapping (typically a Heur-L/Heur-P result), hill-climb
// over four neighborhood moves while keeping the period and latency
// bounds satisfied:
//   * split an interval at one of its inner boundaries,
//   * merge two adjacent intervals (freeing one replica set),
//   * move one replica processor from one interval to another,
//   * swap the replica sets of two intervals (useful on heterogeneous
//     platforms where fast processors should carry heavy intervals).
// Moves are accepted when they strictly improve the Eq. (9) reliability;
// the search is deterministic (first-improvement in a fixed move order)
// and stops at a local optimum or after `max_rounds` sweeps.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>

#include "eval/evaluation.hpp"
#include "model/constraints.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// Options for the local search.
struct LocalSearchOptions {
  double period_bound = std::numeric_limits<double>::infinity();
  double latency_bound = std::numeric_limits<double>::infinity();

  /// Check bounds against expected metrics instead of worst-case ones.
  bool use_expected_metrics = false;

  /// Optional task-processor eligibility (nullptr: everything allowed).
  const AllocationConstraints* constraints = nullptr;

  /// Maximum full neighborhood sweeps (each sweep is O(n^2 + m p)).
  std::size_t max_rounds = 64;
};

/// Outcome of a local search run.
struct LocalSearchResult {
  Mapping mapping;
  MappingMetrics metrics;
  std::size_t rounds = 0;          ///< sweeps executed
  std::size_t moves_accepted = 0;  ///< improving moves taken
};

/// Improves `start` (which must satisfy the bounds and be valid for the
/// platform) by hill-climbing; returns the improved mapping, never worse
/// than the start. Returns nullopt if `start` itself violates the bounds.
std::optional<LocalSearchResult> improve_mapping(
    const TaskChain& chain, const Platform& platform, const Mapping& start,
    const LocalSearchOptions& options = {});

}  // namespace prts
