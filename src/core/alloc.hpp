// Allocation of processors to a fixed interval partition.
//
// Homogeneous platforms (Section 5.5): the greedy Algo-Alloc is optimal
// (Theorem 4) — allocate one processor per interval, then repeatedly give
// the next processor to the interval whose reliability ratio
// (reliability with one more replica / current reliability) is largest.
//
// Heterogeneous platforms (Section 7.2): the natural extension — visit
// processors from most to least reliable (increasing lambda_u / s_u, the
// failure exponent per unit of work); first give one processor to the
// longest unserved interval it can serve within the period bound, then
// give every remaining processor to the interval with the best
// reliability ratio among those it can serve. Optional task-processor
// allocation constraints are honored.
#pragma once

#include <limits>
#include <optional>

#include "model/constraints.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// Options for the allocator.
struct AllocOptions {
  /// Worst-case period bound: a processor is never assigned to an
  /// interval whose computation time on it exceeds the bound.
  double period_bound = std::numeric_limits<double>::infinity();

  /// Optional task-processor eligibility (nullptr: everything allowed).
  const AllocationConstraints* constraints = nullptr;
};

/// Allocates the platform's processors to the partition's intervals,
/// maximizing the Eq. (9) reliability. Returns nullopt when some interval
/// cannot receive any processor (more intervals than processors, period
/// bound too tight, or constraints unsatisfiable).
///
/// On homogeneous platforms with no period bound and no constraints this
/// is exactly Algo-Alloc and the result is optimal (Theorem 4); in
/// general it is the Section 7.2 heuristic.
std::optional<Mapping> allocate_processors(const TaskChain& chain,
                                           const Platform& platform,
                                           const IntervalPartition& partition,
                                           const AllocOptions& options = {});

/// Replication counts only, for homogeneous platforms: the greedy
/// Algo-Alloc on interval branch-failure probabilities. `branch_failure[j]`
/// is the failure probability of one replica of interval j (Eq. (9) inner
/// term); the result is the per-interval replica count summing to at most
/// `processor_count`, each between 1 and `max_replication`, maximizing
/// sum_j log(1 - branch_failure[j]^q_j). Returns an empty vector when
/// interval_count > processor_count.
std::vector<unsigned> algo_alloc_counts(std::span<const double> branch_failure,
                                        std::size_t processor_count,
                                        unsigned max_replication);

}  // namespace prts
