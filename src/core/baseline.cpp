#include "core/baseline.hpp"

namespace prts {

std::optional<BaselineSolution> one_to_one_mapping(
    const TaskChain& chain, const Platform& platform,
    const AllocOptions& options) {
  auto mapping = allocate_processors(
      chain, platform, IntervalPartition::singletons(chain.size()), options);
  if (!mapping) return std::nullopt;
  MappingMetrics metrics = evaluate(chain, platform, *mapping);
  return BaselineSolution{std::move(*mapping), metrics};
}

}  // namespace prts
