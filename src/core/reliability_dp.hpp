// Algorithm 1: optimal mono-criterion reliability optimization on fully
// homogeneous platforms (Section 5.1, Theorem 1), a dynamic program over
// (prefix length, processors used) running in O(n^2 p K) <= O(n^2 p^2).
#pragma once

#include <optional>

#include "common/prob.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// An optimal mapping with its Eq. (9) reliability.
struct DpSolution {
  Mapping mapping;
  LogReliability reliability;
};

/// Computes the reliability-optimal interval mapping on a fully
/// homogeneous platform (Algorithm 1). Processor ids are assigned to
/// intervals in chain order (they are interchangeable on a homogeneous
/// platform). Throws std::invalid_argument on heterogeneous platforms,
/// where the problem is NP-complete (Theorem 5).
DpSolution optimize_reliability(const TaskChain& chain,
                                const Platform& platform);

}  // namespace prts
