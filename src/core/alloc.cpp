#include "core/alloc.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "eval/evaluation.hpp"

namespace prts {
namespace {

/// Failure probability of one replica branch of interval j on processor u
/// (Eq. (9) inner term: comm-in, compute, comm-out in series).
double branch_failure_on(const TaskChain& chain, const Platform& platform,
                         const IntervalPartition& part, std::size_t j,
                         std::size_t u) {
  const double in_size = j == 0 ? 0.0 : part.out_size(chain, j - 1);
  return branch_reliability(platform, u, part.work(chain, j), in_size,
                            part.out_size(chain, j))
      .failure();
}

}  // namespace

std::vector<unsigned> algo_alloc_counts(std::span<const double> branch_failure,
                                        std::size_t processor_count,
                                        unsigned max_replication) {
  const std::size_t m = branch_failure.size();
  if (m > processor_count) return {};
  std::vector<unsigned> counts(m, 1);
  std::size_t used = m;

  // log-reliability gain of going from q to q+1 replicas on interval j:
  // log1p(-f^(q+1)) - log1p(-f^q); Theorem 4 shows it decreases with q, so
  // the greedy argmax over intervals is optimal.
  auto gain = [&](std::size_t j) {
    const double f = branch_failure[j];
    const double q = static_cast<double>(counts[j]);
    return std::log1p(-std::pow(f, q + 1.0)) - std::log1p(-std::pow(f, q));
  };

  while (used < processor_count) {
    double best_gain = -1.0;
    std::size_t best_j = m;
    for (std::size_t j = 0; j < m; ++j) {
      if (counts[j] >= max_replication) continue;
      const double g = gain(j);
      if (g > best_gain) {
        best_gain = g;
        best_j = j;
      }
    }
    if (best_j == m) break;  // every interval already at K replicas
    ++counts[best_j];
    ++used;
  }
  return counts;
}

std::optional<Mapping> allocate_processors(const TaskChain& chain,
                                           const Platform& platform,
                                           const IntervalPartition& partition,
                                           const AllocOptions& options) {
  const std::size_t m = partition.interval_count();
  const std::size_t p = platform.processor_count();
  if (m > p) return std::nullopt;

  // Visit processors from most to least reliable per unit of work
  // (increasing lambda_u / s_u); ties broken by speed (faster first) so
  // the homogeneous case degenerates to an arbitrary but fixed order.
  std::vector<std::size_t> order(p);
  for (std::size_t u = 0; u < p; ++u) order[u] = u;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ka = platform.failure_rate(a) / platform.speed(a);
    const double kb = platform.failure_rate(b) / platform.speed(b);
    if (ka != kb) return ka < kb;
    if (platform.speed(a) != platform.speed(b)) {
      return platform.speed(a) > platform.speed(b);
    }
    return a < b;
  });

  auto fits = [&](std::size_t j, std::size_t u) {
    if (partition.work(chain, j) / platform.speed(u) > options.period_bound) {
      return false;
    }
    return options.constraints == nullptr ||
           options.constraints->interval_allowed(partition.interval(j), u);
  };

  std::vector<std::vector<std::size_t>> assigned(m);
  // Product of branch failures of the replicas currently on interval j
  // (1.0 while empty: the parallel group of zero branches always fails,
  // but we track the product separately from emptiness).
  std::vector<double> group_failure(m, 1.0);

  // Phase 1: one processor per interval — each processor, in reliability
  // order, serves the longest (largest weight) still-empty interval it can.
  std::size_t served = 0;
  std::vector<bool> used(p, false);
  for (std::size_t u : order) {
    if (served == m) break;
    double best_work = -1.0;
    std::size_t best_j = m;
    for (std::size_t j = 0; j < m; ++j) {
      if (!assigned[j].empty()) continue;
      if (!fits(j, u)) continue;
      const double work = partition.work(chain, j);
      if (work > best_work) {
        best_work = work;
        best_j = j;
      }
    }
    if (best_j == m) continue;  // this processor cannot serve any interval
    assigned[best_j].push_back(u);
    group_failure[best_j] =
        branch_failure_on(chain, platform, partition, best_j, u);
    used[u] = true;
    ++served;
  }
  if (served < m) return std::nullopt;

  // Phase 2: every remaining processor goes to the interval with the best
  // reliability ratio it can serve.
  for (std::size_t u : order) {
    if (used[u]) continue;
    double best_gain = -1.0;
    std::size_t best_j = m;
    double best_failure = 1.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (assigned[j].size() >= platform.max_replication()) continue;
      if (!fits(j, u)) continue;
      const double f_branch =
          branch_failure_on(chain, platform, partition, j, u);
      // ratio = (1 - F*f) / (1 - F), in log space for stability.
      const double g = std::log1p(-group_failure[j] * f_branch) -
                       std::log1p(-group_failure[j]);
      if (g > best_gain) {
        best_gain = g;
        best_j = j;
        best_failure = f_branch;
      }
    }
    if (best_j == m) continue;  // nowhere to put it: leave it unused
    assigned[best_j].push_back(u);
    group_failure[best_j] *= best_failure;
  }

  return Mapping(partition, std::move(assigned));
}

}  // namespace prts
