// Shared machinery of the homogeneous dynamic programs (Algorithms 1-2).
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/prob.hpp"
#include "eval/evaluation.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts::detail {

/// Branch failure probabilities f[j][i] of the candidate interval covering
/// tasks j..i-1 (0-based, half-open) on one homogeneous processor,
/// including its incoming and outgoing communications (Eq. (9) inner
/// term). Entries with j >= i are unused.
std::vector<std::vector<double>> interval_branch_failures(
    const TaskChain& chain, const Platform& platform);

/// Stage log-reliability of an interval with branch failure f replicated
/// q times: log(1 - f^q).
inline double stage_log_reliability(double branch_failure, unsigned q) {
  return std::log1p(-std::pow(branch_failure, static_cast<double>(q)));
}

/// Backtracking record of the DP tables.
struct DpChoice {
  std::size_t prev_prefix = 0;
  unsigned replicas = 0;
};

/// Rebuilds the mapping from the DP parents at final state (n, k_best):
/// intervals in chain order, processor ids dealt consecutively.
Mapping rebuild_mapping(const TaskChain& chain,
                        const std::vector<std::vector<DpChoice>>& parent,
                        std::size_t k_best);

inline constexpr double kMinusInf = -std::numeric_limits<double>::infinity();

}  // namespace prts::detail
