// Algorithm 2: optimal reliability under a period bound on fully
// homogeneous platforms (Section 5.2, Theorem 2) — the Algorithm 1 DP
// restricted to intervals whose computation and communication times fit
// the bound — plus the converse problem (period minimization under a
// reliability bound) solved by binary search over the finite set of
// candidate periods, as suggested at the end of Section 5.2.
#pragma once

#include <optional>

#include "core/reliability_dp.hpp"

namespace prts {

/// Computes the reliability-optimal mapping whose (worst-case = expected)
/// period does not exceed `period_bound` (Algorithm 2). Returns nullopt
/// when no mapping fits the bound. Throws std::invalid_argument on
/// heterogeneous platforms.
std::optional<DpSolution> optimize_reliability_period(const TaskChain& chain,
                                                      const Platform& platform,
                                                      double period_bound);

/// A mapping with its achieved period.
struct PeriodSolution {
  Mapping mapping;
  LogReliability reliability;
  double period = 0.0;
};

/// Minimizes the period subject to reliability >= `min_reliability` by
/// binary-searching the candidate period set {W(i..j)/s} u {o_i/b} with
/// Algorithm 2 as the feasibility test (both polynomial). Returns nullopt
/// when even the unconstrained-period optimum (Algorithm 1) misses the
/// reliability bound. Throws std::invalid_argument on heterogeneous
/// platforms.
std::optional<PeriodSolution> optimize_period_reliability(
    const TaskChain& chain, const Platform& platform,
    LogReliability min_reliability);

}  // namespace prts
