#include "exp/figures.hpp"

namespace prts::exp {
namespace {

std::vector<SweepPoint> fixed_latency_points(const std::vector<double>& x,
                                             double latency) {
  std::vector<SweepPoint> points;
  points.reserve(x.size());
  for (double period : x) points.push_back(SweepPoint{period, latency});
  return points;
}

std::vector<SweepPoint> fixed_period_points(const std::vector<double>& x,
                                            double period) {
  std::vector<SweepPoint> points;
  points.reserve(x.size());
  for (double latency : x) points.push_back(SweepPoint{period, latency});
  return points;
}

}  // namespace

FigureData run_fig_6_7(const ExperimentConfig& config, double step) {
  const auto x = sweep_range(step, 500.0, step);
  return run_hom_experiment(
      "Figures 6-7: homogeneous, L = 750, sweep on period bound",
      "period bound", x, fixed_latency_points(x, 750.0), config);
}

FigureData run_fig_8_9(const ExperimentConfig& config, double step) {
  const auto x = sweep_range(400.0, 1100.0, step);
  return run_hom_experiment(
      "Figures 8-9: homogeneous, P = 250, sweep on latency bound",
      "latency bound", x, fixed_period_points(x, 250.0), config);
}

FigureData run_fig_10_11(const ExperimentConfig& config, double step) {
  const auto x = sweep_range(150.0, 350.0, step);
  std::vector<SweepPoint> points;
  points.reserve(x.size());
  for (double period : x) points.push_back(SweepPoint{period, 3.0 * period});
  return run_hom_experiment(
      "Figures 10-11: homogeneous, L = 3P, sweep on period bound",
      "period bound", x, points, config);
}

FigureData run_fig_12_13(const ExperimentConfig& config, double step) {
  const auto x = sweep_range(step, 150.0, step);
  return run_het_experiment(
      "Figures 12-13: hom + het, L = 150, sweep on period bound",
      "period bound", x, fixed_latency_points(x, 150.0), config);
}

FigureData run_fig_14_15(const ExperimentConfig& config, double step) {
  const auto x = sweep_range(50.0, 250.0, step);
  return run_het_experiment(
      "Figures 14-15: hom + het, P = 50, sweep on latency bound",
      "latency bound", x, fixed_period_points(x, 50.0), config);
}

}  // namespace prts::exp
