// The ten evaluation figures of the paper (Section 8), one function per
// figure. Figure pairs (6,7), (8,9), (10,11), (12,13), (14,15) share a
// sweep; the *_pair functions run each sweep once and the per-figure
// helpers project out the relevant metric when printing.
#pragma once

#include "exp/runner.hpp"

namespace prts::exp {

/// What the figure plots.
enum class Metric {
  kSolutions,   ///< number of instances with a solution
  kAvgFailure,  ///< average failure probability among solved instances
};

/// Figures 6 & 7: homogeneous, L = 750, P in [1, 500].
FigureData run_fig_6_7(const ExperimentConfig& config, double step = 10.0);

/// Figures 8 & 9: homogeneous, P = 250, L in [400, 1100].
FigureData run_fig_8_9(const ExperimentConfig& config, double step = 10.0);

/// Figures 10 & 11: homogeneous, L = 3P, P in [150, 350].
FigureData run_fig_10_11(const ExperimentConfig& config, double step = 5.0);

/// Figures 12 & 13: hom + het, L = 150, P in [1, 150].
FigureData run_fig_12_13(const ExperimentConfig& config, double step = 2.0);

/// Figures 14 & 15: hom + het, P = 50, L in [50, 250].
FigureData run_fig_14_15(const ExperimentConfig& config, double step = 2.0);

}  // namespace prts::exp
