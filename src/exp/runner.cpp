// Rewired onto the scenario campaign engine: each experiment is a
// programmatic CampaignSpec over registry solvers; the hand-rolled
// per-method caching the old runner carried now lives behind
// Solver::prepare (see src/solver/adapters.cpp). Seeding is unchanged
// (scenario::job_seed reproduces the historical per-instance stream), so
// the reproduced figures are identical to the seed repo's.
#include "exp/runner.hpp"

#include <utility>

#include "scenario/campaign.hpp"
#include "scenario/spec.hpp"

namespace prts::exp {
namespace {

/// The Section 8 random-instance base spec shared by every figure:
/// 15-task paper chains, explicit sweep grid, one series per solver.
scenario::CampaignSpec paper_spec(const ExperimentConfig& config,
                                  std::vector<std::string> solvers) {
  scenario::CampaignSpec spec;
  spec.instances = config.instances;
  spec.seed = config.seed;
  spec.solvers = std::move(solvers);
  return spec;
}

FigureData run_points(const scenario::CampaignSpec& spec,
                      const std::vector<SweepPoint>& points,
                      const std::vector<double>& x,
                      const ExperimentConfig& config) {
  scenario::CampaignConfig run_config;
  run_config.threads = config.threads;
  return scenario::run_campaign_points(spec, points, x, run_config).figure;
}

}  // namespace

std::vector<double> sweep_range(double lo, double hi, double step) {
  std::vector<double> values;
  for (double x = lo; x <= hi + 1e-9; x += step) values.push_back(x);
  return values;
}

FigureData run_hom_experiment(const std::string& title,
                              const std::string& x_label,
                              const std::vector<double>& x,
                              const std::vector<SweepPoint>& points,
                              const ExperimentConfig& config) {
  // The "ILP" series keeps the paper's label; the engine behind it is
  // the exact partition enumeration (see DESIGN.md substitution note).
  scenario::CampaignSpec spec =
      paper_spec(config, {"exact", "heur-l", "heur-p"});
  FigureData figure = run_points(spec, points, x, config);
  figure.title = title;
  figure.x_label = x_label;
  figure.series[0].name = "ILP";
  figure.series[1].name = "Heur-L";
  figure.series[2].name = "Heur-P";
  return figure;
}

FigureData run_het_experiment(const std::string& title,
                              const std::string& x_label,
                              const std::vector<double>& x,
                              const std::vector<SweepPoint>& points,
                              const ExperimentConfig& config) {
  // Two campaigns over the same chain stream (the chain is drawn before
  // the platform from the per-job generator, so both campaigns see
  // identical chains): the random heterogeneous platform and the speed-5
  // homogeneous comparison platform of Figures 12-15.
  scenario::CampaignSpec het_spec = paper_spec(config, {"heur-l", "heur-p"});
  het_spec.platform.kind = scenario::PlatformKind::kHet;

  scenario::CampaignSpec hom_spec = paper_spec(config, {"heur-l", "heur-p"});
  hom_spec.platform.speed = paper::kHetComparisonHomSpeed;

  FigureData het = run_points(het_spec, points, x, config);
  const FigureData hom = run_points(hom_spec, points, x, config);

  FigureData figure;
  figure.title = title;
  figure.x_label = x_label;
  figure.x = x;
  figure.series.push_back(std::move(het.series[0]));
  figure.series.push_back(std::move(het.series[1]));
  figure.series[0].name = "Heur-L_HET";
  figure.series[1].name = "Heur-P_HET";
  figure.series.push_back(hom.series[0]);
  figure.series.push_back(hom.series[1]);
  figure.series[2].name = "Heur-L_HOM";
  figure.series[3].name = "Heur-P_HOM";
  return figure;
}

}  // namespace prts::exp
