#include "exp/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "common/thread_pool.hpp"
#include "core/alloc.hpp"

namespace prts::exp {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Accumulates per-point counts and failure sums for one method.
struct SeriesAccumulator {
  explicit SeriesAccumulator(std::size_t points)
      : solutions(points, 0), failure_sum(points, 0.0) {}

  std::vector<std::size_t> solutions;
  std::vector<double> failure_sum;

  void record(std::size_t point, double failure) {
    ++solutions[point];
    failure_sum[point] += failure;
  }

  MethodSeries finish(std::string name) const {
    MethodSeries series;
    series.name = std::move(name);
    series.solutions = solutions;
    series.avg_failure.resize(solutions.size(), kNan);
    for (std::size_t i = 0; i < solutions.size(); ++i) {
      if (solutions[i] > 0) {
        series.avg_failure[i] =
            failure_sum[i] / static_cast<double>(solutions[i]);
      }
    }
    return series;
  }

  void merge(const SeriesAccumulator& other) {
    for (std::size_t i = 0; i < solutions.size(); ++i) {
      solutions[i] += other.solutions[i];
      failure_sum[i] += other.failure_sum[i];
    }
  }
};

std::uint64_t instance_seed(std::uint64_t base, std::size_t index) {
  std::uint64_t state = base + 0x632be59bd9b4e019ULL * (index + 1);
  return splitmix64_next(state);
}

/// Best feasible candidate among precomputed heuristic candidates
/// (homogeneous platforms: the allocation does not depend on the bounds,
/// so candidates can be computed once and filtered per sweep point).
std::optional<double> best_failure_from_candidates(
    const std::vector<HeuristicSolution>& candidates, double period_bound,
    double latency_bound) {
  const HeuristicSolution* best = nullptr;
  for (const auto& candidate : candidates) {
    if (candidate.metrics.worst_period > period_bound ||
        candidate.metrics.worst_latency > latency_bound) {
      continue;
    }
    if (best == nullptr ||
        candidate.metrics.reliability > best->metrics.reliability) {
      best = &candidate;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->metrics.failure;
}

}  // namespace

std::vector<double> sweep_range(double lo, double hi, double step) {
  std::vector<double> values;
  for (double x = lo; x <= hi + 1e-9; x += step) values.push_back(x);
  return values;
}

FigureData run_hom_experiment(const std::string& title,
                              const std::string& x_label,
                              const std::vector<double>& x,
                              const std::vector<SweepPoint>& points,
                              const ExperimentConfig& config) {
  const std::size_t n_points = points.size();
  SeriesAccumulator ilp(n_points);
  SeriesAccumulator heur_l(n_points);
  SeriesAccumulator heur_p(n_points);
  std::mutex merge_mutex;

  const Platform platform = paper::hom_platform();
  ThreadPool pool(config.threads);
  pool.parallel_for(config.instances, [&](std::size_t inst) {
    Rng rng(instance_seed(config.seed, inst));
    const TaskChain chain = paper::chain(rng);

    const HomogeneousExactSolver solver(chain, platform);
    const auto candidates_l =
        heuristic_candidates(chain, platform, HeuristicKind::kHeurL);
    const auto candidates_p =
        heuristic_candidates(chain, platform, HeuristicKind::kHeurP);

    SeriesAccumulator local_ilp(n_points);
    SeriesAccumulator local_l(n_points);
    SeriesAccumulator local_p(n_points);
    for (std::size_t pt = 0; pt < n_points; ++pt) {
      const auto exact = solver.best_log_reliability(
          points[pt].period_bound, points[pt].latency_bound);
      if (exact) local_ilp.record(pt, -std::expm1(*exact));
      if (const auto f = best_failure_from_candidates(
              candidates_l, points[pt].period_bound,
              points[pt].latency_bound)) {
        local_l.record(pt, *f);
      }
      if (const auto f = best_failure_from_candidates(
              candidates_p, points[pt].period_bound,
              points[pt].latency_bound)) {
        local_p.record(pt, *f);
      }
    }
    const std::lock_guard<std::mutex> lock(merge_mutex);
    ilp.merge(local_ilp);
    heur_l.merge(local_l);
    heur_p.merge(local_p);
  });

  FigureData figure;
  figure.title = title;
  figure.x_label = x_label;
  figure.x = x;
  figure.series.push_back(ilp.finish("ILP"));
  figure.series.push_back(heur_l.finish("Heur-L"));
  figure.series.push_back(heur_p.finish("Heur-P"));
  return figure;
}

FigureData run_het_experiment(const std::string& title,
                              const std::string& x_label,
                              const std::vector<double>& x,
                              const std::vector<SweepPoint>& points,
                              const ExperimentConfig& config) {
  const std::size_t n_points = points.size();
  // Four curves: each heuristic on the heterogeneous platform and on the
  // speed-5 homogeneous comparison platform (paper Figures 12-15).
  SeriesAccumulator l_het(n_points);
  SeriesAccumulator p_het(n_points);
  SeriesAccumulator l_hom(n_points);
  SeriesAccumulator p_hom(n_points);
  std::mutex merge_mutex;

  const Platform hom_platform = paper::hom_comparison_platform();
  ThreadPool pool(config.threads);
  pool.parallel_for(config.instances, [&](std::size_t inst) {
    Rng rng(instance_seed(config.seed, inst));
    const TaskChain chain = paper::chain(rng);
    const Platform het_platform = paper::het_platform(rng);

    // The partitions depend only on the interval count; compute them once
    // per (kind, platform) and re-allocate per sweep point (on a
    // heterogeneous platform the allocation depends on the period bound).
    const std::size_t max_intervals =
        std::min(chain.size(), het_platform.processor_count());
    std::vector<IntervalPartition> parts_l;
    std::vector<IntervalPartition> parts_p_het;
    std::vector<IntervalPartition> parts_p_hom;
    for (std::size_t i = 1; i <= max_intervals; ++i) {
      parts_l.push_back(heur_l_partition(chain, i));
      parts_p_het.push_back(
          heur_p_partition(chain, i, 1.0, het_platform.bandwidth()));
      parts_p_hom.push_back(heur_p_partition(chain, i,
                                             hom_platform.speed(0),
                                             hom_platform.bandwidth()));
    }

    auto best_failure = [&](const Platform& platform,
                            const std::vector<IntervalPartition>& parts,
                            const SweepPoint& bounds)
        -> std::optional<double> {
      std::optional<double> best_log;
      std::optional<double> best_fail;
      for (const IntervalPartition& part : parts) {
        AllocOptions options;
        options.period_bound = bounds.period_bound;
        const auto mapping =
            allocate_processors(chain, platform, part, options);
        if (!mapping) continue;
        const MappingMetrics metrics = evaluate(chain, platform, *mapping);
        if (metrics.worst_period > bounds.period_bound ||
            metrics.worst_latency > bounds.latency_bound) {
          continue;
        }
        if (!best_log || metrics.reliability.log() > *best_log) {
          best_log = metrics.reliability.log();
          best_fail = metrics.failure;
        }
      }
      return best_fail;
    };

    SeriesAccumulator local_l_het(n_points);
    SeriesAccumulator local_p_het(n_points);
    SeriesAccumulator local_l_hom(n_points);
    SeriesAccumulator local_p_hom(n_points);
    for (std::size_t pt = 0; pt < n_points; ++pt) {
      if (const auto f = best_failure(het_platform, parts_l, points[pt])) {
        local_l_het.record(pt, *f);
      }
      if (const auto f =
              best_failure(het_platform, parts_p_het, points[pt])) {
        local_p_het.record(pt, *f);
      }
      if (const auto f = best_failure(hom_platform, parts_l, points[pt])) {
        local_l_hom.record(pt, *f);
      }
      if (const auto f =
              best_failure(hom_platform, parts_p_hom, points[pt])) {
        local_p_hom.record(pt, *f);
      }
    }
    const std::lock_guard<std::mutex> lock(merge_mutex);
    l_het.merge(local_l_het);
    p_het.merge(local_p_het);
    l_hom.merge(local_l_hom);
    p_hom.merge(local_p_hom);
  });

  FigureData figure;
  figure.title = title;
  figure.x_label = x_label;
  figure.x = x;
  figure.series.push_back(l_het.finish("Heur-L_HET"));
  figure.series.push_back(p_het.finish("Heur-P_HET"));
  figure.series.push_back(l_hom.finish("Heur-L_HOM"));
  figure.series.push_back(p_hom.finish("Heur-P_HOM"));
  return figure;
}

}  // namespace prts::exp
