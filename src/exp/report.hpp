// Plain-text reporting of reproduced figures: an aligned table mirroring
// the paper's plotted series, plus CSV output for external plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "exp/figures.hpp"

namespace prts::exp {

/// Writes the figure as an aligned table of the selected metric, one row
/// per sweep point, one column per method.
void print_table(std::ostream& out, const FigureData& figure, Metric metric);

/// Writes both metrics as CSV: x, then per method `<name>_solutions` and
/// `<name>_avg_failure` columns.
void print_csv(std::ostream& out, const FigureData& figure);

/// Summarizes a series: at how many points each method leads the
/// solution count, and the geometric-mean failure ratio vs the first
/// series (where both are defined). Used in EXPERIMENTS.md.
std::string summarize(const FigureData& figure);

}  // namespace prts::exp
