// The Section 8 experiment methodology: 100 random instances; for every
// (period bound, latency bound) sweep point and every method, count the
// instances where the method finds a feasible schedule, and average the
// failure probability of the returned schedules over exactly those
// instances (hence, as the paper notes for Figures 13/15, different
// methods average over different instance sets).
//
// Execution is delegated to the scenario campaign engine
// (src/scenario/campaign.hpp) over registry solvers (src/solver/); this
// header only keeps the figure-shaped result types and the paper's
// experiment presets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/exact.hpp"
#include "core/heuristics.hpp"
#include "model/generator.hpp"

namespace prts::exp {

/// One sweep point: both bounds explicit (coupled sweeps like L = 3P just
/// fill both from one parameter).
struct SweepPoint {
  double period_bound = 0.0;
  double latency_bound = 0.0;
};

/// One method's curve across the sweep.
struct MethodSeries {
  std::string name;
  std::vector<std::size_t> solutions;  ///< solved instances per point
  std::vector<double> avg_failure;     ///< mean failure among solved (NaN if none)
};

/// A reproduced figure: x values plus one series per method.
struct FigureData {
  std::string title;
  std::string x_label;
  std::vector<double> x;
  std::vector<MethodSeries> series;
};

/// Configuration shared by all experiments.
struct ExperimentConfig {
  std::size_t instances = paper::kInstanceCount;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  ///< hardware concurrency when 0
};

/// Homogeneous experiment (Section 8.1): methods ILP (exact), Heur-L,
/// Heur-P on the speed-1 homogeneous platform.
FigureData run_hom_experiment(const std::string& title,
                              const std::string& x_label,
                              const std::vector<double>& x,
                              const std::vector<SweepPoint>& points,
                              const ExperimentConfig& config);

/// Heterogeneous experiment (Section 8.2): methods Heur-L/Heur-P on a
/// random heterogeneous platform (speeds in [1,100]) and on the speed-5
/// homogeneous comparison platform, same chains.
FigureData run_het_experiment(const std::string& title,
                              const std::string& x_label,
                              const std::vector<double>& x,
                              const std::vector<SweepPoint>& points,
                              const ExperimentConfig& config);

/// Evenly spaced sweep values lo, lo+step, ..., <= hi.
std::vector<double> sweep_range(double lo, double hi, double step);

}  // namespace prts::exp
