#include "exp/report.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace prts::exp {

void print_table(std::ostream& out, const FigureData& figure, Metric metric) {
  out << "# " << figure.title << "\n";
  out << "# metric: "
      << (metric == Metric::kSolutions ? "number of solutions"
                                       : "average failure probability")
      << "\n";
  out << std::setw(14) << figure.x_label;
  for (const auto& series : figure.series) {
    out << std::setw(14) << series.name;
  }
  out << "\n";
  for (std::size_t i = 0; i < figure.x.size(); ++i) {
    out << std::setw(14) << figure.x[i];
    for (const auto& series : figure.series) {
      if (metric == Metric::kSolutions) {
        out << std::setw(14) << series.solutions[i];
      } else if (std::isnan(series.avg_failure[i])) {
        out << std::setw(14) << "-";
      } else {
        out << std::setw(14) << std::scientific << std::setprecision(3)
            << series.avg_failure[i] << std::defaultfloat;
      }
    }
    out << "\n";
  }
}

void print_csv(std::ostream& out, const FigureData& figure) {
  out << figure.x_label;
  for (const auto& series : figure.series) {
    out << "," << series.name << "_solutions"
        << "," << series.name << "_avg_failure";
  }
  out << "\n";
  for (std::size_t i = 0; i < figure.x.size(); ++i) {
    out << figure.x[i];
    for (const auto& series : figure.series) {
      out << "," << series.solutions[i] << ",";
      if (!std::isnan(series.avg_failure[i])) {
        out << std::scientific << std::setprecision(6)
            << series.avg_failure[i] << std::defaultfloat;
      }
    }
    out << "\n";
  }
}

std::string summarize(const FigureData& figure) {
  std::ostringstream out;
  // Who leads the solution count, point by point.
  for (const auto& series : figure.series) {
    std::size_t leads = 0;
    std::size_t total_solved = 0;
    for (std::size_t i = 0; i < figure.x.size(); ++i) {
      bool best = true;
      for (const auto& other : figure.series) {
        if (other.solutions[i] > series.solutions[i]) best = false;
      }
      if (best) ++leads;
      total_solved += series.solutions[i];
    }
    out << series.name << ": leads or ties #solutions at " << leads << "/"
        << figure.x.size() << " points, " << total_solved
        << " instance-solutions total";
    // Geometric-mean failure ratio vs the first series.
    if (&series != &figure.series.front()) {
      double log_sum = 0.0;
      std::size_t count = 0;
      for (std::size_t i = 0; i < figure.x.size(); ++i) {
        const double mine = series.avg_failure[i];
        const double reference = figure.series.front().avg_failure[i];
        if (!std::isnan(mine) && !std::isnan(reference) && mine > 0.0 &&
            reference > 0.0) {
          log_sum += std::log(mine / reference);
          ++count;
        }
      }
      if (count > 0) {
        out << ", failure geo-mean ratio vs "
            << figure.series.front().name << ": "
            << std::exp(log_sum / static_cast<double>(count));
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace prts::exp
