// Replayable load traces (src/load/): the arrival schedule of an
// open-loop run as a value, serialized to a line-oriented text format.
// A trace is what makes a load experiment an *artifact*: the same trace
// replayed against two builds (or two fabric layouts) offers the same
// requests at the same instants, so latency differences are the
// system's, not the workload's.
//
// Doubles are written with model/serialize.hpp's canonical_number, so
// write -> read -> write is byte-identical and two generator runs with
// the same seed produce bit-equal trace files — the determinism
// contract bench/openloop asserts.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "solver/solver.hpp"

namespace prts::load {

/// One scheduled request: at `time_seconds` after run start, offer
/// instance `instance` (an index into the run's instance corpus) to
/// `solver` under `bounds`.
struct ArrivalEvent {
  double time_seconds = 0.0;
  std::size_t instance = 0;
  std::string solver;
  solver::Bounds bounds;
};

/// An arrival schedule plus the generator parameters that produced it
/// (free-form key/value metadata; a replay does not interpret it).
struct LoadTrace {
  /// std::map: meta serializes in key order, keeping files canonical.
  std::map<std::string, std::string> meta;
  std::vector<ArrivalEvent> events;  ///< non-decreasing time_seconds
};

/// Text format:
///   prts-load-trace v1
///   meta <key> <value>          (zero or more, key-sorted)
///   events <count>
///   <time> <instance> <solver> <period_bound> <latency_bound>
///   ...
///   end
void write_trace(std::ostream& out, const LoadTrace& trace);

/// Returns false (and sets `error` when given) on malformed input.
bool read_trace(std::istream& in, LoadTrace& trace,
                std::string* error = nullptr);

std::string trace_to_string(const LoadTrace& trace);
bool trace_from_string(const std::string& text, LoadTrace& trace,
                       std::string* error = nullptr);

}  // namespace prts::load
