// Open-loop load runner (src/load/): offers a LoadTrace's arrivals to a
// submit function at their *scheduled* instants, never waiting for
// completions — the defining property of an open-loop generator. A
// closed-loop client under overload politely slows its own offered
// rate and reports flattering latencies (coordinated omission); this
// runner keeps offering, and measures each request's latency from its
// scheduled arrival time, so queueing delay under overload is charged
// to the system honestly.
//
// Mechanics: the caller's thread is the pacer (sleep until the next
// event's instant, submit, move on); a reaper thread sweeps the
// in-flight future set with zero-timeout polls and timestamps
// completions. Poll-based harvesting costs ~1ms of timestamp noise —
// irrelevant at the millisecond SLO scale this measures.
//
// Targets: anything shaped like submit(SolveRequest) ->
// future<SolveReply>. In-process that is SolveService::submit or
// ShardRouter::submit (both truly non-blocking); across the wire,
// WirePool presents the same interface over a set of pipelined
// MuxFrameClient connections fed by a bounded worker pool — the queue
// wait inside the pool counts toward latency, exactly as it should.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "load/trace.hpp"
#include "model/serialize.hpp"
#include "service/engine.hpp"

namespace prts::load {

using SubmitFn =
    std::function<std::future<service::SolveReply>(service::SolveRequest)>;

struct OpenLoopOptions {
  /// How long after the last scheduled arrival to wait for stragglers
  /// before declaring the remaining futures unresolved (stuck waiters).
  double drain_timeout_seconds = 60.0;
  /// Reaper sweep period.
  double poll_interval_seconds = 0.001;
  /// Request deadline/policy stamped on every submission.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  service::DeadlinePolicy deadline_policy =
      service::DeadlinePolicy::kDowngrade;
};

/// Outcome counts plus the per-request latency sample (seconds from
/// *scheduled* arrival to observed completion; answered requests only).
struct RunResult {
  std::uint64_t submitted = 0;
  std::uint64_t answered = 0;    ///< solved or infeasible (a real answer)
  std::uint64_t rejected = 0;    ///< queue or deadline rejection
  std::uint64_t errors = 0;      ///< ReplyStatus::kError
  std::uint64_t unresolved = 0;  ///< future never became ready: stuck waiter
  double wall_seconds = 0.0;
  double offered_rate = 0.0;   ///< events / trace duration
  double achieved_rate = 0.0;  ///< answered / wall_seconds

  std::vector<double> latencies;  ///< sorted ascending after the run

  /// Exact empirical quantile of the sorted sample (0 when empty).
  double quantile(double q) const noexcept;
  double mean_latency() const noexcept;
  double error_rate() const noexcept;   ///< (errors+unresolved)/submitted
  double reject_rate() const noexcept;  ///< rejected/submitted
};

/// Runs the trace to completion (arrivals + drain). `instances` is the
/// corpus the trace's event.instance indexes into (taken modulo size).
RunResult run_open_loop(const LoadTrace& trace,
                        const std::vector<Instance>& instances,
                        const SubmitFn& submit,
                        const OpenLoopOptions& options = {});

/// A SubmitFn over the wire: `connections` MuxFrameClient links per
/// target address, fed round-robin from a bounded queue by a worker
/// pool. The mux links pipeline (protocol v2 request ids), so workers
/// outnumber connections — ONE connection carries many in-flight
/// solves, which is the whole point. submit() never blocks on the
/// network — it enqueues and returns a future, so the open-loop
/// property survives the hop to a real fabric. A failed exchange (dead
/// peer, timeout) resolves the future with ReplyStatus::kError rather
/// than dropping it.
class WirePool {
 public:
  struct Target {
    std::string host;
    std::uint16_t port = 0;
  };

  /// `connections` is per target (>= 1). `workers` sizes the blocking
  /// worker pool (= the max in-flight exchanges); 0 picks
  /// max(8, 4 * total connections). A non-empty `auth_token` is
  /// presented on every (re)connect — required to drive an
  /// `--auth-token` fleet.
  WirePool(std::vector<Target> targets, std::size_t connections = 1,
           std::size_t workers = 0, std::string auth_token = {});
  ~WirePool();

  WirePool(const WirePool&) = delete;
  WirePool& operator=(const WirePool&) = delete;

  std::future<service::SolveReply> submit(service::SolveRequest request);

  /// Wires `connections` new links to a target that joined the fleet
  /// after the pool was built (elastic membership: the load keeps
  /// flowing while the fleet grows). Thread-safe against submit() and
  /// in-flight workers; already-queued jobs may still drain to the old
  /// target set.
  void add_target(const Target& target);

  /// High-water mark of in-flight exchanges on any single connection
  /// (max over the per-client FrameClientStats watermarks) — the
  /// pipelining proof the CI smoke asserts on.
  std::uint64_t max_inflight_per_connection() const;

  SubmitFn submit_fn() {
    return [this](service::SolveRequest request) {
      return submit(std::move(request));
    };
  }

  /// Stops accepting, drains queued work (each pending item resolves,
  /// possibly as an error), joins workers. Idempotent; the destructor
  /// calls it.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prts::load
