// Arrival-process generation (src/load/): turns a workload description
// (process shape, offered rate, key popularity, solver mix) into a
// deterministic LoadTrace. Everything is driven by one prts::Rng seed:
// same config, same trace, bit for bit.
//
// Processes:
//   - Poisson: exponential inter-arrivals at the offered rate — the
//     open-loop null hypothesis.
//   - Bursty: a 2-state MMPP (calm/burst). The burst state arrives
//     `burst_rate_factor` times faster and the state dwell times are
//     chosen so the long-run average equals `rate` and the fraction of
//     time spent bursting equals `burst_fraction` — so a bursty run is
//     comparable to a Poisson run at the same nominal rate, but
//     stresses queues with clustered arrivals.
//   - Uniform: fixed inter-arrival 1/rate — the smoothest offered load,
//     useful as a lower bound on queueing noise.
//
// Key popularity is Zipf(s) over `key_count` instance indices (s = 0
// degenerates to uniform), matching the hot-key skew the fabric's
// replication tier exists for. Each arrival also draws a solver from
// `solver_mix` and a latency bound from a small per-key ladder, so
// cache keys (instance, solver, bounds) repeat realistically instead of
// being all-distinct or all-identical.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "load/trace.hpp"

namespace prts::load {

enum class Process { kPoisson, kBursty, kUniform };

const char* process_name(Process process) noexcept;
/// Returns false on unknown name ("poisson", "bursty", "uniform").
bool parse_process(const std::string& text, Process& process);

struct ArrivalConfig {
  Process process = Process::kPoisson;
  double rate = 100.0;  ///< mean arrivals per second (> 0)
  double duration_seconds = 5.0;

  /// Bursty only: burst-state rate multiplier, long-run fraction of
  /// time in burst, and mean burst dwell time.
  double burst_rate_factor = 4.0;
  double burst_fraction = 0.2;
  double burst_dwell_seconds = 0.25;

  std::size_t key_count = 16;  ///< distinct instance indices
  double zipf_s = 1.1;         ///< 0 = uniform popularity

  /// Weighted solver draw, e.g. {{"portfolio", 0.8}, {"exact", 0.2}}.
  std::vector<std::pair<std::string, double>> solver_mix = {
      {"portfolio", 1.0}};

  /// Distinct latency bounds drawn per key (>= 1). The ladder spans
  /// loose bounds around the paper workload's makespan scale, so some
  /// requests share cache keys and some only near-miss.
  std::size_t bounds_per_key = 4;

  std::uint64_t seed = 1;
};

/// Generates the schedule. Events are in non-decreasing time order and
/// the config is recorded in trace.meta.
LoadTrace generate_arrivals(const ArrivalConfig& config);

}  // namespace prts::load
