#include "load/generator.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "net/mux_client.hpp"
#include "service/wire.hpp"

namespace prts::load {

using Clock = std::chrono::steady_clock;

double RunResult::quantile(double q) const noexcept {
  if (latencies.empty()) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto index = static_cast<std::size_t>(
      clamped * static_cast<double>(latencies.size() - 1) + 0.5);
  return latencies[std::min(index, latencies.size() - 1)];
}

double RunResult::mean_latency() const noexcept {
  if (latencies.empty()) return 0.0;
  double total = 0.0;
  for (const double value : latencies) total += value;
  return total / static_cast<double>(latencies.size());
}

double RunResult::error_rate() const noexcept {
  if (submitted == 0) return 0.0;
  return static_cast<double>(errors + unresolved) /
         static_cast<double>(submitted);
}

double RunResult::reject_rate() const noexcept {
  if (submitted == 0) return 0.0;
  return static_cast<double>(rejected) / static_cast<double>(submitted);
}

namespace {

struct InFlight {
  Clock::time_point scheduled;
  std::future<service::SolveReply> future;
};

}  // namespace

RunResult run_open_loop(const LoadTrace& trace,
                        const std::vector<Instance>& instances,
                        const SubmitFn& submit,
                        const OpenLoopOptions& options) {
  RunResult result;
  if (instances.empty()) return result;

  std::mutex mutex;
  std::vector<InFlight> inflight;
  bool stop = false;

  // The reaper sweeps the in-flight set in place under the mutex —
  // wait_for(0) never blocks, so a sweep holds the lock only for
  // microseconds per entry and the pacer's push waits at most one
  // sweep. The reaper owns all result mutation except `submitted`.
  std::thread reaper([&] {
    for (;;) {
      bool stopping;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        stopping = stop;
        const Clock::time_point now = Clock::now();
        for (std::size_t i = 0; i < inflight.size();) {
          InFlight& entry = inflight[i];
          if (entry.future.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
            ++i;
            continue;
          }
          const service::SolveReply reply = entry.future.get();
          switch (reply.status) {
            case service::ReplyStatus::kSolved:
            case service::ReplyStatus::kInfeasible:
              ++result.answered;
              result.latencies.push_back(
                  std::chrono::duration<double>(now - entry.scheduled)
                      .count());
              break;
            case service::ReplyStatus::kRejectedQueue:
            case service::ReplyStatus::kRejectedDeadline:
              ++result.rejected;
              break;
            case service::ReplyStatus::kError:
              ++result.errors;
              break;
          }
          // Swap-erase: completion order does not matter.
          inflight[i] = std::move(inflight.back());
          inflight.pop_back();
        }
      }
      if (stopping) return;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::max(options.poll_interval_seconds, 1e-4)));
    }
  });

  // Pacer: this thread. Arrivals happen at their scheduled offsets no
  // matter how the fabric is doing — if a submit call itself lags
  // (WirePool queue push is O(1); in-process submits may canonicalize),
  // later arrivals fire immediately rather than shifting the schedule.
  const Clock::time_point start = Clock::now();
  for (const ArrivalEvent& event : trace.events) {
    const Clock::time_point scheduled =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(event.time_seconds));
    std::this_thread::sleep_until(scheduled);
    service::SolveRequest request{instances[event.instance %
                                            instances.size()],
                                  event.solver, event.bounds,
                                  options.deadline_seconds,
                                  options.deadline_policy};
    std::future<service::SolveReply> future = submit(std::move(request));
    ++result.submitted;
    const std::lock_guard<std::mutex> lock(mutex);
    inflight.push_back(InFlight{scheduled, std::move(future)});
  }

  // Drain: give stragglers a bounded grace period, then count whatever
  // is still pending as unresolved — the "stuck waiter" signal.
  const Clock::time_point drain_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             std::max(options.drain_timeout_seconds, 0.0)));
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (inflight.empty()) break;
    }
    if (Clock::now() >= drain_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex);
    result.unresolved = inflight.size();
    // Abandon stuck futures (counted); let the reaper exit after one
    // final sweep.
    inflight.clear();
    stop = true;
  }
  reaper.join();

  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(result.latencies.begin(), result.latencies.end());
  double duration = result.wall_seconds;
  std::string meta_duration;
  if (const auto it = trace.meta.find("duration_seconds");
      it != trace.meta.end()) {
    meta_duration = it->second;
  }
  double parsed = 0.0;
  if (!meta_duration.empty() &&
      parse_canonical_number(meta_duration, parsed) && parsed > 0.0) {
    duration = parsed;
  } else if (!trace.events.empty()) {
    duration = std::max(trace.events.back().time_seconds, 1e-9);
  }
  result.offered_rate =
      static_cast<double>(result.submitted) / std::max(duration, 1e-9);
  result.achieved_rate = result.wall_seconds > 0.0
                             ? static_cast<double>(result.answered) /
                                   result.wall_seconds
                             : 0.0;
  return result;
}

// ---------------------------------------------------------------------------
// WirePool

struct WirePool::Impl {
  struct Job {
    // optional: SolveRequest has no default constructor (an Instance is
    // always a concrete chain+platform).
    std::optional<service::SolveRequest> request;
    std::promise<service::SolveReply> promise;
  };

  /// Guarded by `mutex` for membership (add_target may grow it while
  /// workers run); the pointed-to clients themselves are never removed,
  /// so a worker's per-job snapshot of raw pointers stays valid.
  std::vector<std::unique_ptr<net::MuxFrameClient>> clients;
  std::size_t connections_per_target = 1;
  std::string auth_token;
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Job> queue;
  bool stopping = false;

  void worker(std::size_t index) {
    for (;;) {
      Job job;
      std::vector<net::MuxFrameClient*> targets;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping && drained
        job = std::move(queue.front());
        queue.pop_front();
        // Per-job snapshot: the client set may grow (add_target) while
        // this exchange is in flight, and the failover sweep below must
        // not race a vector reallocation.
        targets.reserve(clients.size());
        for (const auto& client : clients) targets.push_back(client.get());
      }
      service::SolveReply reply;
      reply.status = service::ReplyStatus::kError;
      reply.error = "wire pool: every target failed";
      net::Frame frame;
      frame.type = net::FrameType::kSolveRequest;
      frame.payload = service::encode_wire_request(*job.request);
      // Home connection first (workers spread round-robin over the
      // clients), then fail over across the others — a dead target
      // degrades the pool, it does not fail its share of the load.
      // Many workers calling one MuxFrameClient pipeline on its single
      // connection, and suspect peers fail fast after the first
      // timeout, so the sweep is cheap once a corpse is known.
      for (std::size_t attempt = 0; attempt < targets.size(); ++attempt) {
        net::MuxFrameClient& client =
            *targets[(index + attempt) % targets.size()];
        const std::optional<net::Frame> answer = client.call(frame);
        if (!answer || answer->type != net::FrameType::kSolveReply) continue;
        std::string decode_error;
        if (std::optional<service::SolveReply> decoded =
                service::decode_wire_reply(answer->payload, decode_error)) {
          reply = std::move(*decoded);
        } else {
          reply.error = "wire pool: undecodable reply: " + decode_error;
        }
        break;
      }
      job.promise.set_value(std::move(reply));
    }
  }
};

WirePool::WirePool(std::vector<Target> targets, std::size_t connections,
                   std::size_t workers, std::string auth_token)
    : impl_(std::make_unique<Impl>()) {
  connections = std::max<std::size_t>(connections, 1);
  impl_->connections_per_target = connections;
  impl_->auth_token = std::move(auth_token);
  net::FrameClientConfig client_config;
  client_config.auth_token = impl_->auth_token;
  for (const Target& target : targets) {
    for (std::size_t c = 0; c < connections; ++c) {
      impl_->clients.push_back(std::make_unique<net::MuxFrameClient>(
          target.host, target.port, client_config));
    }
  }
  if (workers == 0) {
    workers = std::max<std::size_t>(8, 4 * impl_->clients.size());
  }
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back(
        [impl = impl_.get(), i] { impl->worker(i); });
  }
}

void WirePool::add_target(const Target& target) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->stopping) return;
  net::FrameClientConfig client_config;
  client_config.auth_token = impl_->auth_token;
  for (std::size_t c = 0; c < impl_->connections_per_target; ++c) {
    impl_->clients.push_back(std::make_unique<net::MuxFrameClient>(
        target.host, target.port, client_config));
  }
}

std::uint64_t WirePool::max_inflight_per_connection() const {
  std::uint64_t max_inflight = 0;
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& client : impl_->clients) {
    max_inflight = std::max(max_inflight, client->stats().max_inflight);
  }
  return max_inflight;
}

WirePool::~WirePool() { shutdown(); }

std::future<service::SolveReply> WirePool::submit(
    service::SolveRequest request) {
  Impl::Job job;
  job.request = std::move(request);
  std::future<service::SolveReply> future = job.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopping) {
      service::SolveReply reply;
      reply.status = service::ReplyStatus::kError;
      reply.error = "wire pool: shut down";
      job.promise.set_value(std::move(reply));
      return future;
    }
    impl_->queue.push_back(std::move(job));
  }
  impl_->cv.notify_one();
  return future;
}

void WirePool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopping && impl_->workers.empty()) return;
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (std::thread& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  impl_->workers.clear();
}

}  // namespace prts::load
