#include "load/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"
#include "model/serialize.hpp"

namespace prts::load {

const char* process_name(Process process) noexcept {
  switch (process) {
    case Process::kPoisson:
      return "poisson";
    case Process::kBursty:
      return "bursty";
    case Process::kUniform:
      return "uniform";
  }
  return "?";
}

bool parse_process(const std::string& text, Process& process) {
  if (text == "poisson") {
    process = Process::kPoisson;
  } else if (text == "bursty") {
    process = Process::kBursty;
  } else if (text == "uniform") {
    process = Process::kUniform;
  } else {
    return false;
  }
  return true;
}

namespace {

/// Cumulative Zipf(s) table over ranks 1..n, normalized to end at 1.
std::vector<double> zipf_cumulative(std::size_t n, double s) {
  std::vector<double> cumulative(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += s == 0.0 ? 1.0 : 1.0 / std::pow(static_cast<double>(k + 1), s);
    cumulative[k] = total;
  }
  for (double& value : cumulative) value /= total;
  return cumulative;
}

std::size_t draw_index(Rng& rng, const std::vector<double>& cumulative) {
  const double u = rng.uniform01();
  const auto it =
      std::upper_bound(cumulative.begin(), cumulative.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative.begin(),
                               static_cast<std::ptrdiff_t>(cumulative.size()) - 1));
}

}  // namespace

LoadTrace generate_arrivals(const ArrivalConfig& config) {
  if (config.rate <= 0.0) {
    throw std::invalid_argument("generate_arrivals: rate must be > 0");
  }
  if (config.duration_seconds <= 0.0) {
    throw std::invalid_argument("generate_arrivals: duration must be > 0");
  }
  if (config.key_count == 0) {
    throw std::invalid_argument("generate_arrivals: key_count must be > 0");
  }
  if (config.solver_mix.empty()) {
    throw std::invalid_argument("generate_arrivals: empty solver mix");
  }

  // Separate streams per concern: changing the solver mix must not
  // reshuffle arrival *times*, so a mix tweak stays comparable.
  Rng time_rng(config.seed);
  Rng key_rng = time_rng.split();
  Rng solver_rng = time_rng.split();
  Rng bounds_rng = time_rng.split();

  const std::vector<double> key_cumulative =
      zipf_cumulative(config.key_count, config.zipf_s);
  std::vector<double> solver_cumulative;
  {
    double total = 0.0;
    for (const auto& [name, weight] : config.solver_mix) {
      if (weight < 0.0) {
        throw std::invalid_argument(
            "generate_arrivals: negative solver weight");
      }
      total += weight;
      solver_cumulative.push_back(total);
    }
    if (total <= 0.0) {
      throw std::invalid_argument(
          "generate_arrivals: solver mix weights sum to zero");
    }
    for (double& value : solver_cumulative) value /= total;
  }

  // MMPP-2 calibration: overall mean rate fixed at config.rate.
  //   rate = (1-f)*calm + f*factor*calm  =>  calm = rate / (1-f+f*factor)
  // and the calm dwell keeps the burst fraction at f.
  const double fraction =
      std::clamp(config.burst_fraction, 1e-6, 1.0 - 1e-6);
  const double factor = std::max(config.burst_rate_factor, 1.0);
  const double calm_rate =
      config.rate / (1.0 - fraction + fraction * factor);
  const double burst_rate = calm_rate * factor;
  const double burst_dwell = std::max(config.burst_dwell_seconds, 1e-3);
  const double calm_dwell = burst_dwell * (1.0 - fraction) / fraction;

  LoadTrace trace;
  bool bursting = false;
  double time = 0.0;
  double next_switch =
      config.process == Process::kBursty
          ? time_rng.exponential(1.0 / calm_dwell)
          : std::numeric_limits<double>::infinity();
  while (true) {
    double current_rate = config.rate;
    if (config.process == Process::kBursty) {
      current_rate = bursting ? burst_rate : calm_rate;
    }
    const double step = config.process == Process::kUniform
                            ? 1.0 / current_rate
                            : time_rng.exponential(current_rate);
    if (config.process == Process::kBursty && time + step > next_switch) {
      // Exponential inter-arrivals are memoryless: jumping to the
      // switch point and redrawing at the new rate is exact.
      time = next_switch;
      bursting = !bursting;
      next_switch = time + time_rng.exponential(
                               1.0 / (bursting ? burst_dwell : calm_dwell));
      continue;
    }
    time += step;
    if (time >= config.duration_seconds) break;

    ArrivalEvent event;
    event.time_seconds = time;
    event.instance = draw_index(key_rng, key_cumulative);
    event.solver =
        config.solver_mix[draw_index(solver_rng, solver_cumulative)].first;
    // Per-key latency-bound ladder around the paper workload's makespan
    // scale (15 tasks, work <= 100, speed 1): loose enough to usually
    // be feasible, tight enough that rungs are distinct cache keys.
    const std::size_t rungs = std::max<std::size_t>(config.bounds_per_key, 1);
    const auto rung = static_cast<std::size_t>(
        bounds_rng.uniform_int(0, static_cast<std::int64_t>(rungs) - 1));
    event.bounds.latency_bound =
        1000.0 + 50.0 * static_cast<double>(rung) +
        static_cast<double>(event.instance);
    trace.events.push_back(std::move(event));
  }

  trace.meta["process"] = process_name(config.process);
  trace.meta["rate"] = canonical_number(config.rate);
  trace.meta["duration_seconds"] = canonical_number(config.duration_seconds);
  trace.meta["seed"] = std::to_string(config.seed);
  trace.meta["key_count"] = std::to_string(config.key_count);
  trace.meta["zipf_s"] = canonical_number(config.zipf_s);
  trace.meta["bounds_per_key"] = std::to_string(config.bounds_per_key);
  if (config.process == Process::kBursty) {
    trace.meta["burst_rate_factor"] = canonical_number(factor);
    trace.meta["burst_fraction"] = canonical_number(fraction);
    trace.meta["burst_dwell_seconds"] = canonical_number(burst_dwell);
  }
  {
    std::string mix;
    for (const auto& [name, weight] : config.solver_mix) {
      if (!mix.empty()) mix += ",";
      mix += name + ":" + canonical_number(weight);
    }
    trace.meta["solver_mix"] = mix;
  }
  return trace;
}

}  // namespace prts::load
