// Declarative SLOs (src/load/): a spec is a conjunction of upper
// bounds over a run's latency quantiles and outcome rates, written in
// a compact grammar:
//
//   p99<=50ms;error_rate<=0.01
//
// Metrics: p50 p90 p99 p999 mean (latency, seconds; ms/us/s suffixes
// accepted on the bound) and error_rate reject_rate (fractions of
// submitted requests). Every criterion is "<=" — an SLO is a promise
// that bad things stay below a line.
//
// max_sustainable_rate() answers the headline question "how much load
// can this fabric take while still keeping the SLO": a geometric ramp
// (double the rate while passing) finds the first failing rate, then
// bisection tightens the pass/fail boundary. The result is the highest
// rate that passed, with the full step log so a report can show the
// search path, not just the answer.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "load/generator.hpp"

namespace prts::load {

/// One parsed "metric OP bound[suffix]" clause — the comparison grammar
/// shared by SLO criteria (restricted to "<=") and the alert rules in
/// src/obs/alerts.hpp (any op). ms/us/s suffixes on the bound scale it
/// into seconds.
struct Comparison {
  std::string metric;
  std::string op;  ///< one of "<=", ">=", "<", ">"
  double bound = 0.0;
};

/// Parses one comparison clause. Returns false (setting `error` when
/// given) on a missing operator or malformed bound; metric names are
/// not validated here — callers own their metric namespace.
bool parse_comparison(const std::string& text, Comparison& comparison,
                      std::string* error = nullptr);

/// Evaluates `value OP bound`; false on an unknown operator string.
bool comparison_holds(double value, const std::string& op,
                      double bound) noexcept;

struct SloCriterion {
  std::string metric;  ///< p50|p90|p99|p999|mean|error_rate|reject_rate
  double bound = 0.0;  ///< seconds for latency metrics, fraction for rates
};

struct SloSpec {
  std::vector<SloCriterion> criteria;
  bool empty() const noexcept { return criteria.empty(); }
};

/// Parses the ';'-separated "metric<=bound[suffix]" grammar. Returns
/// false (and sets `error` when given) on unknown metrics or malformed
/// bounds.
bool parse_slo(const std::string& text, SloSpec& spec,
               std::string* error = nullptr);

/// Returns false on unknown metric name.
bool slo_metric_value(const RunResult& result, const std::string& metric,
                      double& value);

struct SloCheck {
  std::string metric;
  double bound = 0.0;
  double observed = 0.0;
  bool pass = false;
};

struct SloReport {
  std::vector<SloCheck> checks;
  bool pass = true;  ///< conjunction of checks (true for an empty spec)
};

SloReport evaluate_slo(const SloSpec& spec, const RunResult& result);

/// {"pass":true,"checks":[{"metric":..,"bound":..,"observed":..,
///   "pass":..},...]}
void write_slo_json(std::ostream& out, const SloReport& report);

/// One load step of the search.
struct StepOutcome {
  double rate = 0.0;
  bool pass = false;
  std::uint64_t submitted = 0;
  std::uint64_t answered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t unresolved = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  SloReport report;
};

struct SearchResult {
  /// Highest rate that passed the SLO (0 when even min_rate failed).
  double sustainable_rate = 0.0;
  std::vector<StepOutcome> steps;
};

struct SearchOptions {
  double min_rate = 25.0;
  double max_rate = 3200.0;
  /// Bisection stops when the pass/fail bracket is within this relative
  /// width of each other.
  double relative_tolerance = 0.15;
  std::size_t max_steps = 12;  ///< hard cap on run_at invocations
};

/// `run_at(rate)` offers load at `rate` and returns the measured run.
SearchResult max_sustainable_rate(
    const std::function<RunResult(double)>& run_at, const SloSpec& spec,
    const SearchOptions& options = {});

}  // namespace prts::load
