#include "load/slo.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "model/serialize.hpp"

namespace prts::load {

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

bool is_latency_metric(const std::string& metric) {
  return metric == "p50" || metric == "p90" || metric == "p99" ||
         metric == "p999" || metric == "mean";
}

bool known_metric(const std::string& metric) {
  return is_latency_metric(metric) || metric == "error_rate" ||
         metric == "reject_rate";
}

}  // namespace

bool parse_comparison(const std::string& text, Comparison& comparison,
                      std::string* error) {
  comparison = Comparison{};
  // Trim surrounding whitespace.
  const auto begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return fail(error, "empty comparison");
  const std::string part =
      text.substr(begin, text.find_last_not_of(" \t") - begin + 1);

  // Two-character operators first so "<=" is not read as "<".
  std::size_t at = std::string::npos;
  std::size_t op_len = 0;
  for (const char* op : {"<=", ">=", "<", ">"}) {
    at = part.find(op);
    if (at != std::string::npos) {
      op_len = std::char_traits<char>::length(op);
      break;
    }
  }
  if (at == std::string::npos || at == 0) {
    return fail(error, "missing comparison operator in '" + part + "'");
  }
  comparison.metric = part.substr(0, at);
  comparison.op = part.substr(at, op_len);

  std::string bound_text = part.substr(at + op_len);
  double scale = 1.0;
  if (bound_text.size() > 2 &&
      bound_text.compare(bound_text.size() - 2, 2, "ms") == 0) {
    scale = 1e-3;
    bound_text.resize(bound_text.size() - 2);
  } else if (bound_text.size() > 2 &&
             bound_text.compare(bound_text.size() - 2, 2, "us") == 0) {
    scale = 1e-6;
    bound_text.resize(bound_text.size() - 2);
  } else if (bound_text.size() > 1 && bound_text.back() == 's') {
    bound_text.pop_back();
  }
  double value = 0.0;
  if (!parse_canonical_number(bound_text, value) || std::isnan(value)) {
    return fail(error, "bad bound '" + part.substr(at + op_len) + "'");
  }
  comparison.bound = value * scale;
  return true;
}

bool comparison_holds(double value, const std::string& op,
                      double bound) noexcept {
  if (op == "<=") return value <= bound;
  if (op == ">=") return value >= bound;
  if (op == "<") return value < bound;
  if (op == ">") return value > bound;
  return false;
}

bool parse_slo(const std::string& text, SloSpec& spec, std::string* error) {
  spec = SloSpec{};
  std::stringstream parts(text);
  std::string part;
  while (std::getline(parts, part, ';')) {
    if (part.find_first_not_of(" \t") == std::string::npos) continue;
    Comparison comparison;
    std::string why;
    if (!parse_comparison(part, comparison, &why)) {
      return fail(error, "slo: " + why);
    }
    // An SLO is a promise that bad things stay below a line: only "<="
    // makes sense, and only over the run-report metric set.
    if (comparison.op != "<=") {
      return fail(error, "slo: missing '<=' in '" + part + "'");
    }
    if (!known_metric(comparison.metric)) {
      return fail(error, "slo: unknown metric '" + comparison.metric + "'");
    }
    if (comparison.bound < 0.0) {
      return fail(error, "slo: bad bound in '" + part + "'");
    }
    spec.criteria.push_back(
        SloCriterion{std::move(comparison.metric), comparison.bound});
  }
  if (spec.criteria.empty()) return fail(error, "slo: empty spec");
  return true;
}

bool slo_metric_value(const RunResult& result, const std::string& metric,
                      double& value) {
  if (metric == "p50") {
    value = result.quantile(0.50);
  } else if (metric == "p90") {
    value = result.quantile(0.90);
  } else if (metric == "p99") {
    value = result.quantile(0.99);
  } else if (metric == "p999") {
    value = result.quantile(0.999);
  } else if (metric == "mean") {
    value = result.mean_latency();
  } else if (metric == "error_rate") {
    value = result.error_rate();
  } else if (metric == "reject_rate") {
    value = result.reject_rate();
  } else {
    return false;
  }
  return true;
}

SloReport evaluate_slo(const SloSpec& spec, const RunResult& result) {
  SloReport report;
  for (const SloCriterion& criterion : spec.criteria) {
    SloCheck check;
    check.metric = criterion.metric;
    check.bound = criterion.bound;
    slo_metric_value(result, criterion.metric, check.observed);
    check.pass = check.observed <= criterion.bound;
    if (!check.pass) report.pass = false;
    report.checks.push_back(std::move(check));
  }
  return report;
}

void write_slo_json(std::ostream& out, const SloReport& report) {
  out << "{\"pass\":" << (report.pass ? "true" : "false") << ",\"checks\":[";
  bool first = true;
  for (const SloCheck& check : report.checks) {
    if (!first) out << ",";
    first = false;
    out << "{\"metric\":\"" << check.metric
        << "\",\"bound\":" << check.bound
        << ",\"observed\":" << check.observed
        << ",\"pass\":" << (check.pass ? "true" : "false") << "}";
  }
  out << "]}";
}

namespace {

StepOutcome run_step(const std::function<RunResult(double)>& run_at,
                     const SloSpec& spec, double rate) {
  const RunResult result = run_at(rate);
  StepOutcome step;
  step.rate = rate;
  step.report = evaluate_slo(spec, result);
  step.pass = step.report.pass;
  step.submitted = result.submitted;
  step.answered = result.answered;
  step.rejected = result.rejected;
  step.errors = result.errors;
  step.unresolved = result.unresolved;
  step.p50 = result.quantile(0.50);
  step.p99 = result.quantile(0.99);
  return step;
}

}  // namespace

SearchResult max_sustainable_rate(
    const std::function<RunResult(double)>& run_at, const SloSpec& spec,
    const SearchOptions& options) {
  SearchResult search;
  const double min_rate = std::max(options.min_rate, 1e-3);
  const double max_rate = std::max(options.max_rate, min_rate);

  // Geometric ramp: double until failure or the ceiling.
  double last_pass = 0.0;
  double first_fail = 0.0;
  double rate = min_rate;
  while (search.steps.size() < options.max_steps) {
    StepOutcome step = run_step(run_at, spec, rate);
    const bool passed = step.pass;
    search.steps.push_back(std::move(step));
    if (passed) {
      last_pass = rate;
      if (rate >= max_rate) break;  // ceiling holds: call it sustainable
      rate = std::min(rate * 2.0, max_rate);
    } else {
      first_fail = rate;
      break;
    }
  }

  // Bisection inside the (last_pass, first_fail) bracket.
  if (last_pass > 0.0 && first_fail > last_pass) {
    double lo = last_pass;
    double hi = first_fail;
    while (search.steps.size() < options.max_steps &&
           (hi - lo) / hi > options.relative_tolerance) {
      const double mid = 0.5 * (lo + hi);
      StepOutcome step = run_step(run_at, spec, mid);
      const bool passed = step.pass;
      search.steps.push_back(std::move(step));
      if (passed) {
        lo = mid;
        last_pass = std::max(last_pass, mid);
      } else {
        hi = mid;
      }
    }
  }

  search.sustainable_rate = last_pass;
  return search;
}

}  // namespace prts::load
