#include "load/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "model/serialize.hpp"

namespace prts::load {

namespace {

constexpr const char* kHeader = "prts-load-trace v1";

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

void write_trace(std::ostream& out, const LoadTrace& trace) {
  out << kHeader << "\n";
  for (const auto& [key, value] : trace.meta) {
    out << "meta " << key << " " << value << "\n";
  }
  out << "events " << trace.events.size() << "\n";
  for (const ArrivalEvent& event : trace.events) {
    out << canonical_number(event.time_seconds) << " " << event.instance
        << " " << event.solver << " "
        << canonical_number(event.bounds.period_bound) << " "
        << canonical_number(event.bounds.latency_bound) << "\n";
  }
  out << "end\n";
}

bool read_trace(std::istream& in, LoadTrace& trace, std::string* error) {
  trace = LoadTrace{};
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return fail(error, "load trace: missing '" + std::string(kHeader) +
                           "' header");
  }
  std::size_t expected = 0;
  bool have_events_line = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string word;
    tokens >> word;
    if (word == "meta") {
      std::string key;
      if (!(tokens >> key)) return fail(error, "load trace: meta without key");
      std::string value;
      std::getline(tokens, value);
      if (!value.empty() && value.front() == ' ') value.erase(0, 1);
      trace.meta[key] = value;
      continue;
    }
    if (word == "events") {
      if (!(tokens >> expected)) {
        return fail(error, "load trace: bad events count");
      }
      have_events_line = true;
      continue;
    }
    break;  // first event line (or stray garbage, caught below)
  }
  if (!have_events_line) return fail(error, "load trace: missing events line");

  // `line` currently holds the first event (or "end" for empty traces).
  trace.events.reserve(expected);
  while (line != "end") {
    std::istringstream tokens(line);
    std::string time_text, period_text, latency_text;
    ArrivalEvent event;
    if (!(tokens >> time_text >> event.instance >> event.solver >>
          period_text >> latency_text) ||
        !parse_canonical_number(time_text, event.time_seconds) ||
        !parse_canonical_number(period_text, event.bounds.period_bound) ||
        !parse_canonical_number(latency_text, event.bounds.latency_bound)) {
      return fail(error, "load trace: bad event line '" + line + "'");
    }
    trace.events.push_back(std::move(event));
    if (!std::getline(in, line)) {
      return fail(error, "load trace: missing end marker");
    }
  }
  if (trace.events.size() != expected) {
    return fail(error, "load trace: event count mismatch");
  }
  return true;
}

std::string trace_to_string(const LoadTrace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

bool trace_from_string(const std::string& text, LoadTrace& trace,
                       std::string* error) {
  std::istringstream in(text);
  return read_trace(in, trace, error);
}

}  // namespace prts::load
