// Plain-text serialization of problem instances (chain + platform), so
// experiments are shareable and the command-line tool can pipe them.
//
// Format (line oriented, '#' comments allowed):
//   prts-instance v1
//   tasks <n>
//   <work> <out_size>          # n lines
//   platform <p> <bandwidth> <link_failure_rate> <max_replication>
//   <speed> <failure_rate>     # p lines
//
// Task lines may alternatively be written as 'task <id> <work>
// <out_size>' with arbitrary distinct integer ids; the chain order is
// the ascending id order, so stage labels carry no meaning beyond their
// relative order (all-labeled or all-plain, never mixed). The service
// layer's canonicalization (src/service/canonical.hpp) relies on this:
// relabeling stages produces a different text but the same instance.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// A problem instance: the application and the platform.
struct Instance {
  TaskChain chain;
  Platform platform;
};

/// Writes the instance in the v1 text format.
void write_instance(std::ostream& out, const Instance& instance);

/// Serializes to a string (convenience over write_instance).
std::string instance_to_text(const Instance& instance);

/// Shortest decimal string that round-trips the double exactly
/// ("1", "0.25", "1e-08", "inf"); -0 is normalized to 0. Unlike stream
/// output this is locale- and precision-independent, so two values
/// produce the same bytes iff they are the same double — the property
/// the service layer's content hashing needs.
std::string canonical_number(double value);

/// Inverse of canonical_number (from_chars round-trips to_chars
/// exactly; "inf"/"-inf" accepted). False on trailing garbage or
/// malformed input; `value` is untouched on failure.
bool parse_canonical_number(std::string_view text, double& value);

/// Writes the v1 text format with canonical_number formatting and no
/// information loss: the byte-level canonical form of an instance
/// (read_instance parses it back bit-exactly). Processor *order* is
/// preserved; isomorphism-safe normalization is layered on top by
/// src/service/canonical.hpp.
void write_instance_canonical(std::ostream& out, const Instance& instance);

/// Result of parsing: either an instance or a human-readable error.
struct ParseResult {
  std::optional<Instance> instance;
  std::string error;

  explicit operator bool() const noexcept { return instance.has_value(); }
};

/// Parses the v1 text format; never throws — malformed input yields an
/// error message naming the offending line.
ParseResult read_instance(std::istream& in);

/// Parses from a string (convenience over read_instance).
ParseResult instance_from_text(const std::string& text);

}  // namespace prts
