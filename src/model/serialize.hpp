// Plain-text serialization of problem instances (chain + platform), so
// experiments are shareable and the command-line tool can pipe them.
//
// Format (line oriented, '#' comments allowed):
//   prts-instance v1
//   tasks <n>
//   <work> <out_size>          # n lines
//   platform <p> <bandwidth> <link_failure_rate> <max_replication>
//   <speed> <failure_rate>     # p lines
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// A problem instance: the application and the platform.
struct Instance {
  TaskChain chain;
  Platform platform;
};

/// Writes the instance in the v1 text format.
void write_instance(std::ostream& out, const Instance& instance);

/// Serializes to a string (convenience over write_instance).
std::string instance_to_text(const Instance& instance);

/// Result of parsing: either an instance or a human-readable error.
struct ParseResult {
  std::optional<Instance> instance;
  std::string error;

  explicit operator bool() const noexcept { return instance.has_value(); }
};

/// Parses the v1 text format; never throws — malformed input yields an
/// error message naming the offending line.
ParseResult read_instance(std::istream& in);

/// Parses from a string (convenience over read_instance).
ParseResult instance_from_text(const std::string& text);

}  // namespace prts
