#include "model/dot.hpp"

#include <sstream>

namespace prts {

std::string mapping_to_dot(const TaskChain& chain, const Platform& platform,
                           const Mapping& mapping) {
  (void)platform;  // reserved for per-processor annotations
  const IntervalPartition& part = mapping.partition();
  std::ostringstream out;
  out << "digraph mapping {\n";
  out << "  rankdir=LR;\n";
  out << "  node [shape=record];\n";
  out << "  env_in [shape=point];\n";
  out << "  env_out [shape=point];\n";
  for (std::size_t j = 0; j < part.interval_count(); ++j) {
    const Interval& ival = part.interval(j);
    out << "  i" << j << " [label=\"I" << j << " | tasks " << ival.first
        << ".." << ival.last << " | W=" << part.work(chain, j) << " | {";
    bool first = true;
    for (std::size_t u : mapping.processors(j)) {
      if (!first) out << " ";
      out << "P" << u;
      first = false;
    }
    out << "}\"];\n";
  }
  out << "  env_in -> i0;\n";
  for (std::size_t j = 0; j + 1 < part.interval_count(); ++j) {
    out << "  i" << j << " -> i" << j + 1 << " [label=\"o="
        << part.out_size(chain, j) << "\"];\n";
  }
  out << "  i" << part.interval_count() - 1 << " -> env_out";
  const double final_out =
      part.out_size(chain, part.interval_count() - 1);
  if (final_out > 0.0) out << " [label=\"o=" << final_out << "\"]";
  out << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace prts
