// Random instance generation, including the exact experimental setup of
// Section 8 of the paper (the `paper` namespace).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// Parameters for random chains: uniform integer works in
/// [work_lo, work_hi] and uniform integer output sizes in [out_lo, out_hi];
/// the last task's output size is forced to 0 (paper convention o_n = 0).
struct ChainConfig {
  std::size_t task_count = 15;
  int work_lo = 1;
  int work_hi = 100;
  int out_lo = 1;
  int out_hi = 10;
};

/// Draws a random chain.
TaskChain random_chain(Rng& rng, const ChainConfig& config);

/// Parameters for random heterogeneous platforms: uniform integer speeds in
/// [speed_lo, speed_hi], identical failure rates.
struct HetPlatformConfig {
  std::size_t processor_count = 10;
  int speed_lo = 1;
  int speed_hi = 100;
  double processor_failure_rate = 1e-8;
  double bandwidth = 1.0;
  double link_failure_rate = 1e-5;
  unsigned max_replication = 3;
};

/// Draws a random heterogeneous platform.
Platform random_het_platform(Rng& rng, const HetPlatformConfig& config);

/// Workload shapes beyond the paper's uniform distribution, for
/// robustness studies of the heuristics (bench/workload_shapes).
enum class ChainShape {
  kUniform,     ///< the paper's distribution (w in [1,100], o in [1,10])
  kIncreasing,  ///< work ramps up along the chain (sensor -> fusion)
  kDecreasing,  ///< work ramps down (front-loaded processing)
  kHotspot,     ///< one task ~10x heavier than the rest
  kCommHeavy,   ///< small works, outputs comparable to works
};

/// Draws a chain of `task_count` tasks with the given shape; the last
/// output size is always 0.
TaskChain shaped_chain(Rng& rng, std::size_t task_count, ChainShape shape);

/// Section 8 constants and factories: 15 tasks, 10 processors, K = 3,
/// works in [1,100], output sizes in [1,10], b = 1, lambda_p = 1e-8,
/// lambda_l = 1e-5; homogeneous speed 1; heterogeneous speeds in [1,100]
/// compared against a homogeneous platform of speed 5.
namespace paper {

inline constexpr std::size_t kTaskCount = 15;
inline constexpr std::size_t kProcessorCount = 10;
inline constexpr unsigned kMaxReplication = 3;
inline constexpr double kProcessorFailureRate = 1e-8;
inline constexpr double kLinkFailureRate = 1e-5;
inline constexpr double kBandwidth = 1.0;
inline constexpr double kHomSpeed = 1.0;
inline constexpr double kHetComparisonHomSpeed = 5.0;
inline constexpr std::size_t kInstanceCount = 100;

/// A random 15-task chain with the paper's cost distributions.
TaskChain chain(Rng& rng);

/// The homogeneous platform of Section 8.1 (speed 1).
Platform hom_platform();

/// A random heterogeneous platform of Section 8.2 (speeds in [1,100]).
Platform het_platform(Rng& rng);

/// The homogeneous comparison platform of Section 8.2 (speed 5).
Platform hom_comparison_platform();

}  // namespace paper
}  // namespace prts
