#include "model/mapping.hpp"

#include <algorithm>
#include <stdexcept>

namespace prts {

Mapping::Mapping(IntervalPartition partition,
                 std::vector<std::vector<std::size_t>> processors_per_interval)
    : partition_(std::move(partition)),
      processors_(std::move(processors_per_interval)) {
  if (processors_.size() != partition_.interval_count()) {
    throw std::invalid_argument(
        "Mapping: need exactly one processor set per interval");
  }
  for (auto& procs : processors_) {
    if (procs.empty()) {
      throw std::invalid_argument(
          "Mapping: every interval needs at least one processor");
    }
    std::sort(procs.begin(), procs.end());
    if (std::adjacent_find(procs.begin(), procs.end()) != procs.end()) {
      throw std::invalid_argument(
          "Mapping: duplicate processor within an interval");
    }
  }
}

std::size_t Mapping::processors_used() const noexcept {
  std::size_t used = 0;
  for (const auto& procs : processors_) used += procs.size();
  return used;
}

double Mapping::replication_level() const noexcept {
  return static_cast<double>(processors_used()) /
         static_cast<double>(interval_count());
}

std::optional<std::string> Mapping::validate(const Platform& platform) const {
  std::vector<bool> seen(platform.processor_count(), false);
  for (std::size_t j = 0; j < processors_.size(); ++j) {
    const auto& procs = processors_[j];
    if (procs.size() > platform.max_replication()) {
      return "interval " + std::to_string(j) + " uses " +
             std::to_string(procs.size()) + " replicas, above K=" +
             std::to_string(platform.max_replication());
    }
    for (std::size_t u : procs) {
      if (u >= platform.processor_count()) {
        return "processor id " + std::to_string(u) + " out of range";
      }
      if (seen[u]) {
        return "processor " + std::to_string(u) +
               " assigned to more than one interval";
      }
      seen[u] = true;
    }
  }
  return std::nullopt;
}

}  // namespace prts
