#include "model/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace prts {
namespace {

/// Reads the next content line (skipping blanks and '#' comments);
/// false at end of stream.
bool next_line(std::istream& in, std::string& line, std::size_t& lineno) {
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    return true;
  }
  return false;
}

ParseResult fail(std::size_t lineno, const std::string& what) {
  ParseResult result;
  result.error = "line " + std::to_string(lineno) + ": " + what;
  return result;
}

}  // namespace

void write_instance(std::ostream& out, const Instance& instance) {
  out << "prts-instance v1\n";
  out << "tasks " << instance.chain.size() << "\n";
  for (const Task& task : instance.chain.tasks()) {
    out << task.work << " " << task.out_size << "\n";
  }
  const Platform& platform = instance.platform;
  out << "platform " << platform.processor_count() << " "
      << platform.bandwidth() << " " << platform.link_failure_rate() << " "
      << platform.max_replication() << "\n";
  for (const Processor& proc : platform.processors()) {
    out << proc.speed << " " << proc.failure_rate << "\n";
  }
}

std::string instance_to_text(const Instance& instance) {
  std::ostringstream out;
  write_instance(out, instance);
  return out.str();
}

ParseResult read_instance(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;

  if (!next_line(in, line, lineno)) return fail(lineno, "empty input");
  {
    std::istringstream header(line);
    std::string magic;
    std::string version;
    header >> magic >> version;
    if (magic != "prts-instance" || version != "v1") {
      return fail(lineno, "expected header 'prts-instance v1'");
    }
  }

  if (!next_line(in, line, lineno)) return fail(lineno, "missing tasks line");
  std::size_t n = 0;
  {
    std::istringstream tasks_line(line);
    std::string keyword;
    tasks_line >> keyword >> n;
    if (keyword != "tasks" || tasks_line.fail() || n == 0) {
      return fail(lineno, "expected 'tasks <n>' with n >= 1");
    }
  }

  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!next_line(in, line, lineno)) {
      return fail(lineno, "expected " + std::to_string(n) +
                              " task lines, got " + std::to_string(i));
    }
    std::istringstream task_line(line);
    Task task;
    task_line >> task.work >> task.out_size;
    if (task_line.fail()) {
      return fail(lineno, "expected '<work> <out_size>'");
    }
    if (!(task.work > 0.0) || task.out_size < 0.0) {
      return fail(lineno, "work must be > 0 and out_size >= 0");
    }
    tasks.push_back(task);
  }

  if (!next_line(in, line, lineno)) {
    return fail(lineno, "missing platform line");
  }
  std::size_t p = 0;
  double bandwidth = 0.0;
  double link_failure_rate = 0.0;
  unsigned max_replication = 0;
  {
    std::istringstream platform_line(line);
    std::string keyword;
    platform_line >> keyword >> p >> bandwidth >> link_failure_rate >>
        max_replication;
    if (keyword != "platform" || platform_line.fail() || p == 0) {
      return fail(lineno,
                  "expected 'platform <p> <bandwidth> <link_rate> <K>'");
    }
  }
  if (!(bandwidth > 0.0) || link_failure_rate < 0.0 || max_replication < 1) {
    return fail(lineno, "invalid platform parameters");
  }

  std::vector<Processor> processors;
  processors.reserve(p);
  for (std::size_t u = 0; u < p; ++u) {
    if (!next_line(in, line, lineno)) {
      return fail(lineno, "expected " + std::to_string(p) +
                              " processor lines, got " + std::to_string(u));
    }
    std::istringstream proc_line(line);
    Processor proc;
    proc_line >> proc.speed >> proc.failure_rate;
    if (proc_line.fail()) {
      return fail(lineno, "expected '<speed> <failure_rate>'");
    }
    if (!(proc.speed > 0.0) || proc.failure_rate < 0.0) {
      return fail(lineno, "speed must be > 0 and failure rate >= 0");
    }
    processors.push_back(proc);
  }

  ParseResult result;
  result.instance = Instance{
      TaskChain(std::move(tasks)),
      Platform(std::move(processors), bandwidth, link_failure_rate,
               max_replication)};
  return result;
}

ParseResult instance_from_text(const std::string& text) {
  std::istringstream in(text);
  return read_instance(in);
}

}  // namespace prts
