#include "model/serialize.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

namespace prts {
namespace {

/// Reads the next content line (skipping blanks and '#' comments);
/// false at end of stream.
bool next_line(std::istream& in, std::string& line, std::size_t& lineno) {
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    return true;
  }
  return false;
}

ParseResult fail(std::size_t lineno, const std::string& what) {
  ParseResult result;
  result.error = "line " + std::to_string(lineno) + ": " + what;
  return result;
}

}  // namespace

void write_instance(std::ostream& out, const Instance& instance) {
  out << "prts-instance v1\n";
  out << "tasks " << instance.chain.size() << "\n";
  for (const Task& task : instance.chain.tasks()) {
    out << task.work << " " << task.out_size << "\n";
  }
  const Platform& platform = instance.platform;
  out << "platform " << platform.processor_count() << " "
      << platform.bandwidth() << " " << platform.link_failure_rate() << " "
      << platform.max_replication() << "\n";
  for (const Processor& proc : platform.processors()) {
    out << proc.speed << " " << proc.failure_rate << "\n";
  }
}

std::string instance_to_text(const Instance& instance) {
  std::ostringstream out;
  write_instance(out, instance);
  return out.str();
}

std::string canonical_number(double value) {
  if (value == 0.0) value = 0.0;  // collapse -0.0
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  (void)ec;  // shortest form always fits in 64 chars
  return std::string(buffer, end);
}

bool parse_canonical_number(std::string_view text, double& value) {
  if (text == "inf") {
    value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-inf") {
    value = -std::numeric_limits<double>::infinity();
    return true;
  }
  double parsed = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return false;
  value = parsed;
  return true;
}

void write_instance_canonical(std::ostream& out, const Instance& instance) {
  out << "prts-instance v1\n";
  out << "tasks " << instance.chain.size() << "\n";
  for (const Task& task : instance.chain.tasks()) {
    out << canonical_number(task.work) << " "
        << canonical_number(task.out_size) << "\n";
  }
  const Platform& platform = instance.platform;
  out << "platform " << platform.processor_count() << " "
      << canonical_number(platform.bandwidth()) << " "
      << canonical_number(platform.link_failure_rate()) << " "
      << platform.max_replication() << "\n";
  for (const Processor& proc : platform.processors()) {
    out << canonical_number(proc.speed) << " "
        << canonical_number(proc.failure_rate) << "\n";
  }
}

ParseResult read_instance(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;

  if (!next_line(in, line, lineno)) return fail(lineno, "empty input");
  {
    std::istringstream header(line);
    std::string magic;
    std::string version;
    header >> magic >> version;
    if (magic != "prts-instance" || version != "v1") {
      return fail(lineno, "expected header 'prts-instance v1'");
    }
  }

  if (!next_line(in, line, lineno)) return fail(lineno, "missing tasks line");
  std::size_t n = 0;
  {
    std::istringstream tasks_line(line);
    std::string keyword;
    tasks_line >> keyword >> n;
    if (keyword != "tasks" || tasks_line.fail() || n == 0) {
      return fail(lineno, "expected 'tasks <n>' with n >= 1");
    }
  }

  std::vector<Task> tasks;
  tasks.reserve(n);
  // Labeled form: 'task <id> <work> <out_size>' lines in any order; the
  // ascending id order defines the chain order (ids are labels only).
  std::vector<std::pair<std::int64_t, Task>> labeled;
  for (std::size_t i = 0; i < n; ++i) {
    if (!next_line(in, line, lineno)) {
      return fail(lineno, "expected " + std::to_string(n) +
                              " task lines, got " + std::to_string(i));
    }
    std::istringstream task_line(line);
    Task task;
    std::string first_token;
    {
      std::istringstream probe(line);
      probe >> first_token;
    }
    if (first_token == "task") {
      std::string keyword;
      std::int64_t id = 0;
      task_line >> keyword >> id >> task.work >> task.out_size;
      if (task_line.fail()) {
        return fail(lineno, "expected 'task <id> <work> <out_size>'");
      }
      if (!tasks.empty()) {
        return fail(lineno, "cannot mix labeled and plain task lines");
      }
      labeled.emplace_back(id, task);
    } else {
      if (!labeled.empty()) {
        return fail(lineno, "cannot mix labeled and plain task lines");
      }
      task_line >> task.work >> task.out_size;
      if (task_line.fail()) {
        return fail(lineno, "expected '<work> <out_size>'");
      }
      tasks.push_back(task);
    }
    const Task& parsed_task = labeled.empty() ? tasks.back() : labeled.back().second;
    if (!(parsed_task.work > 0.0) || parsed_task.out_size < 0.0) {
      return fail(lineno, "work must be > 0 and out_size >= 0");
    }
  }
  if (!labeled.empty()) {
    std::stable_sort(labeled.begin(), labeled.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (std::size_t i = 0; i + 1 < labeled.size(); ++i) {
      if (labeled[i].first == labeled[i + 1].first) {
        return fail(lineno, "duplicate task id " +
                                std::to_string(labeled[i].first));
      }
    }
    for (const auto& [id, task] : labeled) tasks.push_back(task);
  }

  if (!next_line(in, line, lineno)) {
    return fail(lineno, "missing platform line");
  }
  std::size_t p = 0;
  double bandwidth = 0.0;
  double link_failure_rate = 0.0;
  unsigned max_replication = 0;
  {
    std::istringstream platform_line(line);
    std::string keyword;
    platform_line >> keyword >> p >> bandwidth >> link_failure_rate >>
        max_replication;
    if (keyword != "platform" || platform_line.fail() || p == 0) {
      return fail(lineno,
                  "expected 'platform <p> <bandwidth> <link_rate> <K>'");
    }
  }
  if (!(bandwidth > 0.0) || link_failure_rate < 0.0 || max_replication < 1) {
    return fail(lineno, "invalid platform parameters");
  }

  std::vector<Processor> processors;
  processors.reserve(p);
  for (std::size_t u = 0; u < p; ++u) {
    if (!next_line(in, line, lineno)) {
      return fail(lineno, "expected " + std::to_string(p) +
                              " processor lines, got " + std::to_string(u));
    }
    std::istringstream proc_line(line);
    Processor proc;
    proc_line >> proc.speed >> proc.failure_rate;
    if (proc_line.fail()) {
      return fail(lineno, "expected '<speed> <failure_rate>'");
    }
    if (!(proc.speed > 0.0) || proc.failure_rate < 0.0) {
      return fail(lineno, "speed must be > 0 and failure rate >= 0");
    }
    processors.push_back(proc);
  }

  ParseResult result;
  result.instance = Instance{
      TaskChain(std::move(tasks)),
      Platform(std::move(processors), bandwidth, link_failure_rate,
               max_replication)};
  return result;
}

ParseResult instance_from_text(const std::string& text) {
  std::istringstream in(text);
  return read_instance(in);
}

}  // namespace prts
