#include "model/interval.hpp"

#include <algorithm>
#include <stdexcept>

namespace prts {

IntervalPartition::IntervalPartition(std::vector<Interval> intervals,
                                     std::size_t task_count)
    : intervals_(std::move(intervals)), task_count_(task_count) {
  if (intervals_.empty()) {
    throw std::invalid_argument("IntervalPartition: no intervals");
  }
  std::size_t expected_first = 0;
  for (const Interval& ival : intervals_) {
    if (ival.first != expected_first || ival.last < ival.first ||
        ival.last >= task_count_) {
      throw std::invalid_argument(
          "IntervalPartition: intervals must tile 0..n-1 in order");
    }
    expected_first = ival.last + 1;
  }
  if (expected_first != task_count_) {
    throw std::invalid_argument(
        "IntervalPartition: intervals must cover the whole chain");
  }
}

IntervalPartition IntervalPartition::from_boundaries(
    std::span<const std::size_t> lasts, std::size_t task_count) {
  std::vector<Interval> intervals;
  intervals.reserve(lasts.size());
  std::size_t first = 0;
  for (std::size_t last : lasts) {
    intervals.push_back(Interval{first, last});
    first = last + 1;
  }
  return IntervalPartition(std::move(intervals), task_count);
}

IntervalPartition IntervalPartition::single(std::size_t task_count) {
  return IntervalPartition({Interval{0, task_count - 1}}, task_count);
}

IntervalPartition IntervalPartition::singletons(std::size_t task_count) {
  std::vector<Interval> intervals;
  intervals.reserve(task_count);
  for (std::size_t i = 0; i < task_count; ++i) {
    intervals.push_back(Interval{i, i});
  }
  return IntervalPartition(std::move(intervals), task_count);
}

std::size_t IntervalPartition::interval_of(std::size_t task) const noexcept {
  const auto it = std::partition_point(
      intervals_.begin(), intervals_.end(),
      [task](const Interval& ival) { return ival.last < task; });
  return static_cast<std::size_t>(it - intervals_.begin());
}

std::vector<std::size_t> IntervalPartition::boundaries() const {
  std::vector<std::size_t> lasts;
  lasts.reserve(intervals_.size());
  for (const Interval& ival : intervals_) lasts.push_back(ival.last);
  return lasts;
}

}  // namespace prts
