#include "model/constraints.hpp"

namespace prts {

AllocationConstraints::AllocationConstraints(std::size_t task_count,
                                             std::size_t processor_count)
    : task_count_(task_count),
      processor_count_(processor_count),
      allowed_(task_count * processor_count, true) {}

AllocationConstraints AllocationConstraints::all_allowed(
    std::size_t task_count, std::size_t processor_count) {
  return AllocationConstraints(task_count, processor_count);
}

void AllocationConstraints::forbid(std::size_t task,
                                   std::size_t processor) noexcept {
  allowed_[task * processor_count_ + processor] = false;
}

void AllocationConstraints::allow(std::size_t task,
                                  std::size_t processor) noexcept {
  allowed_[task * processor_count_ + processor] = true;
}

bool AllocationConstraints::allowed(std::size_t task,
                                    std::size_t processor) const noexcept {
  return allowed_[task * processor_count_ + processor];
}

bool AllocationConstraints::interval_allowed(
    const Interval& interval, std::size_t processor) const noexcept {
  for (std::size_t task = interval.first; task <= interval.last; ++task) {
    if (!allowed(task, processor)) return false;
  }
  return true;
}

}  // namespace prts
