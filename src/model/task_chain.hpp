// Application model: a linear chain of tasks (Section 2.1 of the paper).
//
// Task indices are 0-based here; the paper is 1-based. Task i is the pair
// (w_i, o_i): w_i units of work and an output of o_i data units sent to
// task i+1. By the paper's convention the last task's output size is 0
// (results leave through actuator drivers); the model does not force this,
// the generators produce it, and the evaluation handles any value.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace prts {

/// One task of the chain: work amount and output data size.
struct Task {
  double work = 0.0;      ///< w_i > 0, in abstract work units.
  double out_size = 0.0;  ///< o_i >= 0, in abstract data units.
};

/// An immutable chain of tasks with O(1) interval work queries.
class TaskChain {
 public:
  /// Builds a chain; requires at least one task, every work > 0 and every
  /// out_size >= 0 (throws std::invalid_argument otherwise).
  explicit TaskChain(std::vector<Task> tasks);

  /// Number of tasks n.
  std::size_t size() const noexcept { return tasks_.size(); }

  /// Task i (0 <= i < n).
  const Task& task(std::size_t i) const noexcept { return tasks_[i]; }

  /// Work w_i of task i.
  double work(std::size_t i) const noexcept { return tasks_[i].work; }

  /// Output size o_i of task i (data sent from task i to task i+1, or to
  /// the environment for the last task).
  double out_size(std::size_t i) const noexcept { return tasks_[i].out_size; }

  /// Sum of works of tasks first..last inclusive (the interval weight W).
  /// Requires first <= last < n.
  double work_sum(std::size_t first, std::size_t last) const noexcept;

  /// Total work of the whole chain.
  double total_work() const noexcept { return work_sum(0, size() - 1); }

  /// All tasks, in chain order.
  std::span<const Task> tasks() const noexcept { return tasks_; }

 private:
  std::vector<Task> tasks_;
  std::vector<double> prefix_work_;  // prefix_work_[i] = sum of w_0..w_{i-1}
};

}  // namespace prts
