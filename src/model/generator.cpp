#include "model/generator.hpp"

#include <vector>

namespace prts {

TaskChain random_chain(Rng& rng, const ChainConfig& config) {
  std::vector<Task> tasks;
  tasks.reserve(config.task_count);
  for (std::size_t i = 0; i < config.task_count; ++i) {
    Task task;
    task.work =
        static_cast<double>(rng.uniform_int(config.work_lo, config.work_hi));
    const bool is_last = (i + 1 == config.task_count);
    task.out_size =
        is_last ? 0.0
                : static_cast<double>(
                      rng.uniform_int(config.out_lo, config.out_hi));
    tasks.push_back(task);
  }
  return TaskChain(std::move(tasks));
}

Platform random_het_platform(Rng& rng, const HetPlatformConfig& config) {
  std::vector<Processor> processors;
  processors.reserve(config.processor_count);
  for (std::size_t u = 0; u < config.processor_count; ++u) {
    Processor proc;
    proc.speed =
        static_cast<double>(rng.uniform_int(config.speed_lo, config.speed_hi));
    proc.failure_rate = config.processor_failure_rate;
    processors.push_back(proc);
  }
  return Platform(std::move(processors), config.bandwidth,
                  config.link_failure_rate, config.max_replication);
}

TaskChain shaped_chain(Rng& rng, std::size_t task_count, ChainShape shape) {
  std::vector<Task> tasks;
  tasks.reserve(task_count);
  const auto hotspot = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(task_count - 1)));
  for (std::size_t i = 0; i < task_count; ++i) {
    Task task;
    const double position =
        task_count > 1
            ? static_cast<double>(i) / static_cast<double>(task_count - 1)
            : 0.0;
    switch (shape) {
      case ChainShape::kUniform:
        task.work = static_cast<double>(rng.uniform_int(1, 100));
        task.out_size = static_cast<double>(rng.uniform_int(1, 10));
        break;
      case ChainShape::kIncreasing:
        task.work = 10.0 + 90.0 * position + rng.uniform_real(0.0, 10.0);
        task.out_size = static_cast<double>(rng.uniform_int(1, 10));
        break;
      case ChainShape::kDecreasing:
        task.work =
            10.0 + 90.0 * (1.0 - position) + rng.uniform_real(0.0, 10.0);
        task.out_size = static_cast<double>(rng.uniform_int(1, 10));
        break;
      case ChainShape::kHotspot:
        task.work = static_cast<double>(rng.uniform_int(5, 20));
        if (i == hotspot) task.work *= 10.0;
        task.out_size = static_cast<double>(rng.uniform_int(1, 10));
        break;
      case ChainShape::kCommHeavy:
        task.work = static_cast<double>(rng.uniform_int(1, 20));
        task.out_size = static_cast<double>(rng.uniform_int(10, 30));
        break;
    }
    if (i + 1 == task_count) task.out_size = 0.0;
    tasks.push_back(task);
  }
  return TaskChain(std::move(tasks));
}

namespace paper {

TaskChain chain(Rng& rng) { return random_chain(rng, ChainConfig{}); }

Platform hom_platform() {
  return Platform::homogeneous(kProcessorCount, kHomSpeed,
                               kProcessorFailureRate, kBandwidth,
                               kLinkFailureRate, kMaxReplication);
}

Platform het_platform(Rng& rng) {
  return random_het_platform(rng, HetPlatformConfig{});
}

Platform hom_comparison_platform() {
  return Platform::homogeneous(kProcessorCount, kHetComparisonHomSpeed,
                               kProcessorFailureRate, kBandwidth,
                               kLinkFailureRate, kMaxReplication);
}

}  // namespace paper
}  // namespace prts
