// Task-processor allocation constraints (Section 7.2 remark): a task may
// require a hardware driver that only exists on some processors. The
// heterogeneous allocator refuses to place an interval on a processor that
// is not allowed for *every* task of the interval.
#pragma once

#include <cstddef>
#include <vector>

#include "model/interval.hpp"

namespace prts {

/// A boolean eligibility matrix between tasks and processors. The default
/// (all_allowed) permits every placement, matching the base model.
class AllocationConstraints {
 public:
  /// Every task may run on every processor.
  static AllocationConstraints all_allowed(std::size_t task_count,
                                           std::size_t processor_count);

  /// Forbids running `task` on `processor`.
  void forbid(std::size_t task, std::size_t processor) noexcept;

  /// Re-allows running `task` on `processor`.
  void allow(std::size_t task, std::size_t processor) noexcept;

  /// True when `task` may run on `processor`.
  bool allowed(std::size_t task, std::size_t processor) const noexcept;

  /// True when every task of `interval` may run on `processor`.
  bool interval_allowed(const Interval& interval,
                        std::size_t processor) const noexcept;

  std::size_t task_count() const noexcept { return task_count_; }
  std::size_t processor_count() const noexcept { return processor_count_; }

 private:
  AllocationConstraints(std::size_t task_count, std::size_t processor_count);

  std::size_t task_count_ = 0;
  std::size_t processor_count_ = 0;
  std::vector<bool> allowed_;  // row-major [task][processor]
};

}  // namespace prts
