#include "model/platform.hpp"

#include <stdexcept>

namespace prts {

Platform::Platform(std::vector<Processor> processors, double bandwidth,
                   double link_failure_rate, unsigned max_replication)
    : processors_(std::move(processors)),
      bandwidth_(bandwidth),
      link_failure_rate_(link_failure_rate),
      max_replication_(max_replication) {
  if (processors_.empty()) {
    throw std::invalid_argument("Platform: need at least one processor");
  }
  if (!(bandwidth_ > 0.0)) {
    throw std::invalid_argument("Platform: bandwidth must be positive");
  }
  if (link_failure_rate_ < 0.0) {
    throw std::invalid_argument(
        "Platform: link failure rate must be non-negative");
  }
  if (max_replication_ < 1) {
    throw std::invalid_argument("Platform: max replication must be >= 1");
  }
  homogeneous_ = true;
  for (const Processor& proc : processors_) {
    if (!(proc.speed > 0.0)) {
      throw std::invalid_argument("Platform: processor speed must be positive");
    }
    if (proc.failure_rate < 0.0) {
      throw std::invalid_argument(
          "Platform: processor failure rate must be non-negative");
    }
    if (proc.speed != processors_.front().speed ||
        proc.failure_rate != processors_.front().failure_rate) {
      homogeneous_ = false;
    }
  }
}

Platform Platform::homogeneous(std::size_t processor_count, double speed,
                               double failure_rate, double bandwidth,
                               double link_failure_rate,
                               unsigned max_replication) {
  return Platform(
      std::vector<Processor>(processor_count, Processor{speed, failure_rate}),
      bandwidth, link_failure_rate, max_replication);
}

}  // namespace prts
