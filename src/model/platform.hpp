// Platform model (Section 2.2): p processors with individual speeds and
// transient-failure rates, homogeneous point-to-point links of bandwidth b
// and failure rate lambda_l, and a bounded multiport degree K which also
// caps the replication factor of every interval (Section 2.5).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace prts {

/// One processor: speed (work units per time unit) and failure rate per
/// time unit of its exponential transient-failure process.
struct Processor {
  double speed = 1.0;
  double failure_rate = 0.0;
};

/// An immutable distributed platform.
class Platform {
 public:
  /// Builds a platform; requires at least one processor, positive speeds
  /// and bandwidth, non-negative failure rates and max_replication >= 1
  /// (throws std::invalid_argument otherwise).
  Platform(std::vector<Processor> processors, double bandwidth,
           double link_failure_rate, unsigned max_replication);

  /// Fully homogeneous platform: p identical processors.
  static Platform homogeneous(std::size_t processor_count, double speed,
                              double failure_rate, double bandwidth,
                              double link_failure_rate,
                              unsigned max_replication);

  /// Number of processors p.
  std::size_t processor_count() const noexcept { return processors_.size(); }

  /// Processor u (0 <= u < p).
  const Processor& processor(std::size_t u) const noexcept {
    return processors_[u];
  }

  double speed(std::size_t u) const noexcept { return processors_[u].speed; }
  double failure_rate(std::size_t u) const noexcept {
    return processors_[u].failure_rate;
  }

  /// Link bandwidth b (identical for all links).
  double bandwidth() const noexcept { return bandwidth_; }

  /// Link failure rate per time unit lambda_l (identical for all links).
  double link_failure_rate() const noexcept { return link_failure_rate_; }

  /// Bounded multiport degree K: max simultaneous outgoing connections,
  /// hence also the max number of replicas per interval.
  unsigned max_replication() const noexcept { return max_replication_; }

  /// Time to transmit `data` units over one link.
  double comm_time(double data) const noexcept { return data / bandwidth_; }

  /// True when all processors share one speed and one failure rate, in
  /// which case the paper's homogeneous results (Section 5) apply.
  bool is_homogeneous() const noexcept { return homogeneous_; }

  std::span<const Processor> processors() const noexcept {
    return processors_;
  }

 private:
  std::vector<Processor> processors_;
  double bandwidth_;
  double link_failure_rate_;
  unsigned max_replication_;
  bool homogeneous_;
};

}  // namespace prts
