// Graphviz (DOT) export of an interval mapping, reproducing the paper's
// Figure 3 drawing: intervals as a left-to-right chain of records, each
// listing its task range, weight and replica processors, with the
// inter-interval communication sizes on the edges.
#pragma once

#include <string>

#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// DOT digraph of the mapping: one record node per interval
/// ("I_j | tasks f..l | W=... | {P...}") and o_j-labeled edges.
std::string mapping_to_dot(const TaskChain& chain, const Platform& platform,
                           const Mapping& mapping);

}  // namespace prts
