// Interval mapping structure (Section 2.3): the chain is divided into m
// intervals of consecutive tasks; interval j covers tasks f_j..l_j with
// f_1 = 0, f_{j+1} = l_j + 1 and l_m = n-1 (0-based).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/task_chain.hpp"

namespace prts {

/// A contiguous range of task indices, inclusive on both ends.
struct Interval {
  std::size_t first = 0;
  std::size_t last = 0;

  /// Number of tasks in the interval.
  std::size_t size() const noexcept { return last - first + 1; }

  bool contains(std::size_t task) const noexcept {
    return first <= task && task <= last;
  }

  bool operator==(const Interval&) const noexcept = default;
};

/// An ordered division of the chain 0..n-1 into contiguous intervals.
class IntervalPartition {
 public:
  /// Builds from explicit intervals; they must tile 0..n-1 in order
  /// (throws std::invalid_argument otherwise).
  IntervalPartition(std::vector<Interval> intervals, std::size_t task_count);

  /// Builds from the sorted list of last-task indices of each interval;
  /// the final entry must be n-1. E.g. {2, 5, 8} with n=9 gives intervals
  /// [0,2] [3,5] [6,8].
  static IntervalPartition from_boundaries(std::span<const std::size_t> lasts,
                                           std::size_t task_count);

  /// The whole chain as a single interval.
  static IntervalPartition single(std::size_t task_count);

  /// One interval per task.
  static IntervalPartition singletons(std::size_t task_count);

  /// Number of intervals m.
  std::size_t interval_count() const noexcept { return intervals_.size(); }

  /// Number of tasks n.
  std::size_t task_count() const noexcept { return task_count_; }

  /// Interval j (0 <= j < m).
  const Interval& interval(std::size_t j) const noexcept {
    return intervals_[j];
  }

  std::span<const Interval> intervals() const noexcept { return intervals_; }

  /// Index of the interval containing the given task (binary search).
  std::size_t interval_of(std::size_t task) const noexcept;

  /// Weight W_j of interval j on the given chain.
  double work(const TaskChain& chain, std::size_t j) const noexcept {
    return chain.work_sum(intervals_[j].first, intervals_[j].last);
  }

  /// Output size of interval j: o_{l_j}, the output of its last task.
  double out_size(const TaskChain& chain, std::size_t j) const noexcept {
    return chain.out_size(intervals_[j].last);
  }

  /// The last-task index of every interval (inverse of from_boundaries).
  std::vector<std::size_t> boundaries() const;

  bool operator==(const IntervalPartition&) const noexcept = default;

 private:
  std::vector<Interval> intervals_;
  std::size_t task_count_ = 0;
};

}  // namespace prts
