#include "model/task_chain.hpp"

#include <stdexcept>

namespace prts {

TaskChain::TaskChain(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  if (tasks_.empty()) {
    throw std::invalid_argument("TaskChain: chain must contain a task");
  }
  prefix_work_.resize(tasks_.size() + 1, 0.0);
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!(tasks_[i].work > 0.0)) {
      throw std::invalid_argument("TaskChain: task work must be positive");
    }
    if (tasks_[i].out_size < 0.0) {
      throw std::invalid_argument(
          "TaskChain: task output size must be non-negative");
    }
    prefix_work_[i + 1] = prefix_work_[i] + tasks_[i].work;
  }
}

double TaskChain::work_sum(std::size_t first, std::size_t last) const noexcept {
  return prefix_work_[last + 1] - prefix_work_[first];
}

}  // namespace prts
