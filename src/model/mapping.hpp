// A multiprocessor interval mapping with spatial replication
// (Sections 2.3 and 2.5): every interval is assigned to between 1 and K
// processors, and every processor executes at most one interval.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "model/interval.hpp"
#include "model/platform.hpp"

namespace prts {

/// An interval partition plus, for each interval, the set of processors
/// (0-based ids) that replicate it.
class Mapping {
 public:
  /// Builds a mapping; requires one processor set per interval and every
  /// set non-empty (throws std::invalid_argument otherwise). Deeper
  /// platform-dependent checks live in validate().
  Mapping(IntervalPartition partition,
          std::vector<std::vector<std::size_t>> processors_per_interval);

  const IntervalPartition& partition() const noexcept { return partition_; }

  /// Number of intervals m.
  std::size_t interval_count() const noexcept {
    return partition_.interval_count();
  }

  /// Processors replicating interval j, sorted ascending.
  std::span<const std::size_t> processors(std::size_t j) const noexcept {
    return processors_[j];
  }

  /// Total number of processors used by the mapping.
  std::size_t processors_used() const noexcept;

  /// Average number of replicas per interval (the replication level of
  /// Section 1).
  double replication_level() const noexcept;

  /// Checks the mapping against a platform: processor ids in range, each
  /// processor used by at most one interval, and every interval replicated
  /// at most K times. Returns an explanation on failure, nullopt on success.
  std::optional<std::string> validate(const Platform& platform) const;

  bool operator==(const Mapping&) const noexcept = default;

 private:
  IntervalPartition partition_;
  std::vector<std::vector<std::size_t>> processors_;
};

}  // namespace prts
