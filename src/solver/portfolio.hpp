// Portfolio solving: fan a query out to several registered engines
// across the shared ThreadPool, discard members that blow their time
// budget, and keep the best answer under the tri-criteria ordering.
// This is the "race interchangeable engines" pattern of the
// portfolio-of-methods literature: heuristics answer quickly on every
// platform, exact engines answer optimally where they apply, and the
// portfolio returns the best of whatever came back in time.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "solver/registry.hpp"
#include "solver/solver.hpp"

namespace prts::solver {

/// One engine in the portfolio with its wall-clock budget. Engines are
/// cooperative black boxes (they cannot be interrupted); a member whose
/// solve ran longer than its budget has its answer discarded, so budgets
/// shape selection, not execution.
struct PortfolioMember {
  std::shared_ptr<const Solver> solver;
  double time_budget_seconds = std::numeric_limits<double>::infinity();
};

/// Races its members across a thread pool and selects the best in-budget
/// feasible answer (tri-criteria ordering, ties to the earliest member,
/// so selection is deterministic for a fixed member order).
class PortfolioSolver final : public Solver {
 public:
  /// `threads` = 0 sizes the pool to the hardware; members must be
  /// non-null (throws std::invalid_argument otherwise).
  PortfolioSolver(std::string name, std::vector<PortfolioMember> members,
                  std::size_t threads = 0);

  std::string name() const override { return name_; }
  std::string description() const override;

  /// True when any member supports the instance.
  bool supports(const Instance& instance) const override;

  std::optional<Solution> solve(const Instance& instance,
                                const Bounds& bounds) const override;

  /// Prepares every supported member once and races the member
  /// sessions per query over one reused pool — campaign sweeps pay the
  /// expensive per-instance engine setups once, not per sweep point.
  std::unique_ptr<PreparedSolver> prepare(
      const Instance& instance) const override;

  std::size_t member_count() const noexcept { return members_.size(); }

 private:
  std::string name_;
  std::vector<PortfolioMember> members_;
  std::size_t threads_;
};

/// Builds a portfolio from registry names with one shared budget. Throws
/// std::invalid_argument on an unknown name or an empty list.
std::shared_ptr<const Solver> make_portfolio(
    const SolverRegistry& registry, const std::string& name,
    const std::vector<std::string>& member_names,
    double time_budget_seconds = std::numeric_limits<double>::infinity(),
    std::size_t threads = 0);

}  // namespace prts::solver
