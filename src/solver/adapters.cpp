#include "solver/adapters.hpp"

#include <utility>

#include "core/baseline.hpp"
#include "core/exact.hpp"
#include "core/ilp.hpp"
#include "core/local_search.hpp"
#include "core/period_dp.hpp"
#include "core/reliability_dp.hpp"

namespace prts::solver {
namespace {

/// Wraps a mapping + metrics pair into a Solution after a bounds check.
std::optional<Solution> accept_if_within(Mapping mapping,
                                         const MappingMetrics& metrics,
                                         const Bounds& bounds) {
  if (!within_bounds(metrics, bounds)) return std::nullopt;
  return Solution{std::move(mapping), metrics};
}

// ------------------------------------------------------------------ exact

/// Session owning the partition enumeration; bound queries are linear
/// scans over the precomputed records.
class ExactSession final : public PreparedSolver {
 public:
  explicit ExactSession(const Instance& instance)
      : solver_(instance.chain, instance.platform) {}

  std::optional<Solution> solve(const Bounds& bounds) const override {
    auto solution = solver_.solve(bounds.period_bound, bounds.latency_bound);
    if (!solution) return std::nullopt;
    return Solution{std::move(solution->mapping), solution->metrics};
  }

  std::optional<Solution> solve(const Bounds& bounds,
                                const WarmStart& warm) const override {
    auto solution =
        solver_.solve(bounds.period_bound, bounds.latency_bound,
                      warm_floor_cut(warm.reliability_floor_log));
    // A feasible incumbent proves the cut scan cannot come up empty; if
    // it somehow did (a floor above every record, i.e. a caller bug or
    // rounding drift beyond the cut margin), fall back to the unpruned
    // scan rather than change the answer.
    if (!solution && warm.incumbent) return solve(bounds);
    if (!solution) return std::nullopt;
    return Solution{std::move(solution->mapping), solution->metrics};
  }

 private:
  HomogeneousExactSolver solver_;
};

class ExactAdapter final : public Solver {
 public:
  std::string name() const override { return "exact"; }
  std::string description() const override {
    return "exact partition enumeration + Algo-Alloc (homogeneous only)";
  }
  bool supports(const Instance& instance) const override {
    return instance.platform.is_homogeneous();
  }
  bool bounds_monotone(const Instance& instance) const override {
    // First-max over the fixed partition-record list.
    return supports(instance);
  }
  std::optional<Solution> solve(const Instance& instance,
                                const Bounds& bounds) const override {
    if (!supports(instance)) return std::nullopt;
    return ExactSession(instance).solve(bounds);
  }
  std::optional<Solution> solve(const Instance& instance,
                                const Bounds& bounds,
                                const WarmStart& warm) const override {
    if (!supports(instance)) return std::nullopt;
    return ExactSession(instance).solve(bounds, warm);
  }
  std::unique_ptr<PreparedSolver> prepare(
      const Instance& instance) const override {
    if (!supports(instance)) return Solver::prepare(instance);
    return std::make_unique<ExactSession>(instance);
  }
};

// -------------------------------------------------------------------- ilp

class IlpAdapter final : public Solver {
 public:
  std::string name() const override { return "ilp"; }
  std::string description() const override {
    return "Section 5.4 ILP via branch-and-bound (homogeneous only)";
  }
  bool supports(const Instance& instance) const override {
    return instance.platform.is_homogeneous();
  }
  std::optional<Solution> solve(const Instance& instance,
                                const Bounds& bounds) const override {
    if (!supports(instance)) return std::nullopt;
    const IlpFormulation formulation(instance.chain, instance.platform,
                                     bounds.period_bound,
                                     bounds.latency_bound);
    auto solution = solve_ilp(formulation);
    if (!solution) return std::nullopt;
    const MappingMetrics metrics =
        evaluate(instance.chain, instance.platform, solution->mapping);
    return Solution{std::move(solution->mapping), metrics};
  }
  std::optional<Solution> solve(const Instance& instance,
                                const Bounds& bounds,
                                const WarmStart& warm) const override {
    if (!supports(instance)) return std::nullopt;
    const IlpFormulation formulation(instance.chain, instance.platform,
                                     bounds.period_bound,
                                     bounds.latency_bound);
    // The B&B objective is the Eq. (9) log reliability — the same scale
    // the floor certificate is expressed in.
    auto solution =
        solve_ilp(formulation, warm_floor_cut(warm.reliability_floor_log));
    // A feasible incumbent proves the cut search cannot come up empty;
    // fall back to the uncut search rather than change the answer.
    if (!solution && warm.incumbent) return solve(instance, bounds);
    if (!solution) return std::nullopt;
    const MappingMetrics metrics =
        evaluate(instance.chain, instance.platform, solution->mapping);
    return Solution{std::move(solution->mapping), metrics};
  }
};

// --------------------------------------------------------------------- dp

class DpAdapter final : public Solver {
 public:
  std::string name() const override { return "dp"; }
  std::string description() const override {
    return "Algorithm 1 reliability DP, bounds checked on the optimum "
           "(homogeneous only)";
  }
  bool supports(const Instance& instance) const override {
    return instance.platform.is_homogeneous();
  }
  bool bounds_monotone(const Instance& instance) const override {
    // The optimum is computed bounds-free and only *checked* against
    // the bounds — a one-candidate fixed set.
    return supports(instance);
  }
  std::optional<Solution> solve(const Instance& instance,
                                const Bounds& bounds) const override {
    if (!supports(instance)) return std::nullopt;
    auto solution = optimize_reliability(instance.chain, instance.platform);
    const MappingMetrics metrics =
        evaluate(instance.chain, instance.platform, solution.mapping);
    return accept_if_within(std::move(solution.mapping), metrics, bounds);
  }
};

class PeriodDpAdapter final : public Solver {
 public:
  std::string name() const override { return "dp-period"; }
  std::string description() const override {
    return "Algorithm 2 reliability-under-period DP, latency checked on "
           "the optimum (homogeneous only)";
  }
  bool supports(const Instance& instance) const override {
    return instance.platform.is_homogeneous();
  }
  std::optional<Solution> solve(const Instance& instance,
                                const Bounds& bounds) const override {
    if (!supports(instance)) return std::nullopt;
    auto solution = optimize_reliability_period(
        instance.chain, instance.platform, bounds.period_bound);
    if (!solution) return std::nullopt;
    const MappingMetrics metrics =
        evaluate(instance.chain, instance.platform, solution->mapping);
    return accept_if_within(std::move(solution->mapping), metrics, bounds);
  }
};

// -------------------------------------------------------------- heuristics

/// Homogeneous session: the allocation does not depend on the bounds, so
/// the candidate list (one per interval count) is computed once and each
/// query filters it — the same caching src/exp/runner.cpp used to
/// hand-roll per experiment.
class HomHeuristicSession final : public PreparedSolver {
 public:
  HomHeuristicSession(const Instance& instance, HeuristicKind kind)
      : candidates_(heuristic_candidates(instance.chain, instance.platform,
                                         kind)) {}

  std::optional<Solution> solve(const Bounds& bounds) const override {
    const HeuristicSolution* best = best_heuristic_candidate(
        candidates_, bounds.period_bound, bounds.latency_bound);
    if (best == nullptr) return std::nullopt;
    return Solution{best->mapping, best->metrics};
  }

  std::optional<Solution> solve(const Bounds& bounds,
                                const WarmStart& warm) const override {
    const HeuristicSolution* best = best_heuristic_candidate(
        candidates_, bounds.period_bound, bounds.latency_bound,
        /*use_expected_metrics=*/false,
        warm_floor_cut(warm.reliability_floor_log));
    // A feasible incumbent proves the cut scan cannot come up empty;
    // fall back to the unpruned scan rather than change the answer.
    if (best == nullptr && warm.incumbent) return solve(bounds);
    if (best == nullptr) return std::nullopt;
    return Solution{best->mapping, best->metrics};
  }

 private:
  std::vector<HeuristicSolution> candidates_;
};

class HeuristicAdapter final : public Solver {
 public:
  HeuristicAdapter(HeuristicKind kind, bool local_search)
      : kind_(kind), local_search_(local_search) {}

  std::string name() const override {
    std::string base = kind_ == HeuristicKind::kHeurL ? "heur-l" : "heur-p";
    return local_search_ ? base + "+ls" : base;
  }
  std::string description() const override {
    std::string base = kind_ == HeuristicKind::kHeurL
                           ? "Heur-L: cut at the cheapest communications"
                           : "Heur-P: balance interval loads (min-period "
                             "DP)";
    return local_search_ ? base + ", polished by local search" : base;
  }

  bool bounds_monotone(const Instance& instance) const override {
    // The cached-session path (the one whose answers the service
    // caches) is a first-max filter over the bounds-free candidate
    // list — monotone. With local-search polish the hill-climb
    // trajectory depends on which moves the bounds permit, and on
    // heterogeneous platforms the allocator itself is bounds-driven:
    // neither answer transfers across bounds.
    return !local_search_ && instance.platform.is_homogeneous();
  }

  std::optional<Solution> solve(const Instance& instance,
                                const Bounds& bounds) const override {
    HeuristicOptions options;
    options.period_bound = bounds.period_bound;
    options.latency_bound = bounds.latency_bound;
    auto heuristic =
        run_heuristic(instance.chain, instance.platform, kind_, options);
    if (!heuristic) return std::nullopt;
    if (!local_search_) {
      return Solution{std::move(heuristic->mapping), heuristic->metrics};
    }
    LocalSearchOptions search;
    search.period_bound = bounds.period_bound;
    search.latency_bound = bounds.latency_bound;
    auto improved = improve_mapping(instance.chain, instance.platform,
                                    heuristic->mapping, search);
    if (!improved) {
      return Solution{std::move(heuristic->mapping), heuristic->metrics};
    }
    return Solution{std::move(improved->mapping), improved->metrics};
  }

  std::unique_ptr<PreparedSolver> prepare(
      const Instance& instance) const override {
    // The candidate cache is only valid where allocation ignores the
    // bounds (homogeneous platforms) and no local-search polish runs.
    if (!local_search_ && instance.platform.is_homogeneous()) {
      return std::make_unique<HomHeuristicSession>(instance, kind_);
    }
    return Solver::prepare(instance);
  }

 private:
  HeuristicKind kind_;
  bool local_search_;
};

// --------------------------------------------------------------- baseline

class BaselineAdapter final : public Solver {
 public:
  std::string name() const override { return "baseline"; }
  std::string description() const override {
    return "one task per interval with Algo-Alloc replication (needs "
           "n <= p)";
  }
  std::optional<Solution> solve(const Instance& instance,
                                const Bounds& bounds) const override {
    AllocOptions options;
    options.period_bound = bounds.period_bound;
    auto solution =
        one_to_one_mapping(instance.chain, instance.platform, options);
    if (!solution) return std::nullopt;
    return accept_if_within(std::move(solution->mapping), solution->metrics,
                            bounds);
  }
};

}  // namespace

std::shared_ptr<const Solver> make_exact_solver() {
  return std::make_shared<ExactAdapter>();
}

std::shared_ptr<const Solver> make_ilp_solver() {
  return std::make_shared<IlpAdapter>();
}

std::shared_ptr<const Solver> make_dp_solver() {
  return std::make_shared<DpAdapter>();
}

std::shared_ptr<const Solver> make_period_dp_solver() {
  return std::make_shared<PeriodDpAdapter>();
}

std::shared_ptr<const Solver> make_heuristic_solver(HeuristicKind kind,
                                                    bool local_search) {
  return std::make_shared<HeuristicAdapter>(kind, local_search);
}

std::shared_ptr<const Solver> make_baseline_solver() {
  return std::make_shared<BaselineAdapter>();
}

void register_builtin_solvers(SolverRegistry& registry) {
  registry.add(make_exact_solver());
  registry.add(make_ilp_solver());
  registry.add(make_dp_solver());
  registry.add(make_period_dp_solver());
  registry.add(make_heuristic_solver(HeuristicKind::kHeurL, false));
  registry.add(make_heuristic_solver(HeuristicKind::kHeurP, false));
  registry.add(make_heuristic_solver(HeuristicKind::kHeurL, true));
  registry.add(make_heuristic_solver(HeuristicKind::kHeurP, true));
  registry.add(make_baseline_solver());
}

}  // namespace prts::solver
