#include "solver/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"

namespace prts::solver {
namespace {

/// Best in-budget feasible answer, ties to the earliest slot (so
/// selection is deterministic for a fixed member order).
std::optional<Solution> select_best(
    std::vector<std::optional<Solution>>& answers, const Bounds& bounds) {
  std::optional<Solution> best;
  for (std::optional<Solution>& answer : answers) {
    if (!answer || !within_bounds(answer->metrics, bounds)) continue;
    if (!best || tri_criteria_better(answer->metrics, best->metrics)) {
      best = std::move(answer);
    }
  }
  return best;
}

/// One prepared member session per supported engine, raced over a pool
/// that lives as long as the session (no per-query pool churn inside
/// campaign workers).
class PortfolioSession final : public PreparedSolver {
 public:
  PortfolioSession(const std::vector<PortfolioMember>& members,
                   const Instance& instance, std::size_t threads) {
    for (const PortfolioMember& member : members) {
      if (!member.solver->supports(instance)) continue;
      entries_.push_back(Entry{member.solver->prepare(instance),
                               member.time_budget_seconds});
    }
    if (!entries_.empty()) {
      // Never more workers than members: portfolios run nested inside
      // campaign worker threads, where a hardware-sized pool per
      // session would explode the thread count.
      const std::size_t workers =
          threads == 0 ? entries_.size()
                       : std::min(threads, entries_.size());
      pool_ = std::make_unique<ThreadPool>(workers);
    }
  }

  std::optional<Solution> solve(const Bounds& bounds) const override {
    if (entries_.empty()) return std::nullopt;
    std::vector<std::optional<Solution>> answers(entries_.size());
    pool_->parallel_for(entries_.size(), [&](std::size_t i) {
      const Entry& entry = entries_[i];
      const auto start = std::chrono::steady_clock::now();
      auto answer = entry.session->solve(bounds);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      // Engines are uninterruptible black boxes: the budget gates which
      // answers count, not how long the race takes.
      if (elapsed > entry.time_budget_seconds) return;
      answers[i] = std::move(answer);
    });
    return select_best(answers, bounds);
  }

 private:
  struct Entry {
    std::unique_ptr<PreparedSolver> session;
    double time_budget_seconds;
  };

  std::vector<Entry> entries_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace

PortfolioSolver::PortfolioSolver(std::string name,
                                 std::vector<PortfolioMember> members,
                                 std::size_t threads)
    : name_(std::move(name)),
      members_(std::move(members)),
      threads_(threads) {
  for (const PortfolioMember& member : members_) {
    if (!member.solver) {
      throw std::invalid_argument("PortfolioSolver: null member solver");
    }
  }
}

std::string PortfolioSolver::description() const {
  std::string text = "portfolio of";
  for (const PortfolioMember& member : members_) {
    text += " " + member.solver->name();
  }
  return text;
}

bool PortfolioSolver::supports(const Instance& instance) const {
  for (const PortfolioMember& member : members_) {
    if (member.solver->supports(instance)) return true;
  }
  return false;
}

std::optional<Solution> PortfolioSolver::solve(const Instance& instance,
                                               const Bounds& bounds) const {
  return PortfolioSession(members_, instance, threads_).solve(bounds);
}

std::unique_ptr<PreparedSolver> PortfolioSolver::prepare(
    const Instance& instance) const {
  return std::make_unique<PortfolioSession>(members_, instance, threads_);
}

std::shared_ptr<const Solver> make_portfolio(
    const SolverRegistry& registry, const std::string& name,
    const std::vector<std::string>& member_names, double time_budget_seconds,
    std::size_t threads) {
  if (member_names.empty()) {
    throw std::invalid_argument("make_portfolio: empty member list");
  }
  std::vector<PortfolioMember> members;
  members.reserve(member_names.size());
  for (const std::string& member_name : member_names) {
    auto solver = registry.find(member_name);
    if (!solver) {
      throw std::invalid_argument("make_portfolio: unknown solver '" +
                                  member_name + "'");
    }
    members.push_back(PortfolioMember{std::move(solver),
                                      time_budget_seconds});
  }
  return std::make_shared<PortfolioSolver>(name, std::move(members),
                                           threads);
}

}  // namespace prts::solver
