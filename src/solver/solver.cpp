#include "solver/solver.hpp"

#include <chrono>

namespace prts::solver {
namespace {

/// Default session: no per-instance state, every query is a fresh solve.
class ForwardingSession final : public PreparedSolver {
 public:
  ForwardingSession(const Solver& solver, const Instance& instance)
      : solver_(solver), instance_(instance) {}

  std::optional<Solution> solve(const Bounds& bounds) const override {
    return solver_.solve(instance_, bounds);
  }

  std::optional<Solution> solve(const Bounds& bounds,
                                const WarmStart& warm) const override {
    return solver_.solve(instance_, bounds, warm);
  }

 private:
  const Solver& solver_;
  const Instance& instance_;
};

}  // namespace

double warm_floor_cut(double reliability_floor_log) noexcept {
  if (!std::isfinite(reliability_floor_log)) {
    return -std::numeric_limits<double>::infinity();
  }
  // Relative safety margin: the floor was measured by evaluate() while
  // engines accumulate their objectives in other summation orders; a
  // few ulps of disagreement must never prune the true optimum. 1e-9
  // relative dwarfs any realistic rounding drift on these ~15-term
  // log sums while still cutting everything meaningfully worse.
  return reliability_floor_log -
         1e-9 * (1.0 + std::abs(reliability_floor_log));
}

bool within_bounds(const MappingMetrics& metrics,
                   const Bounds& bounds) noexcept {
  return metrics.worst_period <= bounds.period_bound &&
         metrics.worst_latency <= bounds.latency_bound;
}

bool tri_criteria_better(const MappingMetrics& a,
                         const MappingMetrics& b) noexcept {
  if (a.reliability.log() != b.reliability.log()) {
    return a.reliability.log() > b.reliability.log();
  }
  if (a.worst_period != b.worst_period) {
    return a.worst_period < b.worst_period;
  }
  if (a.worst_latency != b.worst_latency) {
    return a.worst_latency < b.worst_latency;
  }
  return a.processors_used < b.processors_used;
}

std::optional<Solution> timed_solve(const PreparedSolver& session,
                                    const Bounds& bounds,
                                    const WarmStart* warm, double& seconds) {
  const auto start = std::chrono::steady_clock::now();
  std::optional<Solution> solution = warm && !warm->empty()
                                         ? session.solve(bounds, *warm)
                                         : session.solve(bounds);
  seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
  return solution;
}

std::unique_ptr<PreparedSolver> Solver::prepare(
    const Instance& instance) const {
  return std::make_unique<ForwardingSession>(*this, instance);
}

}  // namespace prts::solver
