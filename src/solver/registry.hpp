// String-keyed solver registry: lookup by stable name, enumeration for
// the CLI and the campaign engine, duplicate-name rejection so two
// engines can never shadow each other silently.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "solver/solver.hpp"

namespace prts::solver {

/// A name -> solver table. Solvers are stateless and shared by const
/// pointer; a registry can be copied freely (the CLI builds one from the
/// builtin table and extends it with portfolios).
class SolverRegistry {
 public:
  /// Registers a solver under its own name(). Throws
  /// std::invalid_argument on a duplicate name or a null solver.
  void add(std::shared_ptr<const Solver> solver);

  /// The solver registered under `name`, or nullptr.
  std::shared_ptr<const Solver> find(const std::string& name) const;

  /// True when `name` is registered.
  bool contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const noexcept { return solvers_.size(); }

  /// The registry of every built-in engine adapter (see
  /// solver/adapters.hpp) plus the default "portfolio" racer. Built once,
  /// shared, immutable.
  static const SolverRegistry& builtin();

 private:
  std::map<std::string, std::shared_ptr<const Solver>> solvers_;
};

}  // namespace prts::solver
