#include "solver/registry.hpp"

#include <stdexcept>
#include <utility>

#include "core/heuristics.hpp"
#include "solver/adapters.hpp"
#include "solver/portfolio.hpp"

namespace prts::solver {

void SolverRegistry::add(std::shared_ptr<const Solver> solver) {
  if (!solver) {
    throw std::invalid_argument("SolverRegistry::add: null solver");
  }
  const std::string name = solver->name();
  if (name.empty()) {
    throw std::invalid_argument("SolverRegistry::add: empty solver name");
  }
  const auto [it, inserted] = solvers_.emplace(name, std::move(solver));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("SolverRegistry::add: duplicate solver '" +
                                name + "'");
  }
}

std::shared_ptr<const Solver> SolverRegistry::find(
    const std::string& name) const {
  const auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : it->second;
}

bool SolverRegistry::contains(const std::string& name) const {
  return solvers_.count(name) > 0;
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(solvers_.size());
  for (const auto& [name, solver] : solvers_) result.push_back(name);
  return result;
}

const SolverRegistry& SolverRegistry::builtin() {
  static const SolverRegistry registry = [] {
    SolverRegistry built;
    register_builtin_solvers(built);
    // The default racer: exact answers where it applies, the heuristics
    // cover heterogeneous platforms, the baseline backstops tiny chains.
    built.add(std::make_shared<PortfolioSolver>(
        "portfolio",
        std::vector<PortfolioMember>{
            PortfolioMember{built.find("exact")},
            PortfolioMember{built.find("heur-l+ls")},
            PortfolioMember{built.find("heur-p+ls")},
            PortfolioMember{built.find("baseline")},
        }));
    return built;
  }();
  return registry;
}

}  // namespace prts::solver
