// Adapters wrapping every existing optimization engine behind the
// uniform Solver interface:
//
//   exact       HomogeneousExactSolver partition enumeration (Section 5.4
//               role; homogeneous only)
//   ilp         the Section 5.4 ILP via in-house branch-and-bound
//               (homogeneous only)
//   dp          Algorithm 1 mono-criterion reliability DP (homogeneous
//               only; bounds checked on the result)
//   dp-period   Algorithm 2 reliability-under-period DP (homogeneous
//               only; latency checked on the result)
//   heur-l      Section 7 Heur-L (any platform)
//   heur-p      Section 7 Heur-P (any platform)
//   heur-l+ls   Heur-L polished by hill-climbing local search
//   heur-p+ls   Heur-P polished by hill-climbing local search
//   baseline    one task per interval with Algo-Alloc replication
//
// All adapters return nullopt (never throw) on unsupported instances or
// infeasible bounds.
//
// Warm starts (solver::WarmStart, answer-preserving by contract): the
// exact adapter prunes partition records below the floor, the ILP
// adapter seeds its branch-and-bound pruning bound, and the homogeneous
// heuristic sessions skip candidates below the floor. The local-search
// variants deliberately ignore hints — a hill climb seeded elsewhere
// converges to a different local optimum, which the contract forbids —
// as do the bounds-driven DP/baseline engines. bounds_monotone() is
// true for exact, dp, and the plain heuristics on homogeneous
// platforms (first-max selections over fixed candidate sets).
#pragma once

#include <memory>
#include <vector>

#include "core/heuristics.hpp"
#include "solver/registry.hpp"
#include "solver/solver.hpp"

namespace prts::solver {

/// Factory for one built-in adapter; the full set is listed above.
std::shared_ptr<const Solver> make_exact_solver();
std::shared_ptr<const Solver> make_ilp_solver();
std::shared_ptr<const Solver> make_dp_solver();
std::shared_ptr<const Solver> make_period_dp_solver();
std::shared_ptr<const Solver> make_heuristic_solver(HeuristicKind kind,
                                                    bool local_search);
std::shared_ptr<const Solver> make_baseline_solver();

/// Registers every adapter above into `registry` (throws on collisions
/// with already-registered names).
void register_builtin_solvers(SolverRegistry& registry);

}  // namespace prts::solver
