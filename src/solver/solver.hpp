// The uniform solver abstraction: every optimization engine in src/core/
// (exact enumeration, ILP branch-and-bound, the Section 5 dynamic
// programs, both Section 7 heuristics, local search, the one-to-one
// baseline) is exposed behind one interface, in the spirit of the
// black-box-solver framing of Wang et al. and the portfolio-of-methods
// view of Benoit et al.: a solver takes an instance plus (period,
// latency) bounds and returns the best mapping it can find, or nothing.
//
// Engines whose per-instance setup dominates per-query work (the
// homogeneous exact solver enumerates all 2^(n-1) partitions once and
// then answers any bound query by linear scan) additionally override
// prepare(), which returns a per-instance session answering many bound
// queries cheaply — the campaign engine (src/scenario/) drives every
// sweep through prepare() so the old hand-rolled per-method caching in
// src/exp/runner.cpp is subsumed rather than lost.
#pragma once

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "eval/evaluation.hpp"
#include "model/mapping.hpp"
#include "model/serialize.hpp"

namespace prts::solver {

/// The tri-criteria query bounds (Section 2.6): maximize reliability
/// subject to worst-case period and latency caps. Infinity relaxes a
/// bound.
struct Bounds {
  double period_bound = std::numeric_limits<double>::infinity();
  double latency_bound = std::numeric_limits<double>::infinity();
};

/// A solver answer: the mapping and its full evaluation.
struct Solution {
  Mapping mapping;
  MappingMetrics metrics;
};

/// An optional hint passed alongside a bound query: a known-feasible
/// incumbent under the query's bounds and a proven-achievable
/// log-reliability floor (the tri-criteria objective is monotone in the
/// bounds, so a solution cached for *tighter* bounds certifies both).
///
/// Contract: a warm start is an accelerator, never an answer changer —
/// an engine may use it only to skip work that provably cannot affect
/// its result, so solve(bounds, warm) is bit-identical to solve(bounds)
/// for every engine. Engines that cannot prune safely ignore the hint
/// (the default), which satisfies the contract trivially. Exact
/// enumeration skips partition records strictly below the floor, the
/// ILP branch-and-bound seeds its pruning bound with it, and the
/// homogeneous heuristic sessions skip candidates that cannot beat it.
struct WarmStart {
  /// A solution feasible under the query's bounds, in the same
  /// processor labels as the instance being solved (the service passes
  /// canonical-space incumbents to canonical-space solves).
  std::optional<Solution> incumbent;

  /// log(reliability) proven achievable under the query's bounds
  /// (usually incumbent->metrics.reliability.log(); -inf when unknown).
  double reliability_floor_log = -std::numeric_limits<double>::infinity();

  bool empty() const noexcept {
    return !incumbent.has_value() && !std::isfinite(reliability_floor_log);
  }
};

/// The pruning cut engines derive from a floor: values strictly below
/// `floor - margin` cannot be (or tie with) the answer. The margin
/// absorbs the last-ulp disagreement between an engine's internal
/// objective accumulation and the evaluate() metrics a cached floor was
/// taken from — pruning too little is only slower, pruning the optimum
/// would change the answer.
double warm_floor_cut(double reliability_floor_log) noexcept;

/// True when the metrics satisfy both worst-case bounds.
bool within_bounds(const MappingMetrics& metrics,
                   const Bounds& bounds) noexcept;

/// The tri-criteria preference order used for best-of selection across
/// solvers: higher reliability first, then lower worst-case period, then
/// lower worst-case latency, then fewer processors used. Returns true
/// when `a` is strictly preferred to `b`.
bool tri_criteria_better(const MappingMetrics& a,
                         const MappingMetrics& b) noexcept;

/// A per-instance solving session (see Solver::prepare). Sessions keep
/// references into the instance they were prepared from; the instance
/// and the parent solver must outlive the session.
class PreparedSolver {
 public:
  virtual ~PreparedSolver() = default;

  /// Best solution under the bounds, or nullopt when the engine finds
  /// none.
  virtual std::optional<Solution> solve(const Bounds& bounds) const = 0;

  /// solve() with a warm-start hint. Bit-identical to solve(bounds) by
  /// the WarmStart contract; the default ignores the hint.
  virtual std::optional<Solution> solve(const Bounds& bounds,
                                        const WarmStart& warm) const {
    (void)warm;
    return solve(bounds);
  }
};

/// Runs `session.solve(bounds)` — with the hint when `warm` is
/// non-null and non-empty — and reports the wall-clock solve time
/// through `seconds`. One shared timing point, so the cache's per-entry
/// cost accounting and the telemetry histograms can never disagree
/// about what a solve cost.
std::optional<Solution> timed_solve(const PreparedSolver& session,
                                    const Bounds& bounds,
                                    const WarmStart* warm, double& seconds);

/// The uniform engine interface. Implementations are stateless and
/// thread-safe: concurrent solve()/prepare() calls on one solver object
/// are safe.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Stable registry key ("exact", "heur-l", ...).
  virtual std::string name() const = 0;

  /// One human-readable line for `prts_cli solvers`.
  virtual std::string description() const { return ""; }

  /// True when the engine can handle the instance (e.g. the homogeneous
  /// exact methods reject heterogeneous platforms). solve() on an
  /// unsupported instance returns nullopt instead of throwing.
  virtual bool supports(const Instance& instance) const {
    (void)instance;
    return true;
  }

  /// Best solution under the bounds, or nullopt (infeasible bounds or
  /// unsupported instance).
  virtual std::optional<Solution> solve(const Instance& instance,
                                        const Bounds& bounds) const = 0;

  /// solve() with a warm-start hint (see WarmStart: answer-preserving;
  /// ignored by default).
  virtual std::optional<Solution> solve(const Instance& instance,
                                        const Bounds& bounds,
                                        const WarmStart& warm) const {
    (void)warm;
    return solve(instance, bounds);
  }

  /// True when the engine's answer for `instance` is the argmax of a
  /// fixed preference order over a *fixed, bounds-filtered* candidate
  /// set (first winner kept on ties). For such engines the answer is
  /// bounds-monotone: the answer for looser bounds, when it satisfies
  /// tighter bounds, *is* the answer for the tighter bounds (the
  /// feasible set only shrinks, and a first-wins argmax of a superset
  /// that lies in the subset is the argmax of the subset) — and
  /// infeasibility at looser bounds implies infeasibility at tighter
  /// ones. The solve service uses this to answer near-miss cache
  /// lookups without invoking the solver at all. Engines whose search
  /// trajectory depends on the bounds (bounded DPs with tie-dependent
  /// reconstructions, bounds-driven heuristics, local search) must
  /// return false.
  virtual bool bounds_monotone(const Instance& instance) const {
    (void)instance;
    return false;
  }

  /// Per-instance session for answering many bound queries (sweeps).
  /// The default simply forwards to solve(); engines with expensive
  /// instance setup override it. The instance must outlive the session.
  virtual std::unique_ptr<PreparedSolver> prepare(
      const Instance& instance) const;
};

}  // namespace prts::solver
