// The uniform solver abstraction: every optimization engine in src/core/
// (exact enumeration, ILP branch-and-bound, the Section 5 dynamic
// programs, both Section 7 heuristics, local search, the one-to-one
// baseline) is exposed behind one interface, in the spirit of the
// black-box-solver framing of Wang et al. and the portfolio-of-methods
// view of Benoit et al.: a solver takes an instance plus (period,
// latency) bounds and returns the best mapping it can find, or nothing.
//
// Engines whose per-instance setup dominates per-query work (the
// homogeneous exact solver enumerates all 2^(n-1) partitions once and
// then answers any bound query by linear scan) additionally override
// prepare(), which returns a per-instance session answering many bound
// queries cheaply — the campaign engine (src/scenario/) drives every
// sweep through prepare() so the old hand-rolled per-method caching in
// src/exp/runner.cpp is subsumed rather than lost.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "eval/evaluation.hpp"
#include "model/mapping.hpp"
#include "model/serialize.hpp"

namespace prts::solver {

/// The tri-criteria query bounds (Section 2.6): maximize reliability
/// subject to worst-case period and latency caps. Infinity relaxes a
/// bound.
struct Bounds {
  double period_bound = std::numeric_limits<double>::infinity();
  double latency_bound = std::numeric_limits<double>::infinity();
};

/// A solver answer: the mapping and its full evaluation.
struct Solution {
  Mapping mapping;
  MappingMetrics metrics;
};

/// True when the metrics satisfy both worst-case bounds.
bool within_bounds(const MappingMetrics& metrics,
                   const Bounds& bounds) noexcept;

/// The tri-criteria preference order used for best-of selection across
/// solvers: higher reliability first, then lower worst-case period, then
/// lower worst-case latency, then fewer processors used. Returns true
/// when `a` is strictly preferred to `b`.
bool tri_criteria_better(const MappingMetrics& a,
                         const MappingMetrics& b) noexcept;

/// A per-instance solving session (see Solver::prepare). Sessions keep
/// references into the instance they were prepared from; the instance
/// and the parent solver must outlive the session.
class PreparedSolver {
 public:
  virtual ~PreparedSolver() = default;

  /// Best solution under the bounds, or nullopt when the engine finds
  /// none.
  virtual std::optional<Solution> solve(const Bounds& bounds) const = 0;
};

/// The uniform engine interface. Implementations are stateless and
/// thread-safe: concurrent solve()/prepare() calls on one solver object
/// are safe.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Stable registry key ("exact", "heur-l", ...).
  virtual std::string name() const = 0;

  /// One human-readable line for `prts_cli solvers`.
  virtual std::string description() const { return ""; }

  /// True when the engine can handle the instance (e.g. the homogeneous
  /// exact methods reject heterogeneous platforms). solve() on an
  /// unsupported instance returns nullopt instead of throwing.
  virtual bool supports(const Instance& instance) const {
    (void)instance;
    return true;
  }

  /// Best solution under the bounds, or nullopt (infeasible bounds or
  /// unsupported instance).
  virtual std::optional<Solution> solve(const Instance& instance,
                                        const Bounds& bounds) const = 0;

  /// Per-instance session for answering many bound queries (sweeps).
  /// The default simply forwards to solve(); engines with expensive
  /// instance setup override it. The instance must outlive the session.
  virtual std::unique_ptr<PreparedSolver> prepare(
      const Instance& instance) const;
};

}  // namespace prts::solver
