#include "scenario/spec.hpp"

#include <cerrno>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace prts::scenario {
namespace {

/// Reads the next content line (skipping blanks and '#' comments);
/// false at end of stream. Mirrors model/serialize.cpp.
bool next_line(std::istream& in, std::string& line, std::size_t& lineno) {
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    return true;
  }
  return false;
}

CampaignParseResult fail(std::size_t lineno, const std::string& what) {
  CampaignParseResult result;
  result.error = "line " + std::to_string(lineno) + ": " + what;
  return result;
}

/// Extracts one unsigned integer token strictly: digits only and no
/// overflow of the destination type. istream's own num_get silently
/// wraps "-5" to 2^64-5, which would turn a typo into an astronomically
/// sized campaign instead of a parse error.
template <typename T>
bool read_unsigned(std::istream& in, T& value) {
  std::string token;
  if (!(in >> token)) return false;
  if (token.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) return false;
  if (parsed > std::numeric_limits<T>::max()) return false;
  value = static_cast<T>(parsed);
  return true;
}

/// Extracts one double token; unlike istream's num_get this accepts
/// "inf"/"-inf"/"nan" (strtod semantics), which write_campaign emits for
/// relaxed bounds.
bool read_double(std::istream& in, double& value) {
  std::string token;
  if (!(in >> token)) return false;
  char* end = nullptr;
  value = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

std::string trim(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

std::optional<std::string> check_spec(const CampaignSpec& spec) {
  if (spec.instances == 0) return "instances must be >= 1";
  if (spec.repetitions == 0) return "repetitions must be >= 1";
  // A job materializes per-solver result rows up front; cap the grid so
  // an absurd (but syntactically valid) spec fails here instead of in
  // the allocator.
  constexpr std::size_t kMaxJobs = 100'000'000;
  if (spec.instances > kMaxJobs / spec.repetitions) {
    return "instances x repetitions exceeds " + std::to_string(kMaxJobs) +
           " jobs";
  }
  if (spec.chain.task_count == 0) return "chain needs >= 1 task";
  if (spec.chain.work_lo < 1 || spec.chain.work_lo > spec.chain.work_hi) {
    return "chain work range needs 1 <= lo <= hi";
  }
  if (spec.chain.out_lo < 0 || spec.chain.out_lo > spec.chain.out_hi) {
    return "chain out range needs 0 <= lo <= hi";
  }
  const PlatformSpec& platform = spec.platform;
  if (platform.processors == 0) return "platform needs >= 1 processor";
  if (platform.kind == PlatformKind::kHom && !(platform.speed > 0.0)) {
    return "platform speed must be > 0";
  }
  if (platform.kind == PlatformKind::kHet &&
      (platform.speed_lo < 1 || platform.speed_lo > platform.speed_hi)) {
    return "platform speed range needs 1 <= lo <= hi";
  }
  if (platform.processor_failure_rate < 0.0 ||
      platform.link_failure_rate < 0.0) {
    return "failure rates must be >= 0";
  }
  if (!(platform.bandwidth > 0.0)) return "bandwidth must be > 0";
  if (platform.max_replication < 1) return "max replication must be >= 1";
  if (!(spec.sweep.step > 0.0)) return "sweep step must be > 0";
  if (spec.sweep.lo > spec.sweep.hi) return "sweep needs lo <= hi";
  if (spec.sweep.kind == SweepKind::kCoupled && !(spec.sweep.factor > 0.0)) {
    return "sweep factor must be > 0";
  }
  if (spec.solvers.empty()) return "at least one 'solver <name>' line";
  return std::nullopt;
}

}  // namespace

std::vector<double> sweep_x(const SweepSpec& sweep) {
  return exp::sweep_range(sweep.lo, sweep.hi, sweep.step);
}

std::vector<exp::SweepPoint> sweep_points(const SweepSpec& sweep) {
  std::vector<exp::SweepPoint> points;
  for (double x : sweep_x(sweep)) {
    switch (sweep.kind) {
      case SweepKind::kPeriod:
        points.push_back(exp::SweepPoint{x, sweep.fixed});
        break;
      case SweepKind::kLatency:
        points.push_back(exp::SweepPoint{sweep.fixed, x});
        break;
      case SweepKind::kCoupled:
        points.push_back(exp::SweepPoint{x, sweep.factor * x});
        break;
    }
  }
  return points;
}

std::string sweep_x_label(const SweepSpec& sweep) {
  switch (sweep.kind) {
    case SweepKind::kLatency:
      return "latency bound";
    case SweepKind::kCoupled:
    case SweepKind::kPeriod:
      return "period bound";
  }
  return "x";
}

void write_campaign(std::ostream& out, const CampaignSpec& spec) {
  // precision 17 round-trips every double through text exactly.
  std::ostringstream body;
  body << std::setprecision(17);
  body << "prts-campaign v1\n";
  body << "name " << spec.name << "\n";
  body << "instances " << spec.instances << "\n";
  body << "repetitions " << spec.repetitions << "\n";
  body << "seed " << spec.seed << "\n";
  body << "chain " << spec.chain.task_count << " " << spec.chain.work_lo
       << " " << spec.chain.work_hi << " " << spec.chain.out_lo << " "
       << spec.chain.out_hi << "\n";
  const PlatformSpec& platform = spec.platform;
  body << "platform ";
  if (platform.kind == PlatformKind::kHom) {
    body << "hom " << platform.processors << " " << platform.speed;
  } else {
    body << "het " << platform.processors << " " << platform.speed_lo << " "
         << platform.speed_hi;
  }
  body << " " << platform.processor_failure_rate << " "
       << platform.link_failure_rate << " " << platform.bandwidth << " "
       << platform.max_replication << "\n";
  const SweepSpec& sweep = spec.sweep;
  body << "sweep ";
  switch (sweep.kind) {
    case SweepKind::kPeriod:
      body << "period " << sweep.lo << " " << sweep.hi << " " << sweep.step
           << " latency " << sweep.fixed;
      break;
    case SweepKind::kLatency:
      body << "latency " << sweep.lo << " " << sweep.hi << " " << sweep.step
           << " period " << sweep.fixed;
      break;
    case SweepKind::kCoupled:
      body << "coupled " << sweep.lo << " " << sweep.hi << " " << sweep.step
           << " factor " << sweep.factor;
      break;
  }
  body << "\n";
  for (const std::string& solver : spec.solvers) {
    body << "solver " << solver << "\n";
  }
  out << body.str();
}

std::string campaign_to_text(const CampaignSpec& spec) {
  std::ostringstream out;
  write_campaign(out, spec);
  return out.str();
}

CampaignParseResult read_campaign(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;

  if (!next_line(in, line, lineno)) return fail(lineno, "empty input");
  {
    std::istringstream header(line);
    std::string magic;
    std::string version;
    header >> magic >> version;
    if (magic != "prts-campaign" || version != "v1") {
      return fail(lineno, "expected header 'prts-campaign v1'");
    }
  }

  CampaignSpec spec;
  spec.solvers.clear();
  bool saw_sweep = false;
  while (next_line(in, line, lineno)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "name") {
      std::string rest;
      std::getline(fields, rest);
      spec.name = trim(rest);
      if (spec.name.empty()) return fail(lineno, "empty campaign name");
    } else if (key == "instances") {
      if (!read_unsigned(fields, spec.instances)) {
        return fail(lineno, "expected 'instances <N>' with N >= 0");
      }
    } else if (key == "repetitions") {
      if (!read_unsigned(fields, spec.repetitions)) {
        return fail(lineno, "expected 'repetitions <R>' with R >= 0");
      }
    } else if (key == "seed") {
      if (!read_unsigned(fields, spec.seed)) {
        return fail(lineno, "expected 'seed <S>' with unsigned S");
      }
    } else if (key == "chain") {
      if (!read_unsigned(fields, spec.chain.task_count)) {
        return fail(lineno, "expected 'chain <tasks> ...' with tasks >= 0");
      }
      fields >> spec.chain.work_lo >> spec.chain.work_hi >>
          spec.chain.out_lo >> spec.chain.out_hi;
      if (fields.fail()) {
        return fail(lineno,
                    "expected 'chain <tasks> <work_lo> <work_hi> <out_lo> "
                    "<out_hi>'");
      }
    } else if (key == "platform") {
      std::string kind;
      fields >> kind;
      if (kind != "hom" && kind != "het") {
        return fail(lineno, "expected 'platform hom|het ...'");
      }
      if (!read_unsigned(fields, spec.platform.processors)) {
        return fail(lineno, "expected 'platform " + kind +
                                " <p> ...' with p >= 0");
      }
      if (kind == "hom") {
        spec.platform.kind = PlatformKind::kHom;
        fields >> spec.platform.speed;
      } else {
        spec.platform.kind = PlatformKind::kHet;
        fields >> spec.platform.speed_lo >> spec.platform.speed_hi;
      }
      fields >> spec.platform.processor_failure_rate >>
          spec.platform.link_failure_rate >> spec.platform.bandwidth;
      if (fields.fail() ||
          !read_unsigned(fields, spec.platform.max_replication)) {
        return fail(lineno,
                    "expected 'platform " + kind +
                        " <p> <speed...> <proc_rate> <link_rate> "
                        "<bandwidth> <K>'");
      }
    } else if (key == "sweep") {
      std::string kind;
      std::string other;
      fields >> kind >> spec.sweep.lo >> spec.sweep.hi >> spec.sweep.step >>
          other;
      if (fields.fail()) {
        return fail(lineno,
                    "expected 'sweep period|latency|coupled <lo> <hi> "
                    "<step> ...'");
      }
      bool bound_ok = true;
      if (kind == "period" && other == "latency") {
        spec.sweep.kind = SweepKind::kPeriod;
        bound_ok = read_double(fields, spec.sweep.fixed);
      } else if (kind == "latency" && other == "period") {
        spec.sweep.kind = SweepKind::kLatency;
        bound_ok = read_double(fields, spec.sweep.fixed);
      } else if (kind == "coupled" && other == "factor") {
        spec.sweep.kind = SweepKind::kCoupled;
        bound_ok = read_double(fields, spec.sweep.factor);
      } else {
        return fail(lineno, "unknown sweep form '" + kind + " ... " +
                                other + "'");
      }
      if (!bound_ok) return fail(lineno, "missing sweep bound value");
      saw_sweep = true;
    } else if (key == "solver") {
      std::string name;
      fields >> name;
      if (fields.fail() || name.empty()) {
        return fail(lineno, "expected 'solver <name>'");
      }
      spec.solvers.push_back(name);
    } else {
      return fail(lineno, "unknown key '" + key + "'");
    }
  }

  if (!saw_sweep) return fail(lineno, "missing 'sweep' line");
  if (const auto why = check_spec(spec)) return fail(lineno, *why);
  CampaignParseResult result;
  result.spec = std::move(spec);
  return result;
}

CampaignParseResult campaign_from_text(const std::string& text) {
  std::istringstream in(text);
  return read_campaign(in);
}

}  // namespace prts::scenario
