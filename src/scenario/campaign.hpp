// The campaign engine: expands a CampaignSpec into (instance x solver x
// sweep point) jobs, runs them in parallel over prts::ThreadPool with
// deterministic per-job RNG seeding, and aggregates the results into the
// exp::MethodSeries shapes the reporting layer consumes.
//
// Determinism contract: every job derives its generator from
// job_seed(spec.seed, job) alone, per-job results land in preassigned
// slots, and the final reduction runs sequentially in job order —
// so an N-thread run produces byte-identical aggregates to a 1-thread
// run of the same spec.
#pragma once

#include <cstdint>

#include "exp/runner.hpp"
#include "model/serialize.hpp"
#include "scenario/spec.hpp"
#include "solver/registry.hpp"

namespace prts::scenario {

/// Execution knobs (the spec describes *what* to run, this *how*).
struct CampaignConfig {
  std::size_t threads = 0;  ///< worker threads, hardware when 0

  /// Solver lookup table; the built-in registry when null.
  const solver::SolverRegistry* registry = nullptr;
};

/// Aggregated campaign output: one MethodSeries per spec solver.
struct CampaignResult {
  exp::FigureData figure;
  std::size_t jobs = 0;    ///< instances * repetitions
  std::size_t points = 0;  ///< sweep grid size
};

/// The per-job seed stream: splitmix-mixed from the campaign seed, so
/// jobs are decorrelated and job j is reproducible in isolation. Job
/// indices enumerate repetitions x instances.
std::uint64_t job_seed(std::uint64_t base, std::size_t job) noexcept;

/// Materializes the random instance of one job (chain first, then the
/// platform, from one per-job generator).
Instance materialize_instance(const CampaignSpec& spec, std::size_t job);

/// Runs the campaign described by the spec. Throws std::invalid_argument
/// on an empty solver list or a name missing from the registry.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignConfig& config = {});

/// Like run_campaign but over an explicit sweep grid (`x` labels the
/// points in reports). Lets programmatic callers (src/exp/) drive sweeps
/// a SweepSpec cannot express.
CampaignResult run_campaign_points(const CampaignSpec& spec,
                                   const std::vector<exp::SweepPoint>& points,
                                   const std::vector<double>& x,
                                   const CampaignConfig& config = {});

/// The sequential job-order reduction behind run_campaign_points,
/// shared with the solve-service fusion (src/service/fusion.*):
/// `failures[job]` is a flat [solver][point] array of failure
/// probabilities, NaN where the solver found nothing. Because the
/// reduction order is fixed, any execution producing the same per-job
/// values yields byte-identical aggregates.
CampaignResult reduce_job_failures(
    const CampaignSpec& spec, const std::vector<double>& x,
    const std::vector<std::vector<double>>& failures,
    std::size_t n_solvers, std::size_t n_points);

}  // namespace prts::scenario
