#include "scenario/campaign.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"

namespace prts::scenario {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::vector<std::shared_ptr<const solver::Solver>> resolve_solvers(
    const CampaignSpec& spec, const CampaignConfig& config) {
  const solver::SolverRegistry& registry =
      config.registry ? *config.registry : solver::SolverRegistry::builtin();
  if (spec.solvers.empty()) {
    throw std::invalid_argument("run_campaign: empty solver list");
  }
  std::vector<std::shared_ptr<const solver::Solver>> solvers;
  solvers.reserve(spec.solvers.size());
  for (const std::string& name : spec.solvers) {
    auto found = registry.find(name);
    if (!found) {
      throw std::invalid_argument("run_campaign: unknown solver '" + name +
                                  "'");
    }
    solvers.push_back(std::move(found));
  }
  return solvers;
}

}  // namespace

std::uint64_t job_seed(std::uint64_t base, std::size_t job) noexcept {
  // The historical src/exp/runner.cpp stream, kept so rewired
  // experiments reproduce the seed repo's figures bit-for-bit.
  std::uint64_t state = base + 0x632be59bd9b4e019ULL * (job + 1);
  return splitmix64_next(state);
}

Instance materialize_instance(const CampaignSpec& spec, std::size_t job) {
  Rng rng(job_seed(spec.seed, job));
  TaskChain chain = random_chain(rng, spec.chain);
  const PlatformSpec& platform = spec.platform;
  if (platform.kind == PlatformKind::kHom) {
    return Instance{std::move(chain),
                    Platform::homogeneous(
                        platform.processors, platform.speed,
                        platform.processor_failure_rate, platform.bandwidth,
                        platform.link_failure_rate,
                        platform.max_replication)};
  }
  HetPlatformConfig het;
  het.processor_count = platform.processors;
  het.speed_lo = platform.speed_lo;
  het.speed_hi = platform.speed_hi;
  het.processor_failure_rate = platform.processor_failure_rate;
  het.bandwidth = platform.bandwidth;
  het.link_failure_rate = platform.link_failure_rate;
  het.max_replication = platform.max_replication;
  return Instance{std::move(chain), random_het_platform(rng, het)};
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignConfig& config) {
  return run_campaign_points(spec, sweep_points(spec.sweep),
                             sweep_x(spec.sweep), config);
}

CampaignResult run_campaign_points(const CampaignSpec& spec,
                                   const std::vector<exp::SweepPoint>& points,
                                   const std::vector<double>& x,
                                   const CampaignConfig& config) {
  const auto solvers = resolve_solvers(spec, config);
  const std::size_t n_solvers = solvers.size();
  const std::size_t n_points = points.size();
  const std::size_t jobs = spec.instances * spec.repetitions;

  // Phase 1 (parallel): every job writes its own preassigned slot, so no
  // synchronization and no ordering effects.
  std::vector<std::vector<double>> failures(jobs);
  ThreadPool pool(config.threads);
  pool.parallel_for(jobs, [&](std::size_t job) {
    const Instance instance = materialize_instance(spec, job);
    std::vector<double>& outcome = failures[job];
    outcome.assign(n_solvers * n_points, kNan);
    for (std::size_t s = 0; s < n_solvers; ++s) {
      const auto prepared = solvers[s]->prepare(instance);
      for (std::size_t pt = 0; pt < n_points; ++pt) {
        solver::Bounds bounds;
        bounds.period_bound = points[pt].period_bound;
        bounds.latency_bound = points[pt].latency_bound;
        if (const auto solution = prepared->solve(bounds)) {
          outcome[s * n_points + pt] = solution->metrics.failure;
        }
      }
    }
  });

  return reduce_job_failures(spec, x, failures, n_solvers, n_points);
}

CampaignResult reduce_job_failures(
    const CampaignSpec& spec, const std::vector<double>& x,
    const std::vector<std::vector<double>>& failures,
    std::size_t n_solvers, std::size_t n_points) {
  // Sequential, job order: the reduction order is fixed, so the
  // floating-point sums are identical for any thread count.
  const std::size_t jobs = failures.size();
  CampaignResult result;
  result.jobs = jobs;
  result.points = n_points;
  result.figure.title = spec.name;
  result.figure.x_label = sweep_x_label(spec.sweep);
  result.figure.x = x;
  for (std::size_t s = 0; s < n_solvers; ++s) {
    exp::MethodSeries series;
    series.name = spec.solvers[s];
    series.solutions.assign(n_points, 0);
    std::vector<double> failure_sum(n_points, 0.0);
    for (std::size_t job = 0; job < jobs; ++job) {
      for (std::size_t pt = 0; pt < n_points; ++pt) {
        const double failure = failures[job][s * n_points + pt];
        if (std::isnan(failure)) continue;
        ++series.solutions[pt];
        failure_sum[pt] += failure;
      }
    }
    series.avg_failure.assign(n_points, kNan);
    for (std::size_t pt = 0; pt < n_points; ++pt) {
      if (series.solutions[pt] > 0) {
        series.avg_failure[pt] =
            failure_sum[pt] / static_cast<double>(series.solutions[pt]);
      }
    }
    result.figure.series.push_back(std::move(series));
  }
  return result;
}

}  // namespace prts::scenario
