#include "scenario/emit.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace prts::scenario {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          escaped += hex.str();
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

/// One double as a JSON value: NaN has no JSON spelling, emit null.
void json_number(std::ostream& out, double value) {
  if (std::isnan(value)) {
    out << "null";
  } else {
    out << value;
  }
}

void json_series(std::ostream& out, const exp::MethodSeries& series,
                 const char* indent) {
  out << indent << "{\"name\": \"" << json_escape(series.name)
      << "\", \"solutions\": [";
  for (std::size_t i = 0; i < series.solutions.size(); ++i) {
    if (i > 0) out << ", ";
    out << series.solutions[i];
  }
  out << "], \"avg_failure\": [";
  for (std::size_t i = 0; i < series.avg_failure.size(); ++i) {
    if (i > 0) out << ", ";
    json_number(out, series.avg_failure[i]);
  }
  out << "]}";
}

void json_figure_fields(std::ostream& out, const exp::FigureData& figure,
                        const char* indent) {
  out << indent << "\"title\": \"" << json_escape(figure.title) << "\",\n";
  out << indent << "\"x_label\": \"" << json_escape(figure.x_label)
      << "\",\n";
  out << indent << "\"x\": [";
  for (std::size_t i = 0; i < figure.x.size(); ++i) {
    if (i > 0) out << ", ";
    out << figure.x[i];
  }
  out << "],\n";
  out << indent << "\"series\": [\n";
  const std::string series_indent = std::string(indent) + "  ";
  for (std::size_t s = 0; s < figure.series.size(); ++s) {
    json_series(out, figure.series[s], series_indent.c_str());
    out << (s + 1 < figure.series.size() ? ",\n" : "\n");
  }
  out << indent << "]";
}

}  // namespace

void write_tsv(std::ostream& out, const exp::FigureData& figure) {
  const auto restore = out.precision(17);
  out << "x";
  for (const exp::MethodSeries& series : figure.series) {
    out << "\t" << series.name << "_solutions\t" << series.name
        << "_avg_failure";
  }
  out << "\n";
  for (std::size_t i = 0; i < figure.x.size(); ++i) {
    out << figure.x[i];
    for (const exp::MethodSeries& series : figure.series) {
      out << "\t" << series.solutions[i] << "\t" << series.avg_failure[i];
    }
    out << "\n";
  }
  out.precision(restore);
}

void write_json(std::ostream& out, const exp::FigureData& figure) {
  const auto restore = out.precision(17);
  out << "{\n";
  json_figure_fields(out, figure, "  ");
  out << "\n}\n";
  out.precision(restore);
}

void write_json(std::ostream& out, const CampaignSpec& spec,
                const CampaignResult& result) {
  const auto restore = out.precision(17);
  out << "{\n";
  out << "  \"campaign\": \"" << json_escape(spec.name) << "\",\n";
  out << "  \"instances\": " << spec.instances << ",\n";
  out << "  \"repetitions\": " << spec.repetitions << ",\n";
  out << "  \"seed\": " << spec.seed << ",\n";
  out << "  \"jobs\": " << result.jobs << ",\n";
  out << "  \"points\": " << result.points << ",\n";
  out << "  \"solvers\": [";
  for (std::size_t i = 0; i < spec.solvers.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << json_escape(spec.solvers[i]) << "\"";
  }
  out << "],\n";
  json_figure_fields(out, result.figure, "  ");
  out << "\n}\n";
  out.precision(restore);
}

std::string to_tsv(const exp::FigureData& figure) {
  std::ostringstream out;
  write_tsv(out, figure);
  return out.str();
}

std::string to_json(const exp::FigureData& figure) {
  std::ostringstream out;
  write_json(out, figure);
  return out.str();
}

}  // namespace prts::scenario
