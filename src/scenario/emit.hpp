// Machine-readable campaign result emission: TSV for spreadsheets and
// plotting scripts, JSON for trajectory tracking and dashboards. Both
// formats print doubles at full precision, so identical aggregates emit
// identical bytes (the determinism tests compare these strings).
#pragma once

#include <iosfwd>
#include <string>

#include "exp/runner.hpp"
#include "scenario/campaign.hpp"

namespace prts::scenario {

/// Tab-separated values: header `x <name>_solutions <name>_avg_failure
/// ...`, one row per sweep point, NaN spelled `nan`.
void write_tsv(std::ostream& out, const exp::FigureData& figure);

/// JSON object {title, x_label, x, series: [{name, solutions,
/// avg_failure}]}; NaN emits as null.
void write_json(std::ostream& out, const exp::FigureData& figure);

/// JSON with campaign metadata (spec echo + job counts) wrapped around
/// the figure payload.
void write_json(std::ostream& out, const CampaignSpec& spec,
                const CampaignResult& result);

/// Convenience string forms (used by tests to compare runs byte-wise).
std::string to_tsv(const exp::FigureData& figure);
std::string to_json(const exp::FigureData& figure);

}  // namespace prts::scenario
