// Declarative campaign specifications: one text file describes a whole
// Section-8-style batch — random-instance generator parameters, the
// platform family, the sweep grid over (period, latency) bounds, the
// solver list and the seeding — so `prts_cli campaign spec.txt`
// reproduces an entire figure in one invocation.
//
// Format (line oriented, '#' comments allowed, keys in any order after
// the header; `write_campaign` prints the canonical order shown here):
//   prts-campaign v1
//   name <free text>
//   instances <N>
//   repetitions <R>
//   seed <S>
//   chain <tasks> <work_lo> <work_hi> <out_lo> <out_hi>
//   platform hom <p> <speed> <proc_rate> <link_rate> <bandwidth> <K>
//   platform het <p> <speed_lo> <speed_hi> <proc_rate> <link_rate>
//                <bandwidth> <K>
//   sweep period <lo> <hi> <step> latency <L>
//   sweep latency <lo> <hi> <step> period <P>
//   sweep coupled <lo> <hi> <step> factor <f>       # P = x, L = f * x
//   solver <registry name>                          # one per line, >= 1
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "model/generator.hpp"

namespace prts::scenario {

/// Which bound the sweep varies.
enum class SweepKind {
  kPeriod,   ///< x = period bound, latency fixed
  kLatency,  ///< x = latency bound, period fixed
  kCoupled,  ///< x = period bound, latency = factor * x (Figures 10-11)
};

/// The sweep grid: x in {lo, lo+step, ..., <= hi} plus the fixed/coupled
/// other bound.
struct SweepSpec {
  SweepKind kind = SweepKind::kPeriod;
  double lo = 0.0;
  double hi = 0.0;
  double step = 1.0;
  double fixed = std::numeric_limits<double>::infinity();  ///< other bound
  double factor = 3.0;  ///< kCoupled: latency = factor * period
};

/// The platform family instances are drawn from.
enum class PlatformKind {
  kHom,  ///< identical processors, no randomness
  kHet,  ///< uniform integer speeds in [speed_lo, speed_hi], per instance
};

/// Platform parameters (paper Section 8 defaults).
struct PlatformSpec {
  PlatformKind kind = PlatformKind::kHom;
  std::size_t processors = paper::kProcessorCount;
  double speed = paper::kHomSpeed;  ///< kHom
  int speed_lo = 1;                 ///< kHet
  int speed_hi = 100;               ///< kHet
  double processor_failure_rate = paper::kProcessorFailureRate;
  double link_failure_rate = paper::kLinkFailureRate;
  double bandwidth = paper::kBandwidth;
  unsigned max_replication = paper::kMaxReplication;
};

/// A full campaign: generator x sweep x solvers x seeding.
struct CampaignSpec {
  std::string name = "campaign";
  std::size_t instances = paper::kInstanceCount;
  std::size_t repetitions = 1;
  std::uint64_t seed = 42;
  ChainConfig chain;  ///< paper defaults: 15 tasks, w in [1,100], o in [1,10]
  PlatformSpec platform;
  SweepSpec sweep;
  std::vector<std::string> solvers;  ///< registry names, series order
};

/// The sweep's x values: lo, lo+step, ..., <= hi.
std::vector<double> sweep_x(const SweepSpec& sweep);

/// The expanded (period, latency) grid, one point per x value.
std::vector<exp::SweepPoint> sweep_points(const SweepSpec& sweep);

/// Axis label for reports ("period bound", "latency bound", ...).
std::string sweep_x_label(const SweepSpec& sweep);

/// Writes the canonical text form (round-trips through read_campaign).
void write_campaign(std::ostream& out, const CampaignSpec& spec);

/// Serializes to a string (convenience over write_campaign).
std::string campaign_to_text(const CampaignSpec& spec);

/// Result of parsing: either a spec or a human-readable error.
struct CampaignParseResult {
  std::optional<CampaignSpec> spec;
  std::string error;

  explicit operator bool() const noexcept { return spec.has_value(); }
};

/// Parses the v1 text format; never throws — malformed input yields an
/// error message naming the offending line.
CampaignParseResult read_campaign(std::istream& in);

/// Parses from a string (convenience over read_campaign).
CampaignParseResult campaign_from_text(const std::string& text);

}  // namespace prts::scenario
