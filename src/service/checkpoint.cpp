#include "service/checkpoint.hpp"

#include <cstdio>

#include <chrono>
#include <fstream>

namespace prts::service {

Checkpointer::Checkpointer(const ShardedSolutionCache& cache, Config config)
    : cache_(cache), config_(std::move(config)) {
  if (config_.telemetry != nullptr) {
    obs::Registry& metrics = config_.telemetry->metrics;
    checkpoints_counter_ = &metrics.counter("checkpoint_total");
    failures_counter_ = &metrics.counter("checkpoint_failures_total");
    duration_hist_ = &metrics.histogram("checkpoint_seconds");
  }
  if (config_.interval_seconds > 0.0) {
    timer_ = std::thread(&Checkpointer::timer_loop, this);
  }
}

Checkpointer::~Checkpointer() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    cv_.notify_all();
  }
  if (timer_.joinable()) timer_.join();
}

bool Checkpointer::checkpoint_now(std::string* error) {
  const std::lock_guard<std::mutex> write_lock(write_mutex_);
  const auto started = std::chrono::steady_clock::now();
  const std::string tmp = config_.path + ".tmp";
  std::size_t bytes = 0;
  bool ok = false;
  std::string reason;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      reason = "cannot open '" + tmp + "' for writing";
    } else {
      cache_.save_binary(out);
      out.flush();
      if (!out) {
        reason = "write to '" + tmp + "' failed";
      } else {
        bytes = static_cast<std::size_t>(out.tellp());
        ok = true;
      }
    }
  }
  if (ok && std::rename(tmp.c_str(), config_.path.c_str()) != 0) {
    reason = "rename '" + tmp + "' -> '" + config_.path + "' failed";
    ok = false;
  }
  if (!ok) std::remove(tmp.c_str());
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  const std::lock_guard<std::mutex> lock(mutex_);
  if (ok) {
    ++stats_.checkpoints;
    stats_.last_entries = cache_.stats().entries;
    stats_.last_bytes = bytes;
    stats_.last_seconds = seconds;
    if (checkpoints_counter_) checkpoints_counter_->add();
    if (duration_hist_) duration_hist_->record(seconds);
  } else {
    ++stats_.failures;
    if (failures_counter_) failures_counter_->add();
    if (error) *error = reason;
  }
  return ok;
}

Checkpointer::Stats Checkpointer::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Checkpointer::timer_loop() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.interval_seconds));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) return;
    lock.unlock();
    checkpoint_now();
    lock.lock();
  }
}

}  // namespace prts::service
