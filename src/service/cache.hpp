// The solve service's solution cache (second layer of src/service/): an
// N-shard LRU keyed by 128-bit canonical request hashes.
//
// Sharding: a key lives in shard hi % shards, each shard owning its own
// mutex, map and LRU list, so concurrent lookups from the request
// engine's workers contend only when they land in one shard. Capacity
// is byte-bounded (estimated entry footprint), split evenly across
// shards; eviction is per-shard LRU.
//
// Entries store solutions in *canonical* processor space (see
// service/canonical.hpp) — the engine translates to request labels on
// the way out — and negative results ("these bounds are infeasible for
// this solver") are cached too, so repeated infeasible probes of a
// design-space exploration stay cheap.
//
// Persistence: save_tsv/load_tsv write and read a warm-start file, one
// entry per line, every double in canonical_number shortest round-trip
// form, so a reloaded cache replays bit-identical solutions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/canonical.hpp"
#include "solver/solver.hpp"

namespace prts::service {

/// A cached answer: the canonical-space solution, or nullopt for a
/// cached "no feasible mapping under these bounds".
struct CachedSolution {
  std::optional<solver::Solution> solution;
};

/// Aggregated counters (summed over shards; a snapshot, not a fence).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;
  std::size_t shards = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Estimated in-memory footprint of one entry (key + metrics + mapping
/// vectors); the unit the byte bound is accounted in.
std::size_t cached_solution_bytes(const CachedSolution& value) noexcept;

class ShardedSolutionCache {
 public:
  struct Config {
    std::size_t shards = 16;                        ///< clamped to >= 1
    std::size_t capacity_bytes = 64 * 1024 * 1024;  ///< across all shards
  };

  ShardedSolutionCache() : ShardedSolutionCache(Config()) {}
  explicit ShardedSolutionCache(Config config);

  /// The entry under `key` (refreshing its LRU position), or nullopt.
  std::optional<CachedSolution> lookup(const CanonicalHash& key);

  /// Inserts or refreshes `key`; evicts least-recently-used entries of
  /// the shard while it is over its byte budget (never the entry just
  /// inserted — a single oversized entry is kept and evicted by the
  /// next insertion).
  void insert(const CanonicalHash& key, CachedSolution value);

  /// Drops every entry (counters are kept).
  void clear();

  CacheStats stats() const;

  /// Writes every entry as one TSV line:
  ///   <hash-hex> <feasible> <boundaries,> <procs;,> <9 metric fields>
  /// Shard iteration order; not sorted (the reload order is irrelevant).
  void save_tsv(std::ostream& out) const;

  struct LoadResult {
    std::size_t loaded = 0;  ///< entries inserted
    std::string error;       ///< first malformed line, empty when clean
  };

  /// Inserts every well-formed line of a save_tsv stream; stops at the
  /// first malformed line and reports it (entries before it are kept).
  LoadResult load_tsv(std::istream& in);

  /// Writes the stats snapshot as one JSON object.
  static void write_stats_json(std::ostream& out, const CacheStats& stats);

 private:
  struct Entry {
    CanonicalHash key;
    CachedSolution value;
    std::size_t bytes = 0;
  };

  /// Shard-local hash: lo is already avalanched by fingerprint(), so it
  /// is the bucket index; the map compares full 128-bit keys.
  struct KeyHasher {
    std::size_t operator()(const CanonicalHash& key) const noexcept {
      return static_cast<std::size_t>(key.lo);
    }
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<CanonicalHash, std::list<Entry>::iterator, KeyHasher>
        index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_of(const CanonicalHash& key) noexcept {
    return shards_[key.hi % shards_.size()];
  }

  std::vector<Shard> shards_;  // sized once in the ctor, never resized
  std::size_t per_shard_capacity_;
};

}  // namespace prts::service
