// The solve service's solution cache (second layer of src/service/): an
// N-shard LRU keyed by 128-bit canonical request hashes.
//
// Sharding: a key lives in shard hi % shards, each shard owning its own
// mutex, map and LRU list, so concurrent lookups from the request
// engine's workers contend only when they land in one shard. Capacity
// is byte-bounded (estimated entry footprint), split evenly across
// shards; eviction is per-shard LRU, or cost-aware (Retention::kCost):
// among the least-recently-used tail the entry with the cheapest
// recorded solve time goes first, so expensive exact solves outlive
// cheap heuristic answers under pressure.
//
// Entries store solutions in *canonical* processor space (see
// service/canonical.hpp) — the engine translates to request labels on
// the way out — and negative results ("these bounds are infeasible for
// this solver") are cached too, so repeated infeasible probes of a
// design-space exploration stay cheap.
//
// Persistence, two formats sharing one entry line codec:
//   - save_tsv/load_tsv: one entry per line, every double in
//     canonical_number shortest round-trip form, so a reloaded cache
//     replays bit-identical solutions;
//   - save_binary/load_binary: the compact "PRTS1" snapshot — an index
//     header mapping hash -> (offset, length) followed by the entry
//     lines as blobs, so a fabric node can selectively load just the
//     keys of its own shard (seek per index entry, O(1) per key,
//     nothing else is read or parsed).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/profiler.hpp"
#include "service/canonical.hpp"
#include "solver/solver.hpp"

namespace prts::service {

/// A cached answer: the canonical-space solution, or nullopt for a
/// cached "no feasible mapping under these bounds", plus the wall-clock
/// cost of the solve that produced it (the cost-aware retention
/// weight; 0 when unknown, e.g. legacy warm-start files).
///
/// `instance_key` + `bounds` are the near-miss index metadata: the
/// bounds-erased (canonical instance, solver) batch key this entry's
/// request hashed under, and the bounds it was solved for. Entries
/// carrying both feed the bounds-monotone secondary index (see
/// find_dominating below); entries without them — legacy warm-start
/// files, wire replies — stay plain exact-key entries.
struct CachedSolution {
  CachedSolution() = default;
  // Not an aggregate: the trailing members default without tripping
  // -Wmissing-field-initializers at the many shorter call sites.
  explicit CachedSolution(std::optional<solver::Solution> solution,
                          double cost_seconds = 0.0,
                          std::optional<CanonicalHash> instance_key = {},
                          std::optional<solver::Bounds> bounds = {})
      : solution(std::move(solution)),
        cost_seconds(cost_seconds),
        instance_key(instance_key),
        bounds(bounds) {}

  std::optional<solver::Solution> solution;
  double cost_seconds = 0.0;
  std::optional<CanonicalHash> instance_key;
  std::optional<solver::Bounds> bounds;

  bool indexable() const noexcept {
    return instance_key.has_value() && bounds.has_value();
  }
};

/// Aggregated counters (summed over shards; a snapshot, not a fence).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t near_hits = 0;  ///< answers served via find_dominating
  std::size_t entries = 0;
  std::size_t near_entries = 0;  ///< live bounds-index entries
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;
  std::size_t shards = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Estimated in-memory footprint of one entry (key + metrics + mapping
/// vectors); the unit the byte bound is accounted in.
std::size_t cached_solution_bytes(const CachedSolution& value) noexcept;

/// One entry as a TSV line (no trailing newline):
///   <hash-hex> <feasible> <boundaries,> <procs;,> [<9 metric fields>]
///   <cost> [<instance-hash-hex> <period-bound> <latency-bound>]
/// The trailing near-miss metadata triple is emitted only when the
/// entry carries it. The codec shared by the TSV file, the PRTS1 blobs,
/// and the wire replies of service/wire.hpp.
std::string encode_cache_entry(const CanonicalHash& key,
                               const CachedSolution& value);

/// Parses encode_cache_entry output, version-tolerantly: legacy lines
/// without the cost field load with cost 0, lines without the near-miss
/// metadata load unindexed. False with a reason on malformed input.
bool parse_cache_entry(std::string_view line, CanonicalHash& key,
                       CachedSolution& value, std::string& error);

class ShardedSolutionCache {
 public:
  /// Eviction order within a shard once the byte budget is exceeded.
  enum class Retention {
    kLru,   ///< strict least-recently-used
    kCost,  ///< cheapest solve among the LRU tail window goes first
  };

  struct Config {
    std::size_t shards = 16;                        ///< clamped to >= 1
    std::size_t capacity_bytes = 64 * 1024 * 1024;  ///< across all shards
    Retention retention = Retention::kLru;
    /// kCost examines this many tail entries per eviction (bounded so
    /// eviction stays O(1)-ish rather than a full shard scan).
    std::size_t cost_window = 8;
    /// Bounds-index entries kept per (instance, solver) batch key; a
    /// long bound sweep over one instance must not grow the index
    /// without limit (oldest recorded bounds are dropped first).
    std::size_t near_index_per_instance = 256;
  };

  ShardedSolutionCache() : ShardedSolutionCache(Config()) {}
  explicit ShardedSolutionCache(Config config);

  /// The entry under `key` (refreshing its LRU position), or nullopt.
  std::optional<CachedSolution> lookup(const CanonicalHash& key);

  /// lookup() without side effects: no LRU refresh, no hit/miss
  /// counting. Serves the fabric's replica-fetch frames, which must not
  /// distort the owner's recency order or hit-rate statistics.
  std::optional<CachedSolution> peek(const CanonicalHash& key) const;

  /// Feasibility + metrics + cost of an entry without copying its
  /// mapping — the near-miss index walks filter on metrics alone and
  /// must not pay a full solution copy per rejected candidate.
  struct EntrySummary {
    bool feasible = false;
    MappingMetrics metrics;  ///< meaningful only when feasible
    double cost_seconds = 0.0;
  };
  std::optional<EntrySummary> peek_summary(const CanonicalHash& key) const;

  /// peek() without the entry copy — the gossip digest's "is this key
  /// still fetchable?" filter.
  bool contains(const CanonicalHash& key) const;

  /// Inserts or refreshes `key`; evicts entries of the shard while it
  /// is over its byte budget (never the entry just inserted — a single
  /// oversized entry is kept and evicted by the next insertion).
  /// Entries carrying near-miss metadata (see CachedSolution) are also
  /// recorded in the bounds-monotone secondary index.
  void insert(const CanonicalHash& key, CachedSolution value);

  /// The bounds-monotone near-miss lookup: an entry of `instance_key`
  /// (= batch_key: canonical instance + solver, bounds erased) cached
  /// for bounds at least as loose as `bounds` in both dimensions, whose
  /// answer transfers to `bounds` — a feasible solution that already
  /// satisfies the tighter request (for a bounds-monotone engine it IS
  /// the tighter request's answer, bit-identically), or a cached
  /// infeasibility (looser-infeasible implies tighter-infeasible).
  /// Callers must gate this on Solver::bounds_monotone. Entries whose
  /// main-cache record was evicted are dropped from the index lazily.
  std::optional<CachedSolution> find_dominating(
      const CanonicalHash& instance_key, const solver::Bounds& bounds);

  /// The warm-start lookup: among every cached entry of `instance_key`
  /// (any bounds) whose solution satisfies `bounds`, the most reliable
  /// one — a feasible incumbent plus reliability-floor certificate for
  /// the request, valid for *any* engine because a warm start never
  /// changes an answer. nullopt when no cached solution fits.
  std::optional<CachedSolution> find_feasible(
      const CanonicalHash& instance_key, const solver::Bounds& bounds);

  /// Drops every entry (counters are kept).
  void clear();

  CacheStats stats() const;

  /// Snapshot of every resident key, shard iteration order (one shard
  /// locked at a time — concurrent insertions may or may not appear).
  /// The membership handoff scans this to find the slice a new owner
  /// takes, then streams the entries via peek().
  std::vector<CanonicalHash> keys() const;

  /// Writes every entry as one encode_cache_entry line. Shard iteration
  /// order; not sorted (the reload order is irrelevant).
  void save_tsv(std::ostream& out) const;

  struct LoadResult {
    std::size_t loaded = 0;   ///< entries inserted
    std::size_t skipped = 0;  ///< entries rejected by the filter
    std::string error;        ///< first malformed input, empty when clean
  };

  /// Inserts every well-formed line of a save_tsv stream; stops at the
  /// first malformed line and reports it (entries before it are kept).
  LoadResult load_tsv(std::istream& in);

  /// Writes the compact binary snapshot:
  ///   "PRTS1\n" u8 version u8 reserved u64le count
  ///   count * { u64le hi, u64le lo, u64le offset, u32le length }
  ///   blobs (encode_cache_entry lines, no newline)
  void save_binary(std::ostream& out) const;

  /// Loads a save_binary snapshot. When `filter` is set only keys it
  /// accepts are read — the index is scanned, everything else is
  /// skipped without touching its bytes (selective shard load). The
  /// stream must be seekable.
  LoadResult load_binary(
      std::istream& in,
      const std::function<bool(const CanonicalHash&)>& filter = {});

  /// Writes the stats snapshot as one JSON object.
  static void write_stats_json(std::ostream& out, const CacheStats& stats);

  /// Attaches one shared contention probe to every shard mutex (main
  /// and near-index alike): per-shard contention aggregates into a
  /// single "cache_shard" family instead of 2N histogram families. The
  /// probe must outlive the cache; nullptr detaches.
  void attach_mutex_probe(const obs::ProfiledMutex::Probe* probe) noexcept;

 private:
  struct Entry {
    CanonicalHash key;
    CachedSolution value;
    std::size_t bytes = 0;
  };

  struct Shard {
    mutable obs::ProfiledMutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<CanonicalHash, std::list<Entry>::iterator, CanonicalKeyHasher>
        index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  /// One recorded (bounds, request key) pair of an instance's sweep
  /// history. The solution itself stays in the main cache — the index
  /// only remembers where to peek, so eviction needs no cross-shard
  /// coordination (dead references are dropped lazily on lookup).
  struct NearEntry {
    solver::Bounds bounds;
    CanonicalHash request_key;
  };

  /// Secondary index sharded by *instance* key (request keys of one
  /// instance scatter across the main shards, so the index cannot ride
  /// them). Lock order: an index mutex may be held while peeking a main
  /// shard, never the reverse.
  struct NearShard {
    mutable obs::ProfiledMutex mutex;
    std::unordered_map<CanonicalHash, std::vector<NearEntry>,
                       CanonicalKeyHasher>
        map;
    std::uint64_t near_hits = 0;
  };

  Shard& shard_of(const CanonicalHash& key) noexcept {
    return shards_[key.hi % shards_.size()];
  }
  const Shard& shard_of(const CanonicalHash& key) const noexcept {
    return shards_[key.hi % shards_.size()];
  }
  NearShard& near_shard_of(const CanonicalHash& instance_key) noexcept {
    return near_shards_[instance_key.hi % near_shards_.size()];
  }

  /// Drops one entry chosen by the retention policy (shard lock held;
  /// the shard has >= 2 entries).
  void evict_one(Shard& shard);

  std::vector<Shard> shards_;  // sized once in the ctor, never resized
  std::vector<NearShard> near_shards_;  // ditto
  std::size_t per_shard_capacity_;
  Retention retention_;
  std::size_t cost_window_;
  std::size_t near_index_per_instance_;
};

/// Replica-tier counters (monotonic except entries/bytes snapshots).
struct ReplicaStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;    ///< dropped for the byte budget
  std::uint64_t expirations = 0;  ///< dropped because the TTL lapsed
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;
};

/// The fabric's replica tier: a bounded, TTL'd LRU of *remote-shard*
/// answers kept on the requesting rank, so repeat hits on a peer's keys
/// stop paying the network round trip. Entries are immutable (a
/// canonical key fully determines its solution), so there is no
/// invalidation protocol — only the TTL, which bounds how long a rank
/// serves a key after its owner forgot it (capacity-evicted it), keeping
/// the fabric's effective working set fresh.
///
/// Expiry is lazy (checked on lookup) against caller-supplied
/// timestamps, defaulting to steady_clock::now() — tests inject times
/// instead of sleeping. A zero byte capacity disables the tier; a
/// non-positive TTL means entries never expire.
class ReplicaCache {
 public:
  using Clock = std::chrono::steady_clock;

  struct Config {
    std::size_t capacity_bytes = 16 * 1024 * 1024;  ///< 0 disables
    double ttl_seconds = 300.0;                     ///< <= 0: no expiry
    /// Adaptive TTL: extra lifetime granted per second of the entry's
    /// recorded solve cost (ttl = ttl_seconds + cost * factor), so an
    /// expensive exact solve replicates longer than a cheap heuristic
    /// answer. 0 keeps the flat TTL.
    double ttl_cost_factor = 0.0;
    /// Cap on the adaptive TTL; <= 0 means 16x the base TTL (one
    /// pathological cost must not pin an entry forever).
    double ttl_max_seconds = 0.0;
  };

  ReplicaCache() : ReplicaCache(Config()) {}
  explicit ReplicaCache(Config config);

  bool enabled() const noexcept { return capacity_bytes_ > 0; }

  /// The live entry under `key` (refreshing its LRU position), or
  /// nullopt; an expired entry is dropped and reported as a miss.
  std::optional<CachedSolution> lookup(const CanonicalHash& key,
                                       Clock::time_point now = Clock::now());

  /// True when a live entry exists; no LRU refresh, no hit/miss
  /// counting (the prefetcher's "do I already hold this?" probe).
  bool contains(const CanonicalHash& key,
                Clock::time_point now = Clock::now()) const;

  /// Inserts or refreshes `key` (the TTL restarts), then evicts LRU
  /// entries while over the byte budget. No-op when disabled.
  void insert(const CanonicalHash& key, CachedSolution value,
              Clock::time_point now = Clock::now());

  /// Drops every entry (counters are kept).
  void clear();

  ReplicaStats stats() const;
  static void write_stats_json(std::ostream& out, const ReplicaStats& stats);

 private:
  struct Entry {
    CanonicalHash key;
    CachedSolution value;
    std::size_t bytes = 0;
    Clock::time_point expires_at;  ///< max() when the TTL is disabled
  };

  Clock::time_point expiry_for(Clock::time_point now,
                               double cost_seconds) const noexcept;

  const std::size_t capacity_bytes_;
  const double ttl_seconds_;
  const double ttl_cost_factor_;
  const double ttl_max_seconds_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<CanonicalHash, std::list<Entry>::iterator, CanonicalKeyHasher>
      index_;
  std::size_t bytes_ = 0;
  ReplicaStats stats_;
};

}  // namespace prts::service
