// The solve service's solution cache (second layer of src/service/): an
// N-shard LRU keyed by 128-bit canonical request hashes.
//
// Sharding: a key lives in shard hi % shards, each shard owning its own
// mutex, map and LRU list, so concurrent lookups from the request
// engine's workers contend only when they land in one shard. Capacity
// is byte-bounded (estimated entry footprint), split evenly across
// shards; eviction is per-shard LRU, or cost-aware (Retention::kCost):
// among the least-recently-used tail the entry with the cheapest
// recorded solve time goes first, so expensive exact solves outlive
// cheap heuristic answers under pressure.
//
// Entries store solutions in *canonical* processor space (see
// service/canonical.hpp) — the engine translates to request labels on
// the way out — and negative results ("these bounds are infeasible for
// this solver") are cached too, so repeated infeasible probes of a
// design-space exploration stay cheap.
//
// Persistence, two formats sharing one entry line codec:
//   - save_tsv/load_tsv: one entry per line, every double in
//     canonical_number shortest round-trip form, so a reloaded cache
//     replays bit-identical solutions;
//   - save_binary/load_binary: the compact "PRTS1" snapshot — an index
//     header mapping hash -> (offset, length) followed by the entry
//     lines as blobs, so a fabric node can selectively load just the
//     keys of its own shard (seek per index entry, O(1) per key,
//     nothing else is read or parsed).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "service/canonical.hpp"
#include "solver/solver.hpp"

namespace prts::service {

/// A cached answer: the canonical-space solution, or nullopt for a
/// cached "no feasible mapping under these bounds", plus the wall-clock
/// cost of the solve that produced it (the cost-aware retention
/// weight; 0 when unknown, e.g. legacy warm-start files).
struct CachedSolution {
  std::optional<solver::Solution> solution;
  double cost_seconds = 0.0;
};

/// Aggregated counters (summed over shards; a snapshot, not a fence).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;
  std::size_t shards = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Estimated in-memory footprint of one entry (key + metrics + mapping
/// vectors); the unit the byte bound is accounted in.
std::size_t cached_solution_bytes(const CachedSolution& value) noexcept;

/// One entry as a TSV line (no trailing newline):
///   <hash-hex> <feasible> <boundaries,> <procs;,> [<9 metric fields>]
///   <cost>
/// The codec shared by the TSV file, the PRTS1 blobs, and the wire
/// replies of service/wire.hpp.
std::string encode_cache_entry(const CanonicalHash& key,
                               const CachedSolution& value);

/// Parses encode_cache_entry output (legacy lines without the cost
/// field load with cost 0). False with a reason on malformed input.
bool parse_cache_entry(std::string_view line, CanonicalHash& key,
                       CachedSolution& value, std::string& error);

class ShardedSolutionCache {
 public:
  /// Eviction order within a shard once the byte budget is exceeded.
  enum class Retention {
    kLru,   ///< strict least-recently-used
    kCost,  ///< cheapest solve among the LRU tail window goes first
  };

  struct Config {
    std::size_t shards = 16;                        ///< clamped to >= 1
    std::size_t capacity_bytes = 64 * 1024 * 1024;  ///< across all shards
    Retention retention = Retention::kLru;
    /// kCost examines this many tail entries per eviction (bounded so
    /// eviction stays O(1)-ish rather than a full shard scan).
    std::size_t cost_window = 8;
  };

  ShardedSolutionCache() : ShardedSolutionCache(Config()) {}
  explicit ShardedSolutionCache(Config config);

  /// The entry under `key` (refreshing its LRU position), or nullopt.
  std::optional<CachedSolution> lookup(const CanonicalHash& key);

  /// lookup() without side effects: no LRU refresh, no hit/miss
  /// counting. Serves the fabric's replica-fetch frames, which must not
  /// distort the owner's recency order or hit-rate statistics.
  std::optional<CachedSolution> peek(const CanonicalHash& key) const;

  /// peek() without the entry copy — the gossip digest's "is this key
  /// still fetchable?" filter.
  bool contains(const CanonicalHash& key) const;

  /// Inserts or refreshes `key`; evicts entries of the shard while it
  /// is over its byte budget (never the entry just inserted — a single
  /// oversized entry is kept and evicted by the next insertion).
  void insert(const CanonicalHash& key, CachedSolution value);

  /// Drops every entry (counters are kept).
  void clear();

  CacheStats stats() const;

  /// Writes every entry as one encode_cache_entry line. Shard iteration
  /// order; not sorted (the reload order is irrelevant).
  void save_tsv(std::ostream& out) const;

  struct LoadResult {
    std::size_t loaded = 0;   ///< entries inserted
    std::size_t skipped = 0;  ///< entries rejected by the filter
    std::string error;        ///< first malformed input, empty when clean
  };

  /// Inserts every well-formed line of a save_tsv stream; stops at the
  /// first malformed line and reports it (entries before it are kept).
  LoadResult load_tsv(std::istream& in);

  /// Writes the compact binary snapshot:
  ///   "PRTS1\n" u8 version u8 reserved u64le count
  ///   count * { u64le hi, u64le lo, u64le offset, u32le length }
  ///   blobs (encode_cache_entry lines, no newline)
  void save_binary(std::ostream& out) const;

  /// Loads a save_binary snapshot. When `filter` is set only keys it
  /// accepts are read — the index is scanned, everything else is
  /// skipped without touching its bytes (selective shard load). The
  /// stream must be seekable.
  LoadResult load_binary(
      std::istream& in,
      const std::function<bool(const CanonicalHash&)>& filter = {});

  /// Writes the stats snapshot as one JSON object.
  static void write_stats_json(std::ostream& out, const CacheStats& stats);

 private:
  struct Entry {
    CanonicalHash key;
    CachedSolution value;
    std::size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<CanonicalHash, std::list<Entry>::iterator, CanonicalKeyHasher>
        index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_of(const CanonicalHash& key) noexcept {
    return shards_[key.hi % shards_.size()];
  }
  const Shard& shard_of(const CanonicalHash& key) const noexcept {
    return shards_[key.hi % shards_.size()];
  }

  /// Drops one entry chosen by the retention policy (shard lock held;
  /// the shard has >= 2 entries).
  void evict_one(Shard& shard);

  std::vector<Shard> shards_;  // sized once in the ctor, never resized
  std::size_t per_shard_capacity_;
  Retention retention_;
  std::size_t cost_window_;
};

/// Replica-tier counters (monotonic except entries/bytes snapshots).
struct ReplicaStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;    ///< dropped for the byte budget
  std::uint64_t expirations = 0;  ///< dropped because the TTL lapsed
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;
};

/// The fabric's replica tier: a bounded, TTL'd LRU of *remote-shard*
/// answers kept on the requesting rank, so repeat hits on a peer's keys
/// stop paying the network round trip. Entries are immutable (a
/// canonical key fully determines its solution), so there is no
/// invalidation protocol — only the TTL, which bounds how long a rank
/// serves a key after its owner forgot it (capacity-evicted it), keeping
/// the fabric's effective working set fresh.
///
/// Expiry is lazy (checked on lookup) against caller-supplied
/// timestamps, defaulting to steady_clock::now() — tests inject times
/// instead of sleeping. A zero byte capacity disables the tier; a
/// non-positive TTL means entries never expire.
class ReplicaCache {
 public:
  using Clock = std::chrono::steady_clock;

  struct Config {
    std::size_t capacity_bytes = 16 * 1024 * 1024;  ///< 0 disables
    double ttl_seconds = 300.0;                     ///< <= 0: no expiry
  };

  ReplicaCache() : ReplicaCache(Config()) {}
  explicit ReplicaCache(Config config);

  bool enabled() const noexcept { return capacity_bytes_ > 0; }

  /// The live entry under `key` (refreshing its LRU position), or
  /// nullopt; an expired entry is dropped and reported as a miss.
  std::optional<CachedSolution> lookup(const CanonicalHash& key,
                                       Clock::time_point now = Clock::now());

  /// True when a live entry exists; no LRU refresh, no hit/miss
  /// counting (the prefetcher's "do I already hold this?" probe).
  bool contains(const CanonicalHash& key,
                Clock::time_point now = Clock::now()) const;

  /// Inserts or refreshes `key` (the TTL restarts), then evicts LRU
  /// entries while over the byte budget. No-op when disabled.
  void insert(const CanonicalHash& key, CachedSolution value,
              Clock::time_point now = Clock::now());

  /// Drops every entry (counters are kept).
  void clear();

  ReplicaStats stats() const;
  static void write_stats_json(std::ostream& out, const ReplicaStats& stats);

 private:
  struct Entry {
    CanonicalHash key;
    CachedSolution value;
    std::size_t bytes = 0;
    Clock::time_point expires_at;  ///< max() when the TTL is disabled
  };

  Clock::time_point expiry_for(Clock::time_point now) const noexcept;

  const std::size_t capacity_bytes_;
  const double ttl_seconds_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<CanonicalHash, std::list<Entry>::iterator, CanonicalKeyHasher>
      index_;
  std::size_t bytes_ = 0;
  ReplicaStats stats_;
};

}  // namespace prts::service
