// The solve service's line protocol: a text request stream driving
// SolveService, used by `prts_cli serve` (file or stdin) and testable
// against string streams.
//
// Request stream (line oriented, '#' comments and blank lines skipped):
//   instance <name>          begin an inline instance definition; the
//     <instance text>        following lines up to a lone 'end' are
//   end                      parsed with model/serialize.hpp
//   load <name> <path>       define an instance from a file
//   solve <name> <solver> <period|inf> <latency|inf>
//         [deadline=<seconds>] [policy=reject|downgrade]
//                            submit a request (ids count from 0)
//   stats                    emit '# engine ...' / '# hits ...' (per-tier
//                            breakdown: exact / dominating / warm_start /
//                            miss) / '# near_miss N' / '# cache ...' JSON
//   stats --json             one '# stats-json {...}' line: the merged
//                            document (engine/hits/cache, router/replica/
//                            net_clients when fabric, telemetry registry
//                            + watchdog verdict when on)
//   metrics                  prometheus text exposition between
//                            '# metrics begin' and '# metrics end'
//   trace <hex-id>           render one trace: a '# trace ...' header
//                            plus one '# span ...' line per hop (or
//                            '# trace <id> not-found')
//   traces [limit]           one '# trace-entry ...' line per recent
//                            trace, newest first (default 32)
//   slowlog [limit]          one '# trace-entry ...' line per slow
//                            trace, newest first (default 32)
//   timeseries [n]           flight-recorder window: a '# timeseries
//                            ticks=<total> window=<k>' header, one
//                            '# tick seq=.. t=.. dt=.. {json}' line per
//                            tick (oldest first; whole ring when n is
//                            omitted), then '# timeseries end'
//   checkpoint               one synchronous cache snapshot via the
//                            wired Checkpointer: a '# checkpoint
//                            {...}' JSON line (ok/path/entries/bytes),
//                            or an error when checkpointing is off
//   sync                     flush: print every pending reply in
//                            submission order (EOF implies a sync)
//
// Reply lines are TSV, one per request, in submission order:
//   <id> <status> <hit> <dedup> <down> <solver> <failure>
//   <worst_period> <worst_latency> <mapping>
// where <mapping> uses the CLI's "last:proc,proc;..." form and '-'
// stands for not-applicable fields. Protocol errors are reported as
// '# error ...' lines and counted; the stream keeps going.
#pragma once

#include <iosfwd>
#include <limits>

#include "service/engine.hpp"

namespace prts::service {

class ShardRouter;
class Checkpointer;

struct ServeOptions {
  /// Deadline applied to requests that do not carry deadline=...
  double default_deadline_seconds = std::numeric_limits<double>::infinity();
  DeadlinePolicy default_policy = DeadlinePolicy::kDowngrade;

  /// When set, solve requests are routed through the distributed
  /// fabric (local shard -> `service`, remote shards -> peers) and
  /// 'stats' additionally emits a '# router ...' JSON line.
  ShardRouter* router = nullptr;

  /// When set, the `checkpoint` command snapshots the cache through it
  /// (the background interval timer, if any, runs independently).
  Checkpointer* checkpointer = nullptr;
};

struct ServeResult {
  std::size_t requests = 0;
  std::size_t protocol_errors = 0;
};

/// Runs one request stream to EOF against the service.
ServeResult run_serve(std::istream& in, std::ostream& out,
                      SolveService& service, const ServeOptions& options = {});

/// One merged JSON stats document:
///   {"engine":..,"hits":..,"cache":..
///    [,"router":..,"replica":..,"net_clients":{"rank<r>":{..}}]
///    [,"membership":..  — elastic routers only]
///    [,"telemetry":<registry JSON>,"watchdog":<stall verdict>]}
/// — the payload of `stats --json` and of the fabric's kStatsRequest.
void write_merged_stats_json(std::ostream& out, SolveService& service,
                             ShardRouter* router);

/// Prometheus text exposition: the telemetry registry (when the service
/// has one) plus prts_engine_* / prts_router_* counter lines derived
/// from the stats snapshots — the monotone counters a scraper needs
/// exist even with telemetry off. Payload of the `metrics` command and
/// of the fabric's kMetricsRequest.
void write_metrics_text(std::ostream& out, SolveService& service,
                        ShardRouter* router);

}  // namespace prts::service
