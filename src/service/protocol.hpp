// The solve service's line protocol: a text request stream driving
// SolveService, used by `prts_cli serve` (file or stdin) and testable
// against string streams.
//
// Request stream (line oriented, '#' comments and blank lines skipped):
//   instance <name>          begin an inline instance definition; the
//     <instance text>        following lines up to a lone 'end' are
//   end                      parsed with model/serialize.hpp
//   load <name> <path>       define an instance from a file
//   solve <name> <solver> <period|inf> <latency|inf>
//         [deadline=<seconds>] [policy=reject|downgrade]
//                            submit a request (ids count from 0)
//   stats                    emit '# engine ...' / '# hits ...' (per-tier
//                            breakdown: exact / dominating / warm_start /
//                            miss) / '# near_miss N' / '# cache ...' JSON
//   sync                     flush: print every pending reply in
//                            submission order (EOF implies a sync)
//
// Reply lines are TSV, one per request, in submission order:
//   <id> <status> <hit> <dedup> <down> <solver> <failure>
//   <worst_period> <worst_latency> <mapping>
// where <mapping> uses the CLI's "last:proc,proc;..." form and '-'
// stands for not-applicable fields. Protocol errors are reported as
// '# error ...' lines and counted; the stream keeps going.
#pragma once

#include <iosfwd>
#include <limits>

#include "service/engine.hpp"

namespace prts::service {

class ShardRouter;

struct ServeOptions {
  /// Deadline applied to requests that do not carry deadline=...
  double default_deadline_seconds = std::numeric_limits<double>::infinity();
  DeadlinePolicy default_policy = DeadlinePolicy::kDowngrade;

  /// When set, solve requests are routed through the distributed
  /// fabric (local shard -> `service`, remote shards -> peers) and
  /// 'stats' additionally emits a '# router ...' JSON line.
  ShardRouter* router = nullptr;
};

struct ServeResult {
  std::size_t requests = 0;
  std::size_t protocol_errors = 0;
};

/// Runs one request stream to EOF against the service.
ServeResult run_serve(std::istream& in, std::ostream& out,
                      SolveService& service, const ServeOptions& options = {});

}  // namespace prts::service
