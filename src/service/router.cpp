#include "service/router.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "net/frame.hpp"
#include "service/protocol.hpp"

namespace prts::service {
namespace {

using Clock = std::chrono::steady_clock;

/// Seconds between two steady-clock points, floored at zero.
double seconds_since(Clock::time_point from, Clock::time_point to) noexcept {
  const double elapsed = std::chrono::duration<double>(to - from).count();
  return elapsed < 0.0 ? 0.0 : elapsed;
}

/// The owner serves at most this many keys per kReplicaFetch frame — a
/// hostile or buggy peer must not turn one fetch into a whole-cache
/// dump.
constexpr std::size_t kMaxFetchKeys = 1024;

/// Hot-key hit counts tracked between gossip rounds are capped so the
/// map stays bounded even when gossip never runs to clear it.
constexpr std::size_t kMaxTrackedHotKeys = 4096;

/// Config invariants the rest of the router leans on, applied before
/// any member (the Membership in particular) is constructed from it.
RouterConfig normalize(RouterConfig config) {
  if (config.world_size == 0) config.world_size = 1;
  config.membership.self_rank = config.rank;
  if (config.advertise.host.empty()) config.advertise.host = "127.0.0.1";
  return config;
}

}  // namespace

net::FrameHandler make_fabric_handler(SolveService& service,
                                      std::function<ShardRouter*()> router) {
  return [&service, router = std::move(router)](
             const net::Frame& request) -> std::optional<net::Frame> {
    net::Frame reply;
    switch (request.type) {
      case net::FrameType::kPing:
        reply.type = net::FrameType::kPong;
        reply.payload = request.payload;
        return reply;
      case net::FrameType::kStatsRequest: {
        std::ostringstream out;
        write_merged_stats_json(out, service, router ? router() : nullptr);
        reply.type = net::FrameType::kStatsReply;
        reply.payload = out.str();
        return reply;
      }
      case net::FrameType::kSolveRequest: {
        std::string error;
        auto decoded = decode_wire_request(request.payload, error);
        if (!decoded) {
          reply.type = net::FrameType::kError;
          reply.payload = "bad solve request: " + error;
          return reply;
        }
        // Blocking wait: one frame in flight per connection, and the
        // FrameServer runs this on its own pool.
        SolveReply answer = service.submit(std::move(*decoded)).get();
        // Peer traffic is what makes an owned key hot — feed the
        // gossip digest. And under elastic membership, an answer for a
        // key the ring has since assigned elsewhere is copied to its
        // new owner (the handoff-window double-write).
        if (ShardRouter* owner = router ? router() : nullptr) {
          owner->note_owned_hit(answer.key);
          owner->maybe_double_write(answer.key);
        }
        // Ship this rank's spans back so the origin can merge them
        // into the one trace the request travels under. The local
        // tracer keeps its copy — `trace <id>` resolves on either
        // rank.
        if (obs::Telemetry* telemetry = service.telemetry();
            telemetry != nullptr && answer.trace_id != 0) {
          obs::Trace trace;
          if (telemetry->tracer.find(answer.trace_id, trace)) {
            answer.remote_spans = std::move(trace.spans);
          }
        }
        reply.type = net::FrameType::kSolveReply;
        reply.payload = encode_wire_reply(answer);
        return reply;
      }
      case net::FrameType::kMetricsRequest: {
        // Any rank can scrape any other: the full text exposition of
        // this rank's registry (plus the engine/router counter sets).
        std::ostringstream out;
        write_metrics_text(out, service, router ? router() : nullptr);
        reply.type = net::FrameType::kMetricsReply;
        reply.payload = out.str();
        return reply;
      }
      case net::FrameType::kGossipDigest: {
        std::string error;
        auto digest = decode_gossip_digest(request.payload, error);
        if (!digest) {
          reply.type = net::FrameType::kError;
          reply.payload = "bad gossip digest: " + error;
          return reply;
        }
        if (ShardRouter* receiver = router ? router() : nullptr) {
          receiver->handle_gossip_digest(std::move(*digest));
        }
        // Ack even without a router: gossip is advisory, and the
        // sender only wants to know the frame arrived.
        reply.type = net::FrameType::kPong;
        return reply;
      }
      case net::FrameType::kReplicaFetch: {
        std::string error;
        const auto keys = decode_replica_fetch(request.payload, error);
        if (!keys) {
          reply.type = net::FrameType::kError;
          reply.payload = "bad replica fetch: " + error;
          return reply;
        }
        std::vector<std::pair<CanonicalHash, CachedSolution>> entries;
        const std::size_t served = std::min(keys->size(), kMaxFetchKeys);
        for (std::size_t i = 0; i < served; ++i) {
          // peek: a prefetch must not distort the owner's LRU order or
          // hit-rate counters. Missing keys are silently skipped (the
          // fetch is best-effort).
          if (auto value = service.cache().peek((*keys)[i])) {
            entries.emplace_back((*keys)[i], std::move(*value));
          }
        }
        reply.type = net::FrameType::kReplicaFetchReply;
        reply.payload = encode_replica_entries(entries);
        return reply;
      }
      case net::FrameType::kJoinRequest:
      case net::FrameType::kMembershipUpdate:
      case net::FrameType::kHandoffBegin:
      case net::FrameType::kHandoffChunk:
      case net::FrameType::kHandoffDone: {
        // The elastic-membership frame families belong to the router
        // (the Membership merge rules + handoff bookkeeping live
        // there). A node without one cannot host a fleet.
        if (ShardRouter* member = router ? router() : nullptr) {
          return member->handle_fabric_frame(request);
        }
        reply.type = net::FrameType::kError;
        reply.payload = "membership disabled";
        return reply;
      }
      default:
        reply.type = net::FrameType::kError;
        reply.payload = "unexpected frame type";
        return reply;
    }
  };
}

std::optional<std::vector<PeerAddress>> parse_peer_list(
    const std::string& text) {
  std::vector<PeerAddress> peers;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(start, comma - start);
    const std::size_t colon = entry.rfind(':');
    if (entry.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      return std::nullopt;
    }
    PeerAddress peer;
    peer.host = entry.substr(0, colon);
    const std::string port_text = entry.substr(colon + 1);
    unsigned long port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    // Full consumption: "76o1" must be rejected, not parsed as 76.
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port == 0 || port > 65535) {
      return std::nullopt;
    }
    peer.port = static_cast<std::uint16_t>(port);
    peers.push_back(std::move(peer));
    start = comma + 1;
  }
  return peers;
}

ShardRouter::ShardRouter(SolveService& service, RouterConfig config)
    : service_(service),
      config_(normalize(std::move(config))),
      membership_(config_.membership),
      replicas_(config_.replica),
      forward_pool_(std::max<std::size_t>(1, config_.forward_threads)) {
  if (config_.telemetry != nullptr) {
    obs::Registry& metrics = config_.telemetry->metrics;
    wire_hist_ = &metrics.histogram("router_wire_seconds");
    router_latency_hist_ = &metrics.histogram("router_request_latency_seconds");
    inflight_gauge_ = &metrics.gauge("router_inflight_forwards");
    prof_wire_ = &config_.telemetry->profiler.component("wire_round_trip");
    prof_replica_ = &config_.telemetry->profiler.component("replica_lookup");
    inflight_probe_ = obs::ProfiledMutex::make_probe(metrics, "router_inflight");
    mutex_.attach(&inflight_probe_);
    if (config_.elastic) {
      epoch_gauge_ = &metrics.gauge("membership_epoch");
      members_gauge_ = &metrics.gauge("membership_members");
      joins_counter_ = &metrics.counter("membership_joins_total");
      deaths_counter_ = &metrics.counter("membership_deaths_total");
      suspects_counter_ = &metrics.counter("membership_suspects_total");
      handoff_entries_sent_counter_ =
          &metrics.counter("handoff_entries_sent_total");
      handoff_entries_received_counter_ =
          &metrics.counter("handoff_entries_received_total");
      handoff_chunk_hist_ = &metrics.histogram("handoff_chunk_seconds");
    }
  }
  if (config_.elastic) {
    // Found a fleet of one; the seed (when configured) merges us into
    // the real fleet below, or the heartbeat loop retries while alone.
    Member self;
    self.rank = config_.rank;
    self.host = config_.advertise.host;
    self.port = config_.advertise.port;
    membership_.bootstrap({std::move(self)});
    publish_membership_gauges();
    if (config_.join_seed) join_now();
  } else {
    // The static fabric wires every peer up front (the addresses are
    // fixed for the process lifetime).
    for (std::size_t r = 0; r < config_.world_size; ++r) {
      if (r != config_.rank) client_for(r);
    }
  }

  // The fabric timer: gossip rounds on a static router, heartbeat
  // rounds (+ gossip, when due) on an elastic one.
  const double interval_seconds = config_.elastic
                                      ? config_.heartbeat_interval_seconds
                                      : config_.gossip_interval_seconds;
  const bool want_timer =
      interval_seconds > 0.0 && (config_.elastic || config_.world_size > 1);
  if (want_timer) {
    if (config_.telemetry != nullptr) {
      if (config_.elastic) {
        membership_heartbeat_ = &config_.telemetry->watchdog.component(
            "router_membership", interval_seconds);
      } else {
        gossip_heartbeat_ = &config_.telemetry->watchdog.component(
            "router_gossip", config_.gossip_interval_seconds);
      }
    }
    gossip_thread_ = std::thread([this, interval_seconds] {
      const std::chrono::duration<double> interval(interval_seconds);
      Clock::time_point last_gossip = Clock::now();
      std::unique_lock<std::mutex> lock(gossip_mutex_);
      while (!gossip_stop_) {
        if (gossip_cv_.wait_for(lock, interval,
                                [this] { return gossip_stop_; })) {
          break;
        }
        lock.unlock();
        if (config_.elastic) {
          heartbeat_now();
          if (membership_heartbeat_ != nullptr) membership_heartbeat_->beat();
          // Gossip piggybacks on the heartbeat timer: run a round
          // whenever its own (usually longer) interval has lapsed.
          if (config_.gossip_interval_seconds > 0.0 &&
              seconds_since(last_gossip, Clock::now()) >=
                  config_.gossip_interval_seconds) {
            gossip_now();
            last_gossip = Clock::now();
          }
        } else {
          gossip_now();
          if (gossip_heartbeat_ != nullptr) gossip_heartbeat_->beat();
        }
        lock.lock();
      }
    });
  }
}

ShardRouter::~ShardRouter() {
  {
    const std::lock_guard<std::mutex> lock(gossip_mutex_);
    gossip_stop_ = true;
  }
  gossip_cv_.notify_all();
  if (gossip_thread_.joinable()) gossip_thread_.join();
}  // forward_pool_ then drains forwards, prefetches and handoffs

net::MuxFrameClient* ShardRouter::client_for(std::size_t rank) {
  if (rank == config_.rank) return nullptr;
  PeerAddress address;
  if (config_.elastic) {
    const auto member = membership_.member(rank);
    if (!member || member->port == 0) return nullptr;
    address.host = member->host.empty() ? "127.0.0.1" : member->host;
    address.port = member->port;
  } else {
    if (rank >= config_.peers.size()) return nullptr;
    address = config_.peers[rank];
    if (address.port == 0) return nullptr;
  }
  {
    const std::lock_guard<std::mutex> lock(clients_mutex_);
    const auto it = clients_.find(rank);
    if (it != clients_.end()) {
      if (it->second->host() == address.host &&
          it->second->port() == address.port) {
        return it->second.get();
      }
      // The member restarted on a new address: retire (not destroy —
      // an in-flight exchange may still be blocked inside) and rewire.
      retired_clients_.push_back(std::move(it->second));
      clients_.erase(it);
    }
  }
  net::FrameClientConfig client_config = config_.client;
  if (config_.telemetry != nullptr) {
    // Per-peer counter families: suspect churn toward rank 2 must be
    // attributable to rank 2, not smeared across the fabric. A rewired
    // client re-registers the same family — the counters just continue.
    client_config.metrics = &config_.telemetry->metrics;
    client_config.metrics_prefix =
        "net_client_rank" + std::to_string(rank) + "_";
  }
  auto created = std::make_unique<net::MuxFrameClient>(
      address.host, address.port, std::move(client_config));
  const std::lock_guard<std::mutex> lock(clients_mutex_);
  // emplace keeps the incumbent on a create race; the loser is simply
  // destroyed (it has no traffic yet).
  const auto [it, inserted] = clients_.emplace(rank, std::move(created));
  return it->second.get();
}

net::MuxFrameClient* ShardRouter::client_lookup(std::size_t rank) const {
  const std::lock_guard<std::mutex> lock(clients_mutex_);
  const auto it = clients_.find(rank);
  return it == clients_.end() ? nullptr : it->second.get();
}

std::vector<std::size_t> ShardRouter::peer_ranks() const {
  std::vector<std::size_t> ranks;
  if (config_.elastic) {
    for (const Member& member : membership_.view().members) {
      if (member.rank != config_.rank) ranks.push_back(member.rank);
    }
  } else {
    for (std::size_t r = 0; r < config_.world_size; ++r) {
      if (r != config_.rank && r < config_.peers.size()) ranks.push_back(r);
    }
  }
  return ranks;
}

bool ShardRouter::known_rank(std::size_t rank) const {
  return config_.elastic ? membership_.contains(rank)
                         : rank < config_.world_size;
}

std::future<SolveReply> ShardRouter::submit(SolveRequest request) {
  if (!distributed()) {
    {
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      ++stats_.local;
    }
    return service_.submit(std::move(request));
  }

  auto canonical = std::make_shared<const CanonicalInstance>(
      canonicalize(request.instance));
  const CanonicalHash key =
      request_key(*canonical, request.solver, request.bounds);
  const std::size_t owner = shard_of(key);
  net::MuxFrameClient* const owner_client =
      owner == config_.rank ? nullptr : client_for(owner);

  if (owner == config_.rank || owner_client == nullptr) {
    note_owned_hit(key);
    {
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      ++stats_.local;
    }
    // The canonical form was already computed to pick the shard; the
    // engine must not pay for it twice.
    return service_.submit_canonicalized(std::move(request),
                                         std::move(canonical), key);
  }

  // Remote shard: the router owns this request's trace from here on.
  // Every submitter gets its OWN trace id (dedup twins included — each
  // waiter's latency story differs), minted before the replica probe so
  // locally-absorbed hits are traced too. The engine path above never
  // reaches this: submit_canonicalized mints there.
  obs::Telemetry* const telemetry = config_.telemetry;
  const Clock::time_point arrival = Clock::now();
  if (telemetry != nullptr) {
    const std::string label = request.solver + ":" + to_hex(key);
    if (request.trace_id == 0) {
      request.trace_id = telemetry->tracer.start(label);
    } else {
      telemetry->tracer.start_with_id(request.trace_id, label);
    }
  }

  // Replica tier: a repeat hit on a peer's key that was forwarded (or
  // prefetched) before is answered here, with the same per-waiter label
  // translation a cache hit gets — no network round trip.
  if (replicas_.enabled()) {
    std::optional<obs::ScopedSample> replica_sample;
    if (telemetry != nullptr && telemetry->profiler.enabled()) {
      replica_sample.emplace();
    }
    if (auto cached = replicas_.lookup(key)) {
      {
        const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
        ++stats_.replica_hits;
      }
      SolveReply reply;
      reply.key = key;
      reply.cache_hit = true;
      reply.solver_used = request.solver;
      if (cached->solution) {
        reply.status = ReplyStatus::kSolved;
        reply.solution = to_original_labels(*cached->solution, *canonical);
      } else {
        reply.status = ReplyStatus::kInfeasible;
      }
      if (telemetry != nullptr && request.trace_id != 0) {
        const double elapsed = seconds_since(arrival, Clock::now());
        const obs::WorkSample work =
            replica_sample ? replica_sample->finish() : obs::WorkSample{};
        if (replica_sample) obs::Profiler::record(*prof_replica_, work);
        obs::Span span;
        span.name = "replica_lookup";
        span.rank = static_cast<int>(config_.rank);
        span.duration_seconds = elapsed;
        span.cpu_seconds = work.cpu_seconds < elapsed ? work.cpu_seconds
                                                      : elapsed;
        span.alloc_count = work.alloc_count;
        span.alloc_bytes = work.alloc_bytes;
        telemetry->tracer.record(request.trace_id, std::move(span));
        telemetry->tracer.finish(request.trace_id, elapsed);
        if (router_latency_hist_ != nullptr) {
          router_latency_hist_->record(elapsed);
        }
      }
      reply.trace_id = request.trace_id;
      return ready_reply_future(std::move(reply));
    }
  }

  std::unique_lock<obs::ProfiledMutex> lock(mutex_);

  // Router-level dedup: identical remote-shard requests already being
  // forwarded get a waiter on the same exchange.
  if (const auto it = in_flight_.find(key); it != in_flight_.end()) {
    ++stats_.deduplicated;
    it->second->waiters.push_back(
        ForwardWaiter{{}, canonical, request.deadline_seconds,
                      request.deadline_policy, true, request.trace_id,
                      arrival});
    return it->second->waiters.back().promise.get_future();
  }

  auto forward = std::make_shared<Forward>();
  forward->canonical = canonical;
  forward->bounds = request.bounds;
  forward->solver = request.solver;
  // Best local near-miss for the forwarded key: replicated, prefetched
  // and fallback-solved entries of this instance live in the local
  // cache's bounds index even though the key's owner is remote. The
  // owner prunes with the hint; the answer bytes cannot change.
  if (service_.config().cache_enabled && service_.config().near_miss) {
    const CanonicalHash bkey = batch_key(*canonical, request.solver);
    if (auto feasible =
            service_.cache().find_feasible(bkey, request.bounds)) {
      if (feasible->solution) {
        solver::WarmStart hint;
        hint.reliability_floor_log =
            feasible->solution->metrics.reliability.log();
        hint.incumbent = std::move(feasible->solution);
        forward->warm = std::move(hint);
      }
    }
  }
  forward->deadline_seconds = request.deadline_seconds;
  forward->deadline_policy = request.deadline_policy;
  forward->key = key;
  forward->owner_rank = owner;
  forward->trace_id = request.trace_id;
  forward->waiters.push_back(ForwardWaiter{{}, canonical,
                                           request.deadline_seconds,
                                           request.deadline_policy, false,
                                           request.trace_id, arrival});
  std::future<SolveReply> future =
      forward->waiters.back().promise.get_future();
  in_flight_.emplace(key, forward.get());
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->set(static_cast<double>(in_flight_.size()));
  }
  lock.unlock();

  auto task = forward_pool_.submit(
      [this, forward]() mutable { run_forward(std::move(forward)); });
  // A shut-down pool never runs the task; answer the waiters here
  // rather than leaving broken promises behind.
  if (task.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    try {
      task.get();
    } catch (...) {
      run_forward(std::move(forward));
    }
  }
  return future;
}

void ShardRouter::run_forward(std::shared_ptr<Forward> forward) {
  // Resolved at run time, not submit time: under elastic membership the
  // owner may have died (or been rewired) since the forward was queued.
  // A vanished client degrades to the failover path below, exactly like
  // an unreachable peer.
  net::MuxFrameClient* const client = client_for(forward->owner_rank);

  // The forwarded request carries the *canonical* instance, so the
  // owner's reply is already in canonical labels — each waiter then
  // translates into its own processor labels, exactly like the local
  // engine does for deduplicated twins.
  SolveRequest remote_request{forward->canonical->instance, forward->solver,
                              forward->bounds, forward->deadline_seconds,
                              forward->deadline_policy, forward->warm};
  // The first submitter's trace id rides on the wire; the owner records
  // its engine spans under it and ships them back in the reply.
  remote_request.trace_id = forward->trace_id;
  net::Frame frame;
  frame.type = net::FrameType::kSolveRequest;
  frame.payload = encode_wire_request(remote_request);

  obs::Telemetry* const telemetry = config_.telemetry;
  const Clock::time_point wire_start = Clock::now();
  // Dual-clock sample over the exchange: nearly all of it is blocked
  // time (the forward thread waits on the peer), which is exactly what
  // distinguishes a slow peer from a slow local solver in the profile.
  std::optional<obs::ScopedSample> wire_sample;
  if (telemetry != nullptr && telemetry->profiler.enabled()) {
    wire_sample.emplace();
  }
  std::optional<SolveReply> remote;
  if (client != nullptr) {
    if (const auto reply_frame = client->call(frame)) {
      if (reply_frame->type == net::FrameType::kSolveReply) {
        std::string error;
        remote = decode_wire_reply(reply_frame->payload, error);
      }
    }
  }
  const double wire_seconds = seconds_since(wire_start, Clock::now());
  const obs::WorkSample wire_work =
      wire_sample ? wire_sample->finish() : obs::WorkSample{};
  if (wire_sample) obs::Profiler::record(*prof_wire_, wire_work);
  if (wire_hist_ != nullptr) wire_hist_->record(wire_seconds);

  // A remote answer is only authoritative when the owner actually
  // answered the question; rejections and errors degrade to a local
  // solve just like an unreachable peer.
  const bool answered =
      remote && (remote->status == ReplyStatus::kSolved ||
                 remote->status == ReplyStatus::kInfeasible);

  if (answered) {
    // Replicate: the next repeat hit on this key is served locally
    // until the TTL lapses (the entry is immutable, so the copy can
    // never go stale — only old). The recorded solve cost rides along
    // so the adaptive TTL can keep expensive answers longer.
    if (replicas_.enabled()) {
      replicas_.insert(forward->key, CachedSolution{remote->solution,
                                                    remote->cost_seconds});
    }
    std::vector<ForwardWaiter> waiters;
    {
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      in_flight_.erase(forward->key);
      if (inflight_gauge_ != nullptr) {
        inflight_gauge_->set(static_cast<double>(in_flight_.size()));
      }
      waiters = std::move(forward->waiters);
      ++stats_.forwarded;
      if (remote->cache_hit) ++stats_.forward_hits;
    }
    const Clock::time_point finished_at = Clock::now();
    for (ForwardWaiter& waiter : waiters) {
      SolveReply reply;
      reply.status = remote->status;
      reply.cache_hit = remote->cache_hit;
      reply.near_miss = remote->near_miss;
      reply.downgraded = remote->downgraded;
      reply.deduplicated = waiter.deduplicated;
      reply.solver_used = remote->solver_used;
      reply.cost_seconds = remote->cost_seconds;
      reply.key = forward->key;
      if (remote->solution) {
        reply.solution =
            to_original_labels(*remote->solution, *waiter.canonical);
      }
      if (telemetry != nullptr && waiter.trace_id != 0) {
        // Each waiter's spans are offsets from ITS submit point. The
        // owner's spans came back as offsets from the owner's submit
        // point; shifting them by this waiter's wire-start offset lines
        // the two ranks' work up on one timeline (clock skew between
        // ranks is absorbed — only the origin's clock is used for
        // placement).
        const double wire_offset = seconds_since(waiter.submitted, wire_start);
        obs::Span wire_span;
        wire_span.name = "wire_round_trip";
        wire_span.rank = static_cast<int>(config_.rank);
        wire_span.start_seconds = wire_offset;
        wire_span.duration_seconds = wire_seconds;
        wire_span.cpu_seconds = wire_work.cpu_seconds < wire_seconds
                                    ? wire_work.cpu_seconds
                                    : wire_seconds;
        wire_span.alloc_count = wire_work.alloc_count;
        wire_span.alloc_bytes = wire_work.alloc_bytes;
        telemetry->tracer.record(waiter.trace_id, std::move(wire_span));
        for (const obs::Span& span : remote->remote_spans) {
          obs::Span shifted = span;
          shifted.start_seconds += wire_offset;
          telemetry->tracer.record(waiter.trace_id, std::move(shifted));
        }
        const double total = seconds_since(waiter.submitted, finished_at);
        telemetry->tracer.finish(waiter.trace_id, total);
        if (router_latency_hist_ != nullptr) {
          router_latency_hist_->record(total);
        }
      }
      reply.trace_id = waiter.trace_id;
      waiter.promise.set_value(std::move(reply));
    }
    return;
  }

  // Failover: solve locally, exactly once. Every waiter is re-submitted
  // with its *own* deadline options (a patient twin must not be
  // rejected on an impatient stranger's policy — the engine handles
  // mixed policies per waiter); the engine's in-flight dedup and cache
  // collapse the N submissions into a single solve. The degraded
  // request *is* the canonical instance (canonicalization is
  // idempotent), so every engine reply speaks canonical labels and the
  // local cache fills under the same key a recovered owner would use.
  std::vector<ForwardWaiter> waiters;
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    in_flight_.erase(forward->key);
    if (inflight_gauge_ != nullptr) {
      inflight_gauge_->set(static_cast<double>(in_flight_.size()));
    }
    waiters = std::move(forward->waiters);
    ++stats_.forward_failures;
    ++stats_.local_fallbacks;
  }
  // One canonicalization for all waiters: the canonical instance is a
  // fixed point, so its own canonical form is the identity translation
  // under the same key, and replies come back in canonical labels.
  auto identity = std::make_shared<const CanonicalInstance>(
      canonicalize(forward->canonical->instance));
  std::vector<std::future<SolveReply>> futures;
  futures.reserve(waiters.size());
  const Clock::time_point failover_at = Clock::now();
  for (const ForwardWaiter& waiter : waiters) {
    // Charge the dead wire exchange against the waiter's budget: the
    // rescue solve gets what REMAINS of the deadline, not a fresh full
    // grant. Floored at zero so an already-expired waiter hits the
    // engine's downgrade/reject policy immediately instead of burning
    // a worker on an answer nobody is waiting for.
    double remaining_seconds = waiter.deadline_seconds;
    if (std::isfinite(remaining_seconds)) {
      remaining_seconds -= seconds_since(waiter.submitted, failover_at);
      if (remaining_seconds < 0.0) remaining_seconds = 0.0;
    }
    SolveRequest local_request{forward->canonical->instance, forward->solver,
                               forward->bounds, remaining_seconds,
                               waiter.deadline_policy, forward->warm};
    // The waiter's own trace follows it onto the failover path: the
    // engine adopts the id, so the trace shows the dead wire exchange
    // AND the local rescue solve — the whole story of the request.
    local_request.trace_id = waiter.trace_id;
    if (telemetry != nullptr && waiter.trace_id != 0) {
      telemetry->tracer.record(waiter.trace_id, "forward_failover",
                               static_cast<int>(config_.rank),
                               seconds_since(waiter.submitted, wire_start),
                               wire_seconds);
    }
    futures.push_back(service_.submit_canonicalized(std::move(local_request),
                                                    identity, forward->key));
  }
  for (std::size_t i = 0; i < waiters.size(); ++i) {
    SolveReply reply = futures[i].get();
    reply.deduplicated = waiters[i].deduplicated;
    if (reply.solution) {
      reply.solution =
          to_original_labels(*reply.solution, *waiters[i].canonical);
    }
    if (telemetry != nullptr && waiters[i].trace_id != 0) {
      // The engine finished the trace with only the rescue-solve span's
      // clock; re-finish with the full router-side total (finish keeps
      // the max) and feed the router latency histogram — failover
      // requests must not vanish from the tail.
      const double total = seconds_since(waiters[i].submitted, Clock::now());
      telemetry->tracer.finish(waiters[i].trace_id, total);
      if (router_latency_hist_ != nullptr) {
        router_latency_hist_->record(total);
      }
    }
    waiters[i].promise.set_value(std::move(reply));
  }
}

void ShardRouter::note_owned_hit(const CanonicalHash& key) {
  if (!distributed() || shard_of(key) != config_.rank) return;
  const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
  if (const auto it = owned_hits_.find(key); it != owned_hits_.end()) {
    ++it->second;
    return;
  }
  // Bounded tracking window: only gossip_now() clears the map, which a
  // node with gossip disabled never runs — a long uptime over millions
  // of distinct keys must not grow it without limit. Hot keys recur, so
  // dropping first-seen keys past the cap loses nothing a digest (top-K
  // of it) would have kept.
  if (owned_hits_.size() >= kMaxTrackedHotKeys) return;
  owned_hits_.emplace(key, 1);
}

void ShardRouter::gossip_now() {
  if (!distributed()) return;
  std::vector<GossipDigest::Entry> hot;
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    hot.reserve(owned_hits_.size());
    for (const auto& [key, count] : owned_hits_) {
      if (count >= config_.gossip_min_hits) {
        hot.push_back(GossipDigest::Entry{key, count});
      }
    }
    owned_hits_.clear();
  }
  // Only announce keys a peer could actually fetch right now.
  hot.erase(std::remove_if(hot.begin(), hot.end(),
                           [this](const GossipDigest::Entry& entry) {
                             return !service_.cache().contains(entry.key);
                           }),
            hot.end());
  std::sort(hot.begin(), hot.end(),
            [](const GossipDigest::Entry& a, const GossipDigest::Entry& b) {
              return a.hits > b.hits;
            });
  if (hot.size() > config_.gossip_top_k) hot.resize(config_.gossip_top_k);
  if (hot.empty()) return;

  GossipDigest digest;
  digest.rank = config_.rank;
  digest.entries = std::move(hot);
  net::Frame frame;
  frame.type = net::FrameType::kGossipDigest;
  frame.payload = encode_gossip_digest(digest);
  for (const std::size_t r : peer_ranks()) {
    net::MuxFrameClient* const client = client_for(r);
    if (client == nullptr) continue;
    const auto ack = client->call(frame);
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    if (ack && ack->type == net::FrameType::kPong) {
      ++stats_.gossip_sent;
    } else {
      ++stats_.gossip_failures;
    }
  }
}

void ShardRouter::handle_gossip_digest(GossipDigest digest) {
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    ++stats_.gossip_received;
  }
  // Only the sender's own keys are prefetchable from the sender; a
  // digest naming an unknown rank (or this one) is ignored.
  if (digest.rank == config_.rank || !known_rank(digest.rank) ||
      !replicas_.enabled()) {
    return;
  }
  std::sort(digest.entries.begin(), digest.entries.end(),
            [](const GossipDigest::Entry& a, const GossipDigest::Entry& b) {
              return a.hits > b.hits;
            });
  std::vector<CanonicalHash> wanted;
  for (const GossipDigest::Entry& entry : digest.entries) {
    if (wanted.size() >= config_.gossip_top_k) break;
    if (shard_of(entry.key) != digest.rank) continue;
    if (replicas_.contains(entry.key)) continue;
    wanted.push_back(entry.key);
  }
  if (wanted.empty()) return;

  // Prefetch in the background: this runs on the FrameServer's
  // connection thread, and a nested blocking fetch here could deadlock
  // two ranks gossiping at each other over their shared per-peer
  // connections.
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    ++outstanding_prefetches_;
  }
  auto task = forward_pool_.submit(
      [this, owner = digest.rank, wanted = std::move(wanted)]() mutable {
        run_prefetch(owner, std::move(wanted));
      });
  // A shut-down pool never runs the task; release the bookkeeping.
  if (task.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    try {
      task.get();
    } catch (...) {
      finish_prefetch(0);
    }
  }
}

void ShardRouter::run_prefetch(std::size_t owner,
                               std::vector<CanonicalHash> keys) {
  net::Frame frame;
  frame.type = net::FrameType::kReplicaFetch;
  frame.payload = encode_replica_fetch(keys);
  std::size_t fetched = 0;
  net::MuxFrameClient* const client = client_for(owner);
  if (client != nullptr) {
    if (const auto reply = client->call(frame)) {
      if (reply->type == net::FrameType::kReplicaFetchReply) {
        std::string error;
        if (auto entries = decode_replica_entries(reply->payload, error)) {
          for (auto& [key, value] : *entries) {
            // Accept only keys this fetch asked for (and hence validated
            // as owned by `owner`) — a confused peer must not plant
            // foreign entries in the replica tier.
            if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
              continue;
            }
            replicas_.insert(key, std::move(value));
            ++fetched;
          }
        }
      }
    }
  }
  finish_prefetch(fetched);
}

void ShardRouter::finish_prefetch(std::size_t fetched) {
  const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
  stats_.prefetched += fetched;
  --outstanding_prefetches_;
  prefetch_cv_.notify_all();
}

void ShardRouter::wait_prefetches_idle() {
  std::unique_lock<obs::ProfiledMutex> lock(mutex_);
  prefetch_cv_.wait(lock, [this] { return outstanding_prefetches_ == 0; });
}

bool ShardRouter::peer_suspect(std::size_t rank) const {
  net::MuxFrameClient* const client = client_lookup(rank);
  return client != nullptr && client->suspect();
}

// --- Elastic membership -------------------------------------------------

std::uint64_t ShardRouter::epoch() const { return membership_.epoch(); }

MembershipView ShardRouter::membership_view() const {
  return membership_.view();
}

MembershipStats ShardRouter::membership_stats() const {
  MembershipStats out;
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    out = membership_stats_;
  }
  out.epoch = membership_.epoch();
  out.members = membership_.member_count();
  return out;
}

bool ShardRouter::join_now() {
  if (!config_.elastic || !config_.join_seed) return false;
  // A transient lock-step client: the join is a one-shot exchange with
  // whatever seed the operator named, not necessarily a future peer —
  // no counter family, no persistent connection.
  net::FrameClientConfig seed_config = config_.client;
  seed_config.metrics = nullptr;
  net::FrameClient seed(config_.join_seed->host, config_.join_seed->port,
                        std::move(seed_config));
  Member self;
  self.rank = config_.rank;
  self.host = config_.advertise.host;
  self.port = config_.advertise.port;
  net::Frame frame;
  frame.type = net::FrameType::kJoinRequest;
  frame.payload = encode_join_request(self);
  const auto reply = seed.call(frame);
  if (!reply || reply->type != net::FrameType::kMembershipUpdate) {
    return false;
  }
  std::string error;
  const auto update = decode_membership_update(reply->payload, error);
  if (!update) return false;
  const auto changes = membership_.handle_update(update->view);
  membership_.note_heard_from(update->from);
  apply_membership_changes(changes);
  return membership_.member_count() > 1;
}

void ShardRouter::heartbeat_now() {
  if (!config_.elastic) return;
  // A rank still alone keeps dialing its seed — an unreachable seed at
  // startup (rolling restart, slow peer) must not strand the rank
  // outside the fleet forever.
  if (membership_.member_count() <= 1 && config_.join_seed) join_now();

  const auto ticked = membership_.tick();
  if (!ticked.suspected.empty() || !ticked.died.empty()) {
    {
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      membership_stats_.suspects += ticked.suspected.size();
      membership_stats_.deaths += ticked.died.size();
      // A dead rank's handoff dedup is forgotten: if it rejoins later
      // (new epoch) it deserves a fresh stream.
      for (const std::size_t rank : ticked.died) {
        handoff_epochs_.erase(rank);
      }
    }
    if (suspects_counter_ != nullptr) {
      suspects_counter_->add(ticked.suspected.size());
    }
    if (deaths_counter_ != nullptr) {
      deaths_counter_->add(ticked.died.size());
    }
    publish_membership_gauges();
  }

  // One view exchange per live peer, dispatched to the forward pool so
  // a dead peer's connect timeout stalls a pool worker, never the
  // timer. At most one exchange per peer in flight: the timer must not
  // stack rounds onto a slow peer.
  const MembershipView view = membership_.view();
  MembershipUpdate update;
  update.from = config_.rank;
  update.view = view;
  net::Frame frame;
  frame.type = net::FrameType::kMembershipUpdate;
  frame.payload = encode_membership_update(update);
  for (const Member& member : view.members) {
    if (member.rank == config_.rank) continue;
    {
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      if (!heartbeats_in_flight_.insert(member.rank).second) continue;
    }
    auto task = forward_pool_.submit([this, rank = member.rank, frame] {
      std::optional<net::Frame> reply;
      if (net::MuxFrameClient* const client = client_for(rank)) {
        reply = client->call(frame);
      }
      if (reply && reply->type == net::FrameType::kMembershipUpdate) {
        std::string error;
        if (const auto peer_update =
                decode_membership_update(reply->payload, error)) {
          const auto changes = membership_.handle_update(peer_update->view);
          membership_.note_heard_from(peer_update->from);
          apply_membership_changes(changes);
        }
      }
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      heartbeats_in_flight_.erase(rank);
    });
    // A shut-down pool never runs the task; release the in-flight
    // marker so a later (revived) round is not blocked forever.
    if (task.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      try {
        task.get();
      } catch (...) {
        const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
        heartbeats_in_flight_.erase(member.rank);
      }
    }
  }
}

void ShardRouter::apply_membership_changes(
    const Membership::ChangeSet& changes) {
  if (!changes.changed) return;
  publish_membership_gauges();
  if (!changes.joined.empty() || !changes.left.empty()) {
    std::size_t joins = 0;
    {
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      for (const Member& member : changes.joined) {
        if (member.rank != config_.rank) ++joins;
      }
      membership_stats_.joins += joins;
      // Members a higher-epoch view dropped were detected dead by a
      // peer; count them here too so every rank's death counter moves.
      membership_stats_.deaths += changes.left.size();
      for (const std::size_t rank : changes.left) {
        handoff_epochs_.erase(rank);
      }
    }
    if (joins_counter_ != nullptr && joins > 0) joins_counter_->add(joins);
    if (deaths_counter_ != nullptr && !changes.left.empty()) {
      deaths_counter_->add(changes.left.size());
    }
  }
  for (const Member& member : changes.joined) {
    if (member.rank == config_.rank) continue;
    // Wire (or rewire, on an address change) the client now, then
    // stream the newcomer the slice the ring just assigned it.
    client_for(member.rank);
    schedule_handoff(member);
  }
}

void ShardRouter::schedule_handoff(const Member& target) {
  const std::uint64_t epoch = membership_.epoch();
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    // Equal-epoch updates naming the same joiner arrive from several
    // peers; one stream per (target, epoch) is enough.
    auto& last = handoff_epochs_[target.rank];
    if (last >= epoch) return;
    last = epoch;
    ++membership_stats_.handoffs_started;
    ++outstanding_handoffs_;
  }
  auto task = forward_pool_.submit(
      [this, target, epoch] { run_handoff(target, epoch); });
  // A shut-down pool never runs the task; release the bookkeeping.
  if (task.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    try {
      task.get();
    } catch (...) {
      finish_handoff(false);
    }
  }
}

void ShardRouter::run_handoff(Member target, std::uint64_t epoch) {
  net::MuxFrameClient* const client = client_for(target.rank);
  if (client == nullptr) {
    finish_handoff(false);
    return;
  }
  // The slice: every owned entry the ring now assigns to the newcomer.
  // keys() is a point-in-time snapshot; entries answered during the
  // stream are covered by the double-write path, entries evicted before
  // their chunk simply drop out (peek misses are skipped).
  std::vector<CanonicalHash> slice;
  for (const CanonicalHash& key : service_.cache().keys()) {
    if (shard_of(key) == target.rank) slice.push_back(key);
  }
  if (slice.empty()) {
    finish_handoff(true);
    return;
  }

  HandoffStamp stamp;
  stamp.epoch = epoch;
  stamp.from = config_.rank;
  stamp.entries = slice.size();
  net::Frame begin;
  begin.type = net::FrameType::kHandoffBegin;
  begin.payload = encode_handoff_begin(stamp);
  const auto begin_ack = client->call(begin);
  if (!begin_ack || begin_ack->type != net::FrameType::kPong) {
    finish_handoff(false);
    return;
  }

  // Bounded chunks: each frame carries at most handoff_chunk_entries
  // entries, so neither the frame size nor the receiver's cache hold
  // time grows with the slice.
  const std::size_t per_chunk =
      std::max<std::size_t>(1, config_.handoff_chunk_entries);
  std::size_t sent_entries = 0;
  std::size_t sent_chunks = 0;
  bool aborted = false;
  for (std::size_t offset = 0; offset < slice.size() && !aborted;
       offset += per_chunk) {
    HandoffChunk chunk;
    chunk.epoch = epoch;
    chunk.from = config_.rank;
    const std::size_t end = std::min(slice.size(), offset + per_chunk);
    for (std::size_t i = offset; i < end; ++i) {
      if (auto value = service_.cache().peek(slice[i])) {
        chunk.entries.emplace_back(slice[i], std::move(*value));
      }
    }
    if (chunk.entries.empty()) continue;
    net::Frame frame;
    frame.type = net::FrameType::kHandoffChunk;
    frame.payload = encode_handoff_chunk(chunk);
    const Clock::time_point chunk_start = Clock::now();
    const auto ack = client->call(frame);
    if (handoff_chunk_hist_ != nullptr) {
      handoff_chunk_hist_->record(seconds_since(chunk_start, Clock::now()));
    }
    if (!ack || ack->type != net::FrameType::kPong) {
      aborted = true;
      break;
    }
    sent_entries += chunk.entries.size();
    ++sent_chunks;
  }

  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    membership_stats_.handoff_chunks_sent += sent_chunks;
    membership_stats_.handoff_entries_sent += sent_entries;
  }
  if (handoff_entries_sent_counter_ != nullptr && sent_entries > 0) {
    handoff_entries_sent_counter_->add(sent_entries);
  }
  if (aborted) {
    finish_handoff(false);
    return;
  }

  stamp.entries = sent_entries;
  net::Frame done;
  done.type = net::FrameType::kHandoffDone;
  done.payload = encode_handoff_done(stamp);
  client->call(done);  // best-effort: the chunks already landed
  finish_handoff(true);
}

void ShardRouter::finish_handoff(bool completed) {
  const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
  if (completed) ++membership_stats_.handoffs_completed;
  --outstanding_handoffs_;
  prefetch_cv_.notify_all();
}

void ShardRouter::wait_handoffs_idle() {
  std::unique_lock<obs::ProfiledMutex> lock(mutex_);
  prefetch_cv_.wait(lock, [this] { return outstanding_handoffs_ == 0; });
}

void ShardRouter::maybe_double_write(const CanonicalHash& key) {
  if (!config_.elastic) return;
  const std::size_t owner = membership_.owner_of(key);
  if (owner == config_.rank) return;
  // The transition-window write path: this rank just answered a key the
  // ring assigns elsewhere (the requester dialed the old owner, or the
  // bulk stream has not reached this entry yet). Copy the answer over
  // asynchronously — the reply to the requester must not wait on it.
  auto task = forward_pool_.submit([this, key, owner] {
    auto value = service_.cache().peek(key);
    if (!value) return;  // evicted already; the new owner will re-solve
    net::MuxFrameClient* const client = client_for(owner);
    if (client == nullptr) return;
    HandoffChunk chunk;
    chunk.epoch = membership_.epoch();
    chunk.from = config_.rank;
    chunk.entries.emplace_back(key, std::move(*value));
    net::Frame frame;
    frame.type = net::FrameType::kHandoffChunk;
    frame.payload = encode_handoff_chunk(chunk);
    const auto ack = client->call(frame);
    if (ack && ack->type == net::FrameType::kPong) {
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      ++membership_stats_.double_writes;
    }
  });
  // Best-effort: a shut-down pool simply drops the copy.
  if (task.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    try {
      task.get();
    } catch (...) {
    }
  }
}

net::Frame ShardRouter::handle_fabric_frame(const net::Frame& request) {
  net::Frame reply;
  if (!config_.elastic) {
    reply.type = net::FrameType::kError;
    reply.payload = "membership disabled";
    return reply;
  }
  switch (request.type) {
    case net::FrameType::kJoinRequest:
      return handle_join_frame(request);
    case net::FrameType::kMembershipUpdate:
      return handle_membership_frame(request);
    case net::FrameType::kHandoffBegin:
    case net::FrameType::kHandoffChunk:
    case net::FrameType::kHandoffDone:
      return handle_handoff_frame(request);
    default:
      reply.type = net::FrameType::kError;
      reply.payload = "unexpected membership frame";
      return reply;
  }
}

net::Frame ShardRouter::handle_join_frame(const net::Frame& request) {
  net::Frame reply;
  std::string error;
  const auto member = decode_join_request(request.payload, error);
  if (!member) {
    reply.type = net::FrameType::kError;
    reply.payload = "bad join request: " + error;
    return reply;
  }
  apply_membership_changes(membership_.handle_join(*member));
  // The reply carries the merged view: the joiner adopts it (higher
  // epoch) and learns the whole fleet from this one exchange.
  MembershipUpdate update;
  update.from = config_.rank;
  update.view = membership_.view();
  reply.type = net::FrameType::kMembershipUpdate;
  reply.payload = encode_membership_update(update);
  return reply;
}

net::Frame ShardRouter::handle_membership_frame(const net::Frame& request) {
  net::Frame reply;
  std::string error;
  const auto update = decode_membership_update(request.payload, error);
  if (!update) {
    reply.type = net::FrameType::kError;
    reply.payload = "bad membership update: " + error;
    return reply;
  }
  const auto changes = membership_.handle_update(update->view);
  membership_.note_heard_from(update->from);
  apply_membership_changes(changes);
  // Answer with our (possibly newer) view — a stale sender catches up
  // on the same exchange.
  MembershipUpdate ours;
  ours.from = config_.rank;
  ours.view = membership_.view();
  reply.type = net::FrameType::kMembershipUpdate;
  reply.payload = encode_membership_update(ours);
  return reply;
}

net::Frame ShardRouter::handle_handoff_frame(const net::Frame& request) {
  net::Frame reply;
  std::string error;
  if (request.type == net::FrameType::kHandoffChunk) {
    auto chunk = decode_handoff_chunk(request.payload, error);
    if (!chunk) {
      reply.type = net::FrameType::kError;
      reply.payload = "bad handoff chunk: " + error;
      return reply;
    }
    membership_.note_heard_from(chunk->from);
    const std::size_t count = chunk->entries.size();
    for (auto& [key, value] : chunk->entries) {
      // Entries are immutable under their canonical key, so inserting
      // a chunk replayed by a retrying sender is harmless.
      service_.cache().insert(key, std::move(value));
    }
    {
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      ++membership_stats_.handoff_chunks_received;
      membership_stats_.handoff_entries_received += count;
    }
    if (handoff_entries_received_counter_ != nullptr && count > 0) {
      handoff_entries_received_counter_->add(count);
    }
    reply.type = net::FrameType::kPong;
    return reply;
  }
  // kHandoffBegin / kHandoffDone: bookkeeping stamps — ack and refresh
  // the sender's heartbeat (a rank mid-stream is certainly alive).
  const auto stamp = decode_handoff_stamp(request.payload, error);
  if (!stamp) {
    reply.type = net::FrameType::kError;
    reply.payload = "bad handoff stamp: " + error;
    return reply;
  }
  membership_.note_heard_from(stamp->from);
  reply.type = net::FrameType::kPong;
  return reply;
}

void ShardRouter::publish_membership_gauges() {
  if (epoch_gauge_ != nullptr) {
    epoch_gauge_->set(static_cast<double>(membership_.epoch()));
  }
  if (members_gauge_ != nullptr) {
    members_gauge_->set(static_cast<double>(membership_.member_count()));
  }
}

RouterStats ShardRouter::stats() const {
  const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
  return stats_;
}

std::vector<std::pair<std::size_t, net::FrameClientStats>>
ShardRouter::client_stats() const {
  std::vector<std::pair<std::size_t, net::FrameClientStats>> out;
  {
    const std::lock_guard<std::mutex> lock(clients_mutex_);
    out.reserve(clients_.size());
    for (const auto& [rank, client] : clients_) {
      out.emplace_back(rank, client->stats());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void ShardRouter::write_stats_json(std::ostream& out,
                                   const RouterStats& stats) {
  out << "{\"local\":" << stats.local
      << ",\"forwarded\":" << stats.forwarded
      << ",\"forward_hits\":" << stats.forward_hits
      << ",\"forward_failures\":" << stats.forward_failures
      << ",\"local_fallbacks\":" << stats.local_fallbacks
      << ",\"deduplicated\":" << stats.deduplicated
      << ",\"replica_hits\":" << stats.replica_hits
      << ",\"prefetched\":" << stats.prefetched
      << ",\"gossip_sent\":" << stats.gossip_sent
      << ",\"gossip_failures\":" << stats.gossip_failures
      << ",\"gossip_received\":" << stats.gossip_received << "}";
}

void ShardRouter::write_membership_stats_json(std::ostream& out,
                                              const MembershipStats& stats) {
  out << "{\"epoch\":" << stats.epoch
      << ",\"members\":" << stats.members
      << ",\"joins\":" << stats.joins
      << ",\"deaths\":" << stats.deaths
      << ",\"suspects\":" << stats.suspects
      << ",\"handoffs_started\":" << stats.handoffs_started
      << ",\"handoffs_completed\":" << stats.handoffs_completed
      << ",\"handoff_chunks_sent\":" << stats.handoff_chunks_sent
      << ",\"handoff_chunks_received\":" << stats.handoff_chunks_received
      << ",\"handoff_entries_sent\":" << stats.handoff_entries_sent
      << ",\"handoff_entries_received\":" << stats.handoff_entries_received
      << ",\"double_writes\":" << stats.double_writes << "}";
}

}  // namespace prts::service
