#include "service/router.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "net/frame.hpp"
#include "service/protocol.hpp"

namespace prts::service {
namespace {

using Clock = std::chrono::steady_clock;

/// Seconds between two steady-clock points, floored at zero.
double seconds_since(Clock::time_point from, Clock::time_point to) noexcept {
  const double elapsed = std::chrono::duration<double>(to - from).count();
  return elapsed < 0.0 ? 0.0 : elapsed;
}

/// The owner serves at most this many keys per kReplicaFetch frame — a
/// hostile or buggy peer must not turn one fetch into a whole-cache
/// dump.
constexpr std::size_t kMaxFetchKeys = 1024;

/// Hot-key hit counts tracked between gossip rounds are capped so the
/// map stays bounded even when gossip never runs to clear it.
constexpr std::size_t kMaxTrackedHotKeys = 4096;

}  // namespace

net::FrameHandler make_fabric_handler(SolveService& service,
                                      std::function<ShardRouter*()> router) {
  return [&service, router = std::move(router)](
             const net::Frame& request) -> std::optional<net::Frame> {
    net::Frame reply;
    switch (request.type) {
      case net::FrameType::kPing:
        reply.type = net::FrameType::kPong;
        reply.payload = request.payload;
        return reply;
      case net::FrameType::kStatsRequest: {
        std::ostringstream out;
        write_merged_stats_json(out, service, router ? router() : nullptr);
        reply.type = net::FrameType::kStatsReply;
        reply.payload = out.str();
        return reply;
      }
      case net::FrameType::kSolveRequest: {
        std::string error;
        auto decoded = decode_wire_request(request.payload, error);
        if (!decoded) {
          reply.type = net::FrameType::kError;
          reply.payload = "bad solve request: " + error;
          return reply;
        }
        // Blocking wait: one frame in flight per connection, and the
        // FrameServer runs this on its own pool.
        SolveReply answer = service.submit(std::move(*decoded)).get();
        // Peer traffic is what makes an owned key hot — feed the
        // gossip digest.
        if (ShardRouter* owner = router ? router() : nullptr) {
          owner->note_owned_hit(answer.key);
        }
        // Ship this rank's spans back so the origin can merge them
        // into the one trace the request travels under. The local
        // tracer keeps its copy — `trace <id>` resolves on either
        // rank.
        if (obs::Telemetry* telemetry = service.telemetry();
            telemetry != nullptr && answer.trace_id != 0) {
          obs::Trace trace;
          if (telemetry->tracer.find(answer.trace_id, trace)) {
            answer.remote_spans = std::move(trace.spans);
          }
        }
        reply.type = net::FrameType::kSolveReply;
        reply.payload = encode_wire_reply(answer);
        return reply;
      }
      case net::FrameType::kMetricsRequest: {
        // Any rank can scrape any other: the full text exposition of
        // this rank's registry (plus the engine/router counter sets).
        std::ostringstream out;
        write_metrics_text(out, service, router ? router() : nullptr);
        reply.type = net::FrameType::kMetricsReply;
        reply.payload = out.str();
        return reply;
      }
      case net::FrameType::kGossipDigest: {
        std::string error;
        auto digest = decode_gossip_digest(request.payload, error);
        if (!digest) {
          reply.type = net::FrameType::kError;
          reply.payload = "bad gossip digest: " + error;
          return reply;
        }
        if (ShardRouter* receiver = router ? router() : nullptr) {
          receiver->handle_gossip_digest(std::move(*digest));
        }
        // Ack even without a router: gossip is advisory, and the
        // sender only wants to know the frame arrived.
        reply.type = net::FrameType::kPong;
        return reply;
      }
      case net::FrameType::kReplicaFetch: {
        std::string error;
        const auto keys = decode_replica_fetch(request.payload, error);
        if (!keys) {
          reply.type = net::FrameType::kError;
          reply.payload = "bad replica fetch: " + error;
          return reply;
        }
        std::vector<std::pair<CanonicalHash, CachedSolution>> entries;
        const std::size_t served = std::min(keys->size(), kMaxFetchKeys);
        for (std::size_t i = 0; i < served; ++i) {
          // peek: a prefetch must not distort the owner's LRU order or
          // hit-rate counters. Missing keys are silently skipped (the
          // fetch is best-effort).
          if (auto value = service.cache().peek((*keys)[i])) {
            entries.emplace_back((*keys)[i], std::move(*value));
          }
        }
        reply.type = net::FrameType::kReplicaFetchReply;
        reply.payload = encode_replica_entries(entries);
        return reply;
      }
      default:
        reply.type = net::FrameType::kError;
        reply.payload = "unexpected frame type";
        return reply;
    }
  };
}

std::optional<std::vector<PeerAddress>> parse_peer_list(
    const std::string& text) {
  std::vector<PeerAddress> peers;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(start, comma - start);
    const std::size_t colon = entry.rfind(':');
    if (entry.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      return std::nullopt;
    }
    PeerAddress peer;
    peer.host = entry.substr(0, colon);
    const std::string port_text = entry.substr(colon + 1);
    unsigned long port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    // Full consumption: "76o1" must be rejected, not parsed as 76.
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port == 0 || port > 65535) {
      return std::nullopt;
    }
    peer.port = static_cast<std::uint16_t>(port);
    peers.push_back(std::move(peer));
    start = comma + 1;
  }
  return peers;
}

ShardRouter::ShardRouter(SolveService& service, RouterConfig config)
    : service_(service),
      config_(std::move(config)),
      replicas_(config_.replica),
      forward_pool_(std::max<std::size_t>(1, config_.forward_threads)) {
  if (config_.world_size == 0) config_.world_size = 1;
  if (config_.telemetry != nullptr) {
    obs::Registry& metrics = config_.telemetry->metrics;
    wire_hist_ = &metrics.histogram("router_wire_seconds");
    router_latency_hist_ = &metrics.histogram("router_request_latency_seconds");
    inflight_gauge_ = &metrics.gauge("router_inflight_forwards");
    prof_wire_ = &config_.telemetry->profiler.component("wire_round_trip");
    prof_replica_ = &config_.telemetry->profiler.component("replica_lookup");
    inflight_probe_ = obs::ProfiledMutex::make_probe(metrics, "router_inflight");
    mutex_.attach(&inflight_probe_);
  }
  clients_.resize(config_.world_size);
  for (std::size_t r = 0; r < config_.world_size; ++r) {
    if (r == config_.rank || r >= config_.peers.size()) continue;
    net::FrameClientConfig client_config = config_.client;
    if (config_.telemetry != nullptr) {
      // Per-peer counter families: suspect churn toward rank 2 must be
      // attributable to rank 2, not smeared across the fabric.
      client_config.metrics = &config_.telemetry->metrics;
      client_config.metrics_prefix = "net_client_rank" + std::to_string(r) + "_";
    }
    clients_[r] = std::make_unique<net::MuxFrameClient>(
        config_.peers[r].host, config_.peers[r].port, std::move(client_config));
  }
  if (config_.gossip_interval_seconds > 0.0 && config_.world_size > 1) {
    if (config_.telemetry != nullptr) {
      gossip_heartbeat_ = &config_.telemetry->watchdog.component(
          "router_gossip", config_.gossip_interval_seconds);
    }
    gossip_thread_ = std::thread([this] {
      const std::chrono::duration<double> interval(
          config_.gossip_interval_seconds);
      std::unique_lock<std::mutex> lock(gossip_mutex_);
      while (!gossip_stop_) {
        if (gossip_cv_.wait_for(lock, interval,
                                [this] { return gossip_stop_; })) {
          break;
        }
        lock.unlock();
        gossip_now();
        if (gossip_heartbeat_ != nullptr) gossip_heartbeat_->beat();
        lock.lock();
      }
    });
  }
}

ShardRouter::~ShardRouter() {
  {
    const std::lock_guard<std::mutex> lock(gossip_mutex_);
    gossip_stop_ = true;
  }
  gossip_cv_.notify_all();
  if (gossip_thread_.joinable()) gossip_thread_.join();
}  // forward_pool_ then drains forwards and prefetches

std::future<SolveReply> ShardRouter::submit(SolveRequest request) {
  if (config_.world_size <= 1) {
    {
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      ++stats_.local;
    }
    return service_.submit(std::move(request));
  }

  auto canonical = std::make_shared<const CanonicalInstance>(
      canonicalize(request.instance));
  const CanonicalHash key =
      request_key(*canonical, request.solver, request.bounds);
  const std::size_t owner = shard_of(key);

  if (owner == config_.rank || !clients_[owner]) {
    note_owned_hit(key);
    {
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      ++stats_.local;
    }
    // The canonical form was already computed to pick the shard; the
    // engine must not pay for it twice.
    return service_.submit_canonicalized(std::move(request),
                                         std::move(canonical), key);
  }

  // Remote shard: the router owns this request's trace from here on.
  // Every submitter gets its OWN trace id (dedup twins included — each
  // waiter's latency story differs), minted before the replica probe so
  // locally-absorbed hits are traced too. The engine path above never
  // reaches this: submit_canonicalized mints there.
  obs::Telemetry* const telemetry = config_.telemetry;
  const Clock::time_point arrival = Clock::now();
  if (telemetry != nullptr) {
    const std::string label = request.solver + ":" + to_hex(key);
    if (request.trace_id == 0) {
      request.trace_id = telemetry->tracer.start(label);
    } else {
      telemetry->tracer.start_with_id(request.trace_id, label);
    }
  }

  // Replica tier: a repeat hit on a peer's key that was forwarded (or
  // prefetched) before is answered here, with the same per-waiter label
  // translation a cache hit gets — no network round trip.
  if (replicas_.enabled()) {
    std::optional<obs::ScopedSample> replica_sample;
    if (telemetry != nullptr && telemetry->profiler.enabled()) {
      replica_sample.emplace();
    }
    if (auto cached = replicas_.lookup(key)) {
      {
        const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
        ++stats_.replica_hits;
      }
      SolveReply reply;
      reply.key = key;
      reply.cache_hit = true;
      reply.solver_used = request.solver;
      if (cached->solution) {
        reply.status = ReplyStatus::kSolved;
        reply.solution = to_original_labels(*cached->solution, *canonical);
      } else {
        reply.status = ReplyStatus::kInfeasible;
      }
      if (telemetry != nullptr && request.trace_id != 0) {
        const double elapsed = seconds_since(arrival, Clock::now());
        const obs::WorkSample work =
            replica_sample ? replica_sample->finish() : obs::WorkSample{};
        if (replica_sample) obs::Profiler::record(*prof_replica_, work);
        obs::Span span;
        span.name = "replica_lookup";
        span.rank = static_cast<int>(config_.rank);
        span.duration_seconds = elapsed;
        span.cpu_seconds = work.cpu_seconds < elapsed ? work.cpu_seconds
                                                      : elapsed;
        span.alloc_count = work.alloc_count;
        span.alloc_bytes = work.alloc_bytes;
        telemetry->tracer.record(request.trace_id, std::move(span));
        telemetry->tracer.finish(request.trace_id, elapsed);
        if (router_latency_hist_ != nullptr) {
          router_latency_hist_->record(elapsed);
        }
      }
      reply.trace_id = request.trace_id;
      return ready_reply_future(std::move(reply));
    }
  }

  std::unique_lock<obs::ProfiledMutex> lock(mutex_);

  // Router-level dedup: identical remote-shard requests already being
  // forwarded get a waiter on the same exchange.
  if (const auto it = in_flight_.find(key); it != in_flight_.end()) {
    ++stats_.deduplicated;
    it->second->waiters.push_back(
        ForwardWaiter{{}, canonical, request.deadline_seconds,
                      request.deadline_policy, true, request.trace_id,
                      arrival});
    return it->second->waiters.back().promise.get_future();
  }

  auto forward = std::make_shared<Forward>();
  forward->canonical = canonical;
  forward->bounds = request.bounds;
  forward->solver = request.solver;
  // Best local near-miss for the forwarded key: replicated, prefetched
  // and fallback-solved entries of this instance live in the local
  // cache's bounds index even though the key's owner is remote. The
  // owner prunes with the hint; the answer bytes cannot change.
  if (service_.config().cache_enabled && service_.config().near_miss) {
    const CanonicalHash bkey = batch_key(*canonical, request.solver);
    if (auto feasible =
            service_.cache().find_feasible(bkey, request.bounds)) {
      if (feasible->solution) {
        solver::WarmStart hint;
        hint.reliability_floor_log =
            feasible->solution->metrics.reliability.log();
        hint.incumbent = std::move(feasible->solution);
        forward->warm = std::move(hint);
      }
    }
  }
  forward->deadline_seconds = request.deadline_seconds;
  forward->deadline_policy = request.deadline_policy;
  forward->key = key;
  forward->owner_rank = owner;
  forward->trace_id = request.trace_id;
  forward->waiters.push_back(ForwardWaiter{{}, canonical,
                                           request.deadline_seconds,
                                           request.deadline_policy, false,
                                           request.trace_id, arrival});
  std::future<SolveReply> future =
      forward->waiters.back().promise.get_future();
  in_flight_.emplace(key, forward.get());
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->set(static_cast<double>(in_flight_.size()));
  }
  lock.unlock();

  auto task = forward_pool_.submit(
      [this, forward]() mutable { run_forward(std::move(forward)); });
  // A shut-down pool never runs the task; answer the waiters here
  // rather than leaving broken promises behind.
  if (task.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    try {
      task.get();
    } catch (...) {
      run_forward(std::move(forward));
    }
  }
  return future;
}

void ShardRouter::run_forward(std::shared_ptr<Forward> forward) {
  net::MuxFrameClient& client = *clients_[forward->owner_rank];

  // The forwarded request carries the *canonical* instance, so the
  // owner's reply is already in canonical labels — each waiter then
  // translates into its own processor labels, exactly like the local
  // engine does for deduplicated twins.
  SolveRequest remote_request{forward->canonical->instance, forward->solver,
                              forward->bounds, forward->deadline_seconds,
                              forward->deadline_policy, forward->warm};
  // The first submitter's trace id rides on the wire; the owner records
  // its engine spans under it and ships them back in the reply.
  remote_request.trace_id = forward->trace_id;
  net::Frame frame;
  frame.type = net::FrameType::kSolveRequest;
  frame.payload = encode_wire_request(remote_request);

  obs::Telemetry* const telemetry = config_.telemetry;
  const Clock::time_point wire_start = Clock::now();
  // Dual-clock sample over the exchange: nearly all of it is blocked
  // time (the forward thread waits on the peer), which is exactly what
  // distinguishes a slow peer from a slow local solver in the profile.
  std::optional<obs::ScopedSample> wire_sample;
  if (telemetry != nullptr && telemetry->profiler.enabled()) {
    wire_sample.emplace();
  }
  std::optional<SolveReply> remote;
  if (const auto reply_frame = client.call(frame)) {
    if (reply_frame->type == net::FrameType::kSolveReply) {
      std::string error;
      remote = decode_wire_reply(reply_frame->payload, error);
    }
  }
  const double wire_seconds = seconds_since(wire_start, Clock::now());
  const obs::WorkSample wire_work =
      wire_sample ? wire_sample->finish() : obs::WorkSample{};
  if (wire_sample) obs::Profiler::record(*prof_wire_, wire_work);
  if (wire_hist_ != nullptr) wire_hist_->record(wire_seconds);

  // A remote answer is only authoritative when the owner actually
  // answered the question; rejections and errors degrade to a local
  // solve just like an unreachable peer.
  const bool answered =
      remote && (remote->status == ReplyStatus::kSolved ||
                 remote->status == ReplyStatus::kInfeasible);

  if (answered) {
    // Replicate: the next repeat hit on this key is served locally
    // until the TTL lapses (the entry is immutable, so the copy can
    // never go stale — only old). The recorded solve cost rides along
    // so the adaptive TTL can keep expensive answers longer.
    if (replicas_.enabled()) {
      replicas_.insert(forward->key, CachedSolution{remote->solution,
                                                    remote->cost_seconds});
    }
    std::vector<ForwardWaiter> waiters;
    {
      const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
      in_flight_.erase(forward->key);
      if (inflight_gauge_ != nullptr) {
        inflight_gauge_->set(static_cast<double>(in_flight_.size()));
      }
      waiters = std::move(forward->waiters);
      ++stats_.forwarded;
      if (remote->cache_hit) ++stats_.forward_hits;
    }
    const Clock::time_point finished_at = Clock::now();
    for (ForwardWaiter& waiter : waiters) {
      SolveReply reply;
      reply.status = remote->status;
      reply.cache_hit = remote->cache_hit;
      reply.near_miss = remote->near_miss;
      reply.downgraded = remote->downgraded;
      reply.deduplicated = waiter.deduplicated;
      reply.solver_used = remote->solver_used;
      reply.cost_seconds = remote->cost_seconds;
      reply.key = forward->key;
      if (remote->solution) {
        reply.solution =
            to_original_labels(*remote->solution, *waiter.canonical);
      }
      if (telemetry != nullptr && waiter.trace_id != 0) {
        // Each waiter's spans are offsets from ITS submit point. The
        // owner's spans came back as offsets from the owner's submit
        // point; shifting them by this waiter's wire-start offset lines
        // the two ranks' work up on one timeline (clock skew between
        // ranks is absorbed — only the origin's clock is used for
        // placement).
        const double wire_offset = seconds_since(waiter.submitted, wire_start);
        obs::Span wire_span;
        wire_span.name = "wire_round_trip";
        wire_span.rank = static_cast<int>(config_.rank);
        wire_span.start_seconds = wire_offset;
        wire_span.duration_seconds = wire_seconds;
        wire_span.cpu_seconds = wire_work.cpu_seconds < wire_seconds
                                    ? wire_work.cpu_seconds
                                    : wire_seconds;
        wire_span.alloc_count = wire_work.alloc_count;
        wire_span.alloc_bytes = wire_work.alloc_bytes;
        telemetry->tracer.record(waiter.trace_id, std::move(wire_span));
        for (const obs::Span& span : remote->remote_spans) {
          obs::Span shifted = span;
          shifted.start_seconds += wire_offset;
          telemetry->tracer.record(waiter.trace_id, std::move(shifted));
        }
        const double total = seconds_since(waiter.submitted, finished_at);
        telemetry->tracer.finish(waiter.trace_id, total);
        if (router_latency_hist_ != nullptr) {
          router_latency_hist_->record(total);
        }
      }
      reply.trace_id = waiter.trace_id;
      waiter.promise.set_value(std::move(reply));
    }
    return;
  }

  // Failover: solve locally, exactly once. Every waiter is re-submitted
  // with its *own* deadline options (a patient twin must not be
  // rejected on an impatient stranger's policy — the engine handles
  // mixed policies per waiter); the engine's in-flight dedup and cache
  // collapse the N submissions into a single solve. The degraded
  // request *is* the canonical instance (canonicalization is
  // idempotent), so every engine reply speaks canonical labels and the
  // local cache fills under the same key a recovered owner would use.
  std::vector<ForwardWaiter> waiters;
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    in_flight_.erase(forward->key);
    if (inflight_gauge_ != nullptr) {
      inflight_gauge_->set(static_cast<double>(in_flight_.size()));
    }
    waiters = std::move(forward->waiters);
    ++stats_.forward_failures;
    ++stats_.local_fallbacks;
  }
  // One canonicalization for all waiters: the canonical instance is a
  // fixed point, so its own canonical form is the identity translation
  // under the same key, and replies come back in canonical labels.
  auto identity = std::make_shared<const CanonicalInstance>(
      canonicalize(forward->canonical->instance));
  std::vector<std::future<SolveReply>> futures;
  futures.reserve(waiters.size());
  const Clock::time_point failover_at = Clock::now();
  for (const ForwardWaiter& waiter : waiters) {
    // Charge the dead wire exchange against the waiter's budget: the
    // rescue solve gets what REMAINS of the deadline, not a fresh full
    // grant. Floored at zero so an already-expired waiter hits the
    // engine's downgrade/reject policy immediately instead of burning
    // a worker on an answer nobody is waiting for.
    double remaining_seconds = waiter.deadline_seconds;
    if (std::isfinite(remaining_seconds)) {
      remaining_seconds -= seconds_since(waiter.submitted, failover_at);
      if (remaining_seconds < 0.0) remaining_seconds = 0.0;
    }
    SolveRequest local_request{forward->canonical->instance, forward->solver,
                               forward->bounds, remaining_seconds,
                               waiter.deadline_policy, forward->warm};
    // The waiter's own trace follows it onto the failover path: the
    // engine adopts the id, so the trace shows the dead wire exchange
    // AND the local rescue solve — the whole story of the request.
    local_request.trace_id = waiter.trace_id;
    if (telemetry != nullptr && waiter.trace_id != 0) {
      telemetry->tracer.record(waiter.trace_id, "forward_failover",
                               static_cast<int>(config_.rank),
                               seconds_since(waiter.submitted, wire_start),
                               wire_seconds);
    }
    futures.push_back(service_.submit_canonicalized(std::move(local_request),
                                                    identity, forward->key));
  }
  for (std::size_t i = 0; i < waiters.size(); ++i) {
    SolveReply reply = futures[i].get();
    reply.deduplicated = waiters[i].deduplicated;
    if (reply.solution) {
      reply.solution =
          to_original_labels(*reply.solution, *waiters[i].canonical);
    }
    if (telemetry != nullptr && waiters[i].trace_id != 0) {
      // The engine finished the trace with only the rescue-solve span's
      // clock; re-finish with the full router-side total (finish keeps
      // the max) and feed the router latency histogram — failover
      // requests must not vanish from the tail.
      const double total = seconds_since(waiters[i].submitted, Clock::now());
      telemetry->tracer.finish(waiters[i].trace_id, total);
      if (router_latency_hist_ != nullptr) {
        router_latency_hist_->record(total);
      }
    }
    waiters[i].promise.set_value(std::move(reply));
  }
}

void ShardRouter::note_owned_hit(const CanonicalHash& key) {
  if (config_.world_size <= 1 || shard_of(key) != config_.rank) return;
  const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
  if (const auto it = owned_hits_.find(key); it != owned_hits_.end()) {
    ++it->second;
    return;
  }
  // Bounded tracking window: only gossip_now() clears the map, which a
  // node with gossip disabled never runs — a long uptime over millions
  // of distinct keys must not grow it without limit. Hot keys recur, so
  // dropping first-seen keys past the cap loses nothing a digest (top-K
  // of it) would have kept.
  if (owned_hits_.size() >= kMaxTrackedHotKeys) return;
  owned_hits_.emplace(key, 1);
}

void ShardRouter::gossip_now() {
  if (config_.world_size <= 1) return;
  std::vector<GossipDigest::Entry> hot;
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    hot.reserve(owned_hits_.size());
    for (const auto& [key, count] : owned_hits_) {
      if (count >= config_.gossip_min_hits) {
        hot.push_back(GossipDigest::Entry{key, count});
      }
    }
    owned_hits_.clear();
  }
  // Only announce keys a peer could actually fetch right now.
  hot.erase(std::remove_if(hot.begin(), hot.end(),
                           [this](const GossipDigest::Entry& entry) {
                             return !service_.cache().contains(entry.key);
                           }),
            hot.end());
  std::sort(hot.begin(), hot.end(),
            [](const GossipDigest::Entry& a, const GossipDigest::Entry& b) {
              return a.hits > b.hits;
            });
  if (hot.size() > config_.gossip_top_k) hot.resize(config_.gossip_top_k);
  if (hot.empty()) return;

  GossipDigest digest;
  digest.rank = config_.rank;
  digest.entries = std::move(hot);
  net::Frame frame;
  frame.type = net::FrameType::kGossipDigest;
  frame.payload = encode_gossip_digest(digest);
  for (std::size_t r = 0; r < clients_.size(); ++r) {
    if (!clients_[r]) continue;
    const auto ack = clients_[r]->call(frame);
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    if (ack && ack->type == net::FrameType::kPong) {
      ++stats_.gossip_sent;
    } else {
      ++stats_.gossip_failures;
    }
  }
}

void ShardRouter::handle_gossip_digest(GossipDigest digest) {
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    ++stats_.gossip_received;
  }
  // Only the sender's own keys are prefetchable from the sender; a
  // digest naming another rank (or this one) is ignored key-by-key.
  if (digest.rank >= config_.world_size || digest.rank == config_.rank ||
      !clients_[digest.rank] || !replicas_.enabled()) {
    return;
  }
  std::sort(digest.entries.begin(), digest.entries.end(),
            [](const GossipDigest::Entry& a, const GossipDigest::Entry& b) {
              return a.hits > b.hits;
            });
  std::vector<CanonicalHash> wanted;
  for (const GossipDigest::Entry& entry : digest.entries) {
    if (wanted.size() >= config_.gossip_top_k) break;
    if (shard_of(entry.key) != digest.rank) continue;
    if (replicas_.contains(entry.key)) continue;
    wanted.push_back(entry.key);
  }
  if (wanted.empty()) return;

  // Prefetch in the background: this runs on the FrameServer's
  // connection thread, and a nested blocking fetch here could deadlock
  // two ranks gossiping at each other over their shared per-peer
  // connections.
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    ++outstanding_prefetches_;
  }
  auto task = forward_pool_.submit(
      [this, owner = digest.rank, wanted = std::move(wanted)]() mutable {
        run_prefetch(owner, std::move(wanted));
      });
  // A shut-down pool never runs the task; release the bookkeeping.
  if (task.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    try {
      task.get();
    } catch (...) {
      finish_prefetch(0);
    }
  }
}

void ShardRouter::run_prefetch(std::size_t owner,
                               std::vector<CanonicalHash> keys) {
  net::Frame frame;
  frame.type = net::FrameType::kReplicaFetch;
  frame.payload = encode_replica_fetch(keys);
  std::size_t fetched = 0;
  if (const auto reply = clients_[owner]->call(frame)) {
    if (reply->type == net::FrameType::kReplicaFetchReply) {
      std::string error;
      if (auto entries = decode_replica_entries(reply->payload, error)) {
        for (auto& [key, value] : *entries) {
          // Accept only keys this fetch asked for (and hence validated
          // as owned by `owner`) — a confused peer must not plant
          // foreign entries in the replica tier.
          if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
            continue;
          }
          replicas_.insert(key, std::move(value));
          ++fetched;
        }
      }
    }
  }
  finish_prefetch(fetched);
}

void ShardRouter::finish_prefetch(std::size_t fetched) {
  const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
  stats_.prefetched += fetched;
  --outstanding_prefetches_;
  prefetch_cv_.notify_all();
}

void ShardRouter::wait_prefetches_idle() {
  std::unique_lock<obs::ProfiledMutex> lock(mutex_);
  prefetch_cv_.wait(lock, [this] { return outstanding_prefetches_ == 0; });
}

bool ShardRouter::peer_suspect(std::size_t rank) const {
  return rank < clients_.size() && clients_[rank] &&
         clients_[rank]->suspect();
}

RouterStats ShardRouter::stats() const {
  const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
  return stats_;
}

std::vector<std::pair<std::size_t, net::FrameClientStats>>
ShardRouter::client_stats() const {
  std::vector<std::pair<std::size_t, net::FrameClientStats>> out;
  for (std::size_t r = 0; r < clients_.size(); ++r) {
    if (clients_[r]) out.emplace_back(r, clients_[r]->stats());
  }
  return out;
}

void ShardRouter::write_stats_json(std::ostream& out,
                                   const RouterStats& stats) {
  out << "{\"local\":" << stats.local
      << ",\"forwarded\":" << stats.forwarded
      << ",\"forward_hits\":" << stats.forward_hits
      << ",\"forward_failures\":" << stats.forward_failures
      << ",\"local_fallbacks\":" << stats.local_fallbacks
      << ",\"deduplicated\":" << stats.deduplicated
      << ",\"replica_hits\":" << stats.replica_hits
      << ",\"prefetched\":" << stats.prefetched
      << ",\"gossip_sent\":" << stats.gossip_sent
      << ",\"gossip_failures\":" << stats.gossip_failures
      << ",\"gossip_received\":" << stats.gossip_received << "}";
}

}  // namespace prts::service
