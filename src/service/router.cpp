#include "service/router.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <ostream>
#include <sstream>
#include <utility>

#include "net/frame.hpp"
#include "service/wire.hpp"

namespace prts::service {

net::FrameHandler make_fabric_handler(SolveService& service) {
  return [&service](const net::Frame& request) -> std::optional<net::Frame> {
    net::Frame reply;
    switch (request.type) {
      case net::FrameType::kPing:
        reply.type = net::FrameType::kPong;
        reply.payload = request.payload;
        return reply;
      case net::FrameType::kStatsRequest: {
        std::ostringstream out;
        out << "{\"engine\":";
        write_engine_stats_json(out, service.stats());
        out << ",\"cache\":";
        ShardedSolutionCache::write_stats_json(out, service.cache_stats());
        out << "}";
        reply.type = net::FrameType::kStatsReply;
        reply.payload = out.str();
        return reply;
      }
      case net::FrameType::kSolveRequest: {
        std::string error;
        auto decoded = decode_wire_request(request.payload, error);
        if (!decoded) {
          reply.type = net::FrameType::kError;
          reply.payload = "bad solve request: " + error;
          return reply;
        }
        // Blocking wait: one frame in flight per connection, and the
        // FrameServer runs this on its own pool.
        const SolveReply answer =
            service.submit(std::move(*decoded)).get();
        reply.type = net::FrameType::kSolveReply;
        reply.payload = encode_wire_reply(answer);
        return reply;
      }
      default:
        reply.type = net::FrameType::kError;
        reply.payload = "unexpected frame type";
        return reply;
    }
  };
}

std::optional<std::vector<PeerAddress>> parse_peer_list(
    const std::string& text) {
  std::vector<PeerAddress> peers;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(start, comma - start);
    const std::size_t colon = entry.rfind(':');
    if (entry.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      return std::nullopt;
    }
    PeerAddress peer;
    peer.host = entry.substr(0, colon);
    const std::string port_text = entry.substr(colon + 1);
    unsigned long port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    // Full consumption: "76o1" must be rejected, not parsed as 76.
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port == 0 || port > 65535) {
      return std::nullopt;
    }
    peer.port = static_cast<std::uint16_t>(port);
    peers.push_back(std::move(peer));
    start = comma + 1;
  }
  return peers;
}

ShardRouter::ShardRouter(SolveService& service, RouterConfig config)
    : service_(service),
      config_(std::move(config)),
      forward_pool_(std::max<std::size_t>(1, config_.forward_threads)) {
  if (config_.world_size == 0) config_.world_size = 1;
  clients_.resize(config_.world_size);
  for (std::size_t r = 0; r < config_.world_size; ++r) {
    if (r == config_.rank || r >= config_.peers.size()) continue;
    clients_[r] = std::make_unique<net::FrameClient>(
        config_.peers[r].host, config_.peers[r].port, config_.client);
  }
}

ShardRouter::~ShardRouter() = default;  // forward_pool_ drains first

std::future<SolveReply> ShardRouter::submit(SolveRequest request) {
  if (config_.world_size <= 1) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.local;
    }
    return service_.submit(std::move(request));
  }

  auto canonical = std::make_shared<const CanonicalInstance>(
      canonicalize(request.instance));
  const CanonicalHash key =
      request_key(*canonical, request.solver, request.bounds);
  const std::size_t owner = shard_of(key);

  if (owner == config_.rank || !clients_[owner]) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.local;
    }
    // The canonical form was already computed to pick the shard; the
    // engine must not pay for it twice.
    return service_.submit_canonicalized(std::move(request),
                                         std::move(canonical), key);
  }

  std::unique_lock<std::mutex> lock(mutex_);

  // Router-level dedup: identical remote-shard requests already being
  // forwarded get a waiter on the same exchange.
  if (const auto it = in_flight_.find(key); it != in_flight_.end()) {
    ++stats_.deduplicated;
    it->second->waiters.push_back(ForwardWaiter{{}, canonical, true});
    return it->second->waiters.back().promise.get_future();
  }

  auto forward = std::make_shared<Forward>();
  forward->canonical = canonical;
  forward->bounds = request.bounds;
  forward->solver = request.solver;
  forward->deadline_seconds = request.deadline_seconds;
  forward->deadline_policy = request.deadline_policy;
  forward->key = key;
  forward->owner_rank = owner;
  forward->waiters.push_back(ForwardWaiter{{}, canonical, false});
  std::future<SolveReply> future =
      forward->waiters.back().promise.get_future();
  in_flight_.emplace(key, forward.get());
  lock.unlock();

  auto task = forward_pool_.submit(
      [this, forward]() mutable { run_forward(std::move(forward)); });
  // A shut-down pool never runs the task; answer the waiters here
  // rather than leaving broken promises behind.
  if (task.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    try {
      task.get();
    } catch (...) {
      run_forward(std::move(forward));
    }
  }
  return future;
}

void ShardRouter::run_forward(std::shared_ptr<Forward> forward) {
  net::FrameClient& client = *clients_[forward->owner_rank];

  // The forwarded request carries the *canonical* instance, so the
  // owner's reply is already in canonical labels — each waiter then
  // translates into its own processor labels, exactly like the local
  // engine does for deduplicated twins.
  SolveRequest remote_request{forward->canonical->instance, forward->solver,
                              forward->bounds, forward->deadline_seconds,
                              forward->deadline_policy};
  net::Frame frame;
  frame.type = net::FrameType::kSolveRequest;
  frame.payload = encode_wire_request(remote_request);

  std::optional<SolveReply> remote;
  if (const auto reply_frame = client.call(frame)) {
    if (reply_frame->type == net::FrameType::kSolveReply) {
      std::string error;
      remote = decode_wire_reply(reply_frame->payload, error);
    }
  }

  // A remote answer is only authoritative when the owner actually
  // answered the question; rejections and errors degrade to a local
  // solve just like an unreachable peer.
  const bool answered =
      remote && (remote->status == ReplyStatus::kSolved ||
                 remote->status == ReplyStatus::kInfeasible);

  if (answered) {
    std::vector<ForwardWaiter> waiters;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      in_flight_.erase(forward->key);
      waiters = std::move(forward->waiters);
      ++stats_.forwarded;
      if (remote->cache_hit) ++stats_.forward_hits;
    }
    for (ForwardWaiter& waiter : waiters) {
      SolveReply reply;
      reply.status = remote->status;
      reply.cache_hit = remote->cache_hit;
      reply.downgraded = remote->downgraded;
      reply.deduplicated = waiter.deduplicated;
      reply.solver_used = remote->solver_used;
      reply.key = forward->key;
      if (remote->solution) {
        reply.solution =
            to_original_labels(*remote->solution, *waiter.canonical);
      }
      waiter.promise.set_value(std::move(reply));
    }
    return;
  }

  // Degrade: solve locally (the local engine dedups and caches under
  // the same key, so a later recovered owner still benefits from the
  // canonical form).
  std::vector<ForwardWaiter> waiters;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    in_flight_.erase(forward->key);
    waiters = std::move(forward->waiters);
    ++stats_.forward_failures;
    ++stats_.local_fallbacks;
  }
  SolveRequest local_request{forward->canonical->instance, forward->solver,
                             forward->bounds, forward->deadline_seconds,
                             forward->deadline_policy};
  const SolveReply local = service_.submit(std::move(local_request)).get();
  for (ForwardWaiter& waiter : waiters) {
    SolveReply reply = local;
    reply.deduplicated = waiter.deduplicated;
    if (local.solution) {
      // The degraded request *is* the canonical instance
      // (canonicalization is idempotent), so `local` already speaks
      // canonical labels; translate per waiter.
      reply.solution =
          to_original_labels(*local.solution, *waiter.canonical);
    }
    waiter.promise.set_value(std::move(reply));
  }
}

bool ShardRouter::peer_suspect(std::size_t rank) const {
  return rank < clients_.size() && clients_[rank] &&
         clients_[rank]->suspect();
}

RouterStats ShardRouter::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ShardRouter::write_stats_json(std::ostream& out,
                                   const RouterStats& stats) {
  out << "{\"local\":" << stats.local
      << ",\"forwarded\":" << stats.forwarded
      << ",\"forward_hits\":" << stats.forward_hits
      << ",\"forward_failures\":" << stats.forward_failures
      << ",\"local_fallbacks\":" << stats.local_fallbacks
      << ",\"deduplicated\":" << stats.deduplicated << "}";
}

}  // namespace prts::service
