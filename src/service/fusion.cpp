#include "service/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <future>
#include <limits>
#include <stdexcept>
#include <vector>

namespace prts::service {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Extracts the campaign datum from a reply: failure of the solution,
/// NaN for "no feasible mapping". Everything else is a hard error —
/// the campaign's numbers must never silently depend on backlog luck.
double failure_of(const SolveReply& reply) {
  switch (reply.status) {
    case ReplyStatus::kSolved:
      return reply.solution->metrics.failure;
    case ReplyStatus::kInfeasible:
      return kNan;
    case ReplyStatus::kError:
      throw std::runtime_error("campaign via service: " + reply.error);
    default:
      throw std::runtime_error(
          "campaign via service: request rejected (queue depth too small "
          "for the campaign?)");
  }
}

}  // namespace

scenario::CampaignResult run_campaign_via_service(
    const scenario::CampaignSpec& spec, SolveService& service) {
  const solver::SolverRegistry& registry =
      service.config().registry ? *service.config().registry
                                : solver::SolverRegistry::builtin();
  if (spec.solvers.empty()) {
    throw std::invalid_argument("run_campaign_via_service: empty solver list");
  }
  for (const std::string& name : spec.solvers) {
    if (!registry.find(name)) {
      throw std::invalid_argument(
          "run_campaign_via_service: unknown solver '" + name + "'");
    }
  }

  const std::vector<exp::SweepPoint> points =
      scenario::sweep_points(spec.sweep);
  const std::vector<double> x = scenario::sweep_x(spec.sweep);
  const std::size_t n_solvers = spec.solvers.size();
  const std::size_t n_points = points.size();
  const std::size_t jobs = spec.instances * spec.repetitions;
  const std::size_t per_job = n_solvers * n_points;

  // A sliding window bounded by the service's admission control: at
  // most queue_budget requests are outstanding at any moment — counted
  // per *request*, so even one job larger than the queue depth never
  // gets rejected outright. Submission order and the FIFO drain order
  // are pure functions of the spec, so determinism is unaffected by
  // completion order.
  const std::size_t queue_budget =
      std::max<std::size_t>(1, service.config().max_queue_depth / 2);

  std::vector<std::vector<double>> failures(jobs);
  for (std::vector<double>& outcome : failures) {
    outcome.assign(per_job, kNan);
  }

  struct Pending {
    std::size_t job;
    std::size_t slot;
    std::future<SolveReply> reply;
  };
  std::deque<Pending> window;
  const auto drain_one = [&] {
    Pending oldest = std::move(window.front());
    window.pop_front();
    failures[oldest.job][oldest.slot] = failure_of(oldest.reply.get());
  };

  for (std::size_t job = 0; job < jobs; ++job) {
    const Instance instance = scenario::materialize_instance(spec, job);
    for (std::size_t s = 0; s < n_solvers; ++s) {
      for (std::size_t pt = 0; pt < n_points; ++pt) {
        if (window.size() >= queue_budget) drain_one();
        SolveRequest request{instance, spec.solvers[s], {}};
        request.bounds.period_bound = points[pt].period_bound;
        request.bounds.latency_bound = points[pt].latency_bound;
        window.push_back(Pending{job, s * n_points + pt,
                                 service.submit(std::move(request))});
      }
    }
  }
  while (!window.empty()) drain_one();

  return scenario::reduce_job_failures(spec, x, failures, n_solvers,
                                       n_points);
}

}  // namespace prts::service
