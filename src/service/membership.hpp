// Dynamic fabric membership: the epoch-stamped member list that turns
// the static `--world/--rank/--peers` fleet into an elastic one. Every
// rank runs one `Membership` instance; ranks join by dialing any seed
// (kJoinRequest), then exchange full views on the heartbeat timer
// (kMembershipUpdate) — a tiny anti-entropy protocol, not consensus:
//
//   * every view change bumps a monotone `epoch`;
//   * a received view with a HIGHER epoch is adopted wholesale;
//   * an EQUAL epoch with a different member set is merged by union
//     (two ranks admitting different joiners at the same epoch
//     converge without livelocking on who bumps first);
//   * a LOWER epoch is ignored — the reply carries our view back, so
//     the stale peer catches up on the same exchange.
//
// Failure detection is heartbeat-timestamped with a suspect → dead
// debounce (mirroring the FrameClient suspect machinery): a member not
// heard from for `suspect_after_seconds` is *suspected* (surfaced to
// telemetry/alerts, still in the ring); one silent past
// `dead_after_seconds` is removed and the epoch advances. A suspect
// that speaks again is cleared — a slow peer is not evicted.
//
// Ownership queries delegate to the consistent-hash ring
// (service/ring.hpp), rebuilt on every member-set change, so a join or
// death moves only the affected key slices. The class is
// transport-free (the router owns the wire); time is injectable for
// deterministic tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/canonical.hpp"
#include "service/ring.hpp"

namespace prts::service {

struct Member {
  std::size_t rank = 0;
  std::string host;
  std::uint16_t port = 0;

  friend bool operator==(const Member& a, const Member& b) {
    return a.rank == b.rank && a.host == b.host && a.port == b.port;
  }
};

/// One rank's snapshot of the fleet: the wire object of
/// kMembershipUpdate (codec in service/wire.hpp). Members are sorted by
/// rank.
struct MembershipView {
  std::uint64_t epoch = 0;
  std::vector<Member> members;

  friend bool operator==(const MembershipView& a, const MembershipView& b) {
    return a.epoch == b.epoch && a.members == b.members;
  }
};

class Membership {
 public:
  using Clock = std::chrono::steady_clock;

  struct Config {
    std::size_t self_rank = 0;
    /// Silence before a member is surfaced as suspect (still serving).
    double suspect_after_seconds = 2.0;
    /// Silence before a member is declared dead and removed.
    double dead_after_seconds = 5.0;
    RingConfig ring;
  };

  /// What one join/update/tick changed — the router turns this into
  /// handoffs (joined), client teardown (left) and counters.
  struct ChangeSet {
    std::vector<Member> joined;
    std::vector<std::size_t> left;
    /// True when the epoch advanced or the set was reshaped (including
    /// adopting a peer's higher-epoch view verbatim).
    bool changed = false;
    /// True when an adopted view lacked this rank — membership re-added
    /// itself and bumped past the incoming epoch so its presence wins.
    bool rejoined_self = false;
  };

  struct TickResult {
    std::vector<std::size_t> suspected;  ///< newly suspected this tick
    std::vector<std::size_t> died;       ///< removed this tick (epoch bumped)
  };

  explicit Membership(Config config);

  /// Installs the initial member set at epoch 1 (self is added if
  /// absent). Called once before serving.
  void bootstrap(std::vector<Member> members, Clock::time_point now = Clock::now());

  MembershipView view() const;
  std::uint64_t epoch() const;
  std::size_t member_count() const;
  std::size_t self_rank() const noexcept { return config_.self_rank; }
  bool contains(std::size_t rank) const;
  std::optional<Member> member(std::size_t rank) const;
  /// True while `rank` is in its suspect window (never true for self).
  bool is_suspect(std::size_t rank) const;

  /// The rank owning `key` under the current ring; self when the ring
  /// is empty (degraded single-rank operation).
  std::size_t owner_of(const CanonicalHash& key) const;

  /// Admits a (possibly restarted: same rank, new address) member.
  ChangeSet handle_join(const Member& member, Clock::time_point now = Clock::now());

  /// Merges a peer's view per the epoch rules above.
  ChangeSet handle_update(const MembershipView& incoming,
                          Clock::time_point now = Clock::now());

  /// Refreshes `rank`'s heartbeat timestamp and clears its suspect
  /// flag. Unknown ranks are ignored (membership changes only via
  /// join/update).
  void note_heard_from(std::size_t rank, Clock::time_point now = Clock::now());

  /// Advances failure detection: suspects the silent, removes the dead
  /// (bumping the epoch once if anyone died).
  TickResult tick(Clock::time_point now = Clock::now());

 private:
  struct Entry {
    Member member;
    Clock::time_point last_heard{};
    bool suspect = false;
  };

  /// Rebuilds the ring from entries_ (call with mutex_ held after any
  /// set change).
  void rebuild_ring_locked();
  std::vector<Member> members_locked() const;

  Config config_;
  mutable std::mutex mutex_;
  std::unordered_map<std::size_t, Entry> entries_;
  std::uint64_t epoch_ = 0;
  HashRing ring_;
};

}  // namespace prts::service
