// Consistent-hash ring over the canonical 128-bit key space: the
// elastic fabric's replacement for the static `shard = hash mod world`
// partition. Every member rank contributes `virtual_nodes` points on a
// 64-bit circle (a fixed splitmix-style mix of (rank, replica index),
// never std::hash, so every rank computes the identical ring); a key is
// owned by the member whose point is the first at or after the key's
// own position, wrapping at the top.
//
// The property the elastic fabric needs is *minimal disruption*: when a
// member joins, the only keys that change owner are the ones the new
// member takes; when a member leaves, only its keys move (each to the
// next point's owner). `mod world` reshuffles almost everything on any
// world-size change — the difference between streaming one rank's slice
// and re-warming the whole fleet.
//
// The ring itself is a pure value (rebuild from a member set, query);
// epoch/versioning lives in service/membership.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "service/canonical.hpp"

namespace prts::service {

struct RingConfig {
  /// Points per member. More points = smoother balance (relative load
  /// spread shrinks like 1/sqrt(virtual_nodes)) at the cost of a larger
  /// sorted array; 64 keeps the worst member within ~25% of fair share.
  std::size_t virtual_nodes = 64;
};

class HashRing {
 public:
  HashRing() : HashRing(RingConfig{}) {}
  explicit HashRing(RingConfig config) : config_(config) {
    if (config_.virtual_nodes == 0) config_.virtual_nodes = 1;
  }

  /// Replaces the member set (duplicates collapse to one member).
  void rebuild(const std::vector<std::size_t>& ranks);

  bool empty() const noexcept { return points_.empty(); }
  std::size_t member_count() const noexcept { return members_; }

  /// The rank owning `key`. Requires a non-empty ring.
  std::size_t owner_of(const CanonicalHash& key) const noexcept;

  /// The point position a key hashes to (exposed for tests).
  static std::uint64_t key_position(const CanonicalHash& key) noexcept;

 private:
  struct Point {
    std::uint64_t position = 0;
    std::size_t rank = 0;
  };

  RingConfig config_;
  std::vector<Point> points_;  ///< sorted by position
  std::size_t members_ = 0;
};

}  // namespace prts::service
