#include "service/protocol.hpp"

#include "service/checkpoint.hpp"
#include "service/router.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace prts::service {
namespace {

bool parse_double(const std::string& text, double& value) {
  if (text == "inf") {
    value = std::numeric_limits<double>::infinity();
    return true;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// "last:proc,proc;..." — the same shape `prts_cli evaluate --mapping`
/// accepts, so replies can be piped back into the evaluator.
std::string mapping_to_string(const Mapping& mapping) {
  std::ostringstream out;
  for (std::size_t j = 0; j < mapping.interval_count(); ++j) {
    if (j) out << ";";
    out << mapping.partition().interval(j).last << ":";
    const auto procs = mapping.processors(j);
    for (std::size_t r = 0; r < procs.size(); ++r) {
      out << (r ? "," : "") << procs[r];
    }
  }
  return out.str();
}

void print_reply(std::ostream& out, std::size_t id, const SolveReply& reply) {
  out << id << "\t" << reply_status_name(reply.status) << "\t"
      << (reply.cache_hit ? 1 : 0) << "\t" << (reply.deduplicated ? 1 : 0)
      << "\t" << (reply.downgraded ? 1 : 0) << "\t"
      << (reply.solver_used.empty() ? "-" : reply.solver_used);
  if (reply.solution) {
    const MappingMetrics& metrics = reply.solution->metrics;
    out << "\t" << canonical_number(metrics.failure) << "\t"
        << canonical_number(metrics.worst_period) << "\t"
        << canonical_number(metrics.worst_latency) << "\t"
        << mapping_to_string(reply.solution->mapping);
  } else {
    out << "\t-\t-\t-\t-";
  }
  if (reply.status == ReplyStatus::kError) out << "\t# " << reply.error;
  out << "\n";
}

/// Sorted unique ranks that recorded a span — '0,1' here is the proof a
/// forwarded solve produced ONE trace spanning two ranks.
void print_span_ranks(std::ostream& out, const obs::Trace& trace) {
  std::set<int> ranks;
  for (const obs::Span& span : trace.spans) ranks.insert(span.rank);
  if (ranks.empty()) {
    out << "-";
    return;
  }
  bool first = true;
  for (const int rank : ranks) {
    if (!first) out << ",";
    first = false;
    out << rank;
  }
}

void print_trace_header(std::ostream& out, const char* tag,
                        const obs::Trace& trace) {
  out << "# " << tag << " id=" << obs::id_to_hex(trace.id)
      << " label=" << (trace.label.empty() ? "-" : trace.label)
      << " total_ms=" << trace.total_seconds * 1e3
      << " finished=" << (trace.finished ? 1 : 0)
      << " spans=" << trace.spans.size() << " ranks=";
  print_span_ranks(out, trace);
  out << "\n";
}

void print_trace(std::ostream& out, const obs::Trace& trace) {
  print_trace_header(out, "trace", trace);
  for (const obs::Span& span : trace.spans) {
    out << "# span rank=" << span.rank << " name=" << span.name
        << " start_ms=" << span.start_seconds * 1e3
        << " dur_ms=" << span.duration_seconds * 1e3 << "\n";
  }
}

/// One flight-recorder tick as a `# tick` line: fixed key=value prefix
/// for grep, JSON body for machine consumers.
void print_tick(std::ostream& out, const obs::FlightRecorder::Tick& tick) {
  out << "# tick seq=" << tick.seq << " t=" << tick.uptime_seconds
      << " dt=" << tick.interval_seconds << " {\"counters\":{";
  bool first = true;
  for (const auto& [name, delta] : tick.counter_deltas) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << delta;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : tick.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, window] : tick.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << window.count
        << ",\"mean\":" << window.mean << ",\"p50\":" << window.p50
        << ",\"p90\":" << window.p90 << ",\"p99\":" << window.p99
        << ",\"p999\":" << window.p999 << "}";
  }
  out << "}}\n";
}

}  // namespace

void write_merged_stats_json(std::ostream& out, SolveService& service,
                             ShardRouter* router) {
  const EngineStats engine_stats = service.stats();
  out << "{\"engine\":";
  write_engine_stats_json(out, engine_stats);
  out << ",\"hits\":";
  write_hit_tiers_json(out, engine_stats);
  out << ",\"cache\":";
  ShardedSolutionCache::write_stats_json(out, service.cache_stats());
  if (router != nullptr) {
    out << ",\"router\":";
    ShardRouter::write_stats_json(out, router->stats());
    out << ",\"replica\":";
    ReplicaCache::write_stats_json(out, router->replica_stats());
    out << ",\"net_clients\":{";
    bool first = true;
    for (const auto& [rank, stats] : router->client_stats()) {
      if (!first) out << ",";
      first = false;
      out << "\"rank" << rank << "\":{\"calls\":" << stats.calls
          << ",\"failures\":" << stats.failures
          << ",\"connects\":" << stats.connects
          << ",\"fast_failures\":" << stats.fast_failures
          << ",\"suspects\":" << stats.suspects
          << ",\"timeouts\":" << stats.timeouts
          << ",\"max_inflight\":" << stats.max_inflight << "}";
    }
    out << "}";
    if (router->elastic()) {
      out << ",\"membership\":";
      ShardRouter::write_membership_stats_json(out,
                                               router->membership_stats());
    }
  }
  if (obs::Telemetry* telemetry = service.telemetry()) {
    out << ",\"telemetry\":";
    telemetry->metrics.write_json(out);
    out << ",\"watchdog\":";
    telemetry->watchdog.write_json(out);
    out << ",\"profile\":";
    telemetry->profiler.write_json(out);
    out << ",\"alerts\":";
    telemetry->alerts.write_json(out);
  }
  out << "}";
}

void write_metrics_text(std::ostream& out, SolveService& service,
                        ShardRouter* router) {
  if (obs::Telemetry* telemetry = service.telemetry()) {
    telemetry->metrics.write_prometheus(out);
  }
  const EngineStats engine = service.stats();
  const std::pair<const char*, std::uint64_t> engine_counters[] = {
      {"submitted", engine.submitted},
      {"completed", engine.completed},
      {"cache_hits", engine.cache_hits},
      {"dominating_hits", engine.dominating_hits},
      {"warm_started", engine.warm_started},
      {"solver_invocations", engine.solver_invocations},
      {"deduplicated", engine.deduplicated},
      {"batches", engine.batches},
      {"batched_requests", engine.batched_requests},
      {"downgraded", engine.downgraded},
      {"rejected_queue", engine.rejected_queue},
      {"rejected_deadline", engine.rejected_deadline},
      {"errors", engine.errors},
  };
  for (const auto& [name, value] : engine_counters) {
    out << "# TYPE prts_engine_" << name << "_total counter\n"
        << "prts_engine_" << name << "_total " << value << "\n";
  }
  // Live cache occupancy: the warm-rejoin signal (a restarted rank that
  // loaded its checkpoint scrapes > 0 before the first request lands).
  out << "# TYPE prts_cache_entries gauge\n"
      << "prts_cache_entries " << service.cache_stats().entries << "\n";
  if (router == nullptr) return;
  const RouterStats rs = router->stats();
  const std::pair<const char*, std::uint64_t> router_counters[] = {
      {"local", rs.local},
      {"forwarded", rs.forwarded},
      {"forward_hits", rs.forward_hits},
      {"forward_failures", rs.forward_failures},
      {"local_fallbacks", rs.local_fallbacks},
      {"deduplicated", rs.deduplicated},
      {"replica_hits", rs.replica_hits},
      {"prefetched", rs.prefetched},
      {"gossip_sent", rs.gossip_sent},
      {"gossip_failures", rs.gossip_failures},
      {"gossip_received", rs.gossip_received},
  };
  for (const auto& [name, value] : router_counters) {
    out << "# TYPE prts_router_" << name << "_total counter\n"
        << "prts_router_" << name << "_total " << value << "\n";
  }
  if (!router->elastic()) return;
  const MembershipStats ms = router->membership_stats();
  out << "# TYPE prts_membership_epoch gauge\n"
      << "prts_membership_epoch " << ms.epoch << "\n"
      << "# TYPE prts_membership_members gauge\n"
      << "prts_membership_members " << ms.members << "\n";
  const std::pair<const char*, std::uint64_t> membership_counters[] = {
      {"joins", ms.joins},
      {"deaths", ms.deaths},
      {"suspects", ms.suspects},
      {"handoffs_started", ms.handoffs_started},
      {"handoffs_completed", ms.handoffs_completed},
      {"handoff_entries_sent", ms.handoff_entries_sent},
      {"handoff_entries_received", ms.handoff_entries_received},
      {"double_writes", ms.double_writes},
  };
  for (const auto& [name, value] : membership_counters) {
    out << "# TYPE prts_membership_" << name << "_total counter\n"
        << "prts_membership_" << name << "_total " << value << "\n";
  }
}

ServeResult run_serve(std::istream& in, std::ostream& out,
                      SolveService& service, const ServeOptions& options) {
  ServeResult result;
  std::map<std::string, Instance> instances;
  std::vector<std::pair<std::size_t, std::future<SolveReply>>> pending;
  std::size_t next_id = 0;

  const auto flush = [&] {
    for (auto& [id, future] : pending) print_reply(out, id, future.get());
    pending.clear();
    // A long-lived serve process may sit idle after a sync; replies
    // must reach the pipe/file now, not at exit.
    out.flush();
  };
  const auto error = [&](const std::string& what) {
    out << "# error: " << what << "\n";
    ++result.protocol_errors;
  };

  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::string command;
    tokens >> command;
    if (command.empty() || command[0] == '#') continue;

    if (command == "instance") {
      std::string name;
      tokens >> name;
      if (name.empty()) {
        error("instance needs a name");
        continue;
      }
      std::string body;
      bool terminated = false;
      while (std::getline(in, line)) {
        std::istringstream probe(line);
        std::string first;
        probe >> first;
        if (first == "end") {
          terminated = true;
          break;
        }
        body += line;
        body += "\n";
      }
      if (!terminated) {
        error("instance '" + name + "' missing 'end'");
        continue;
      }
      ParseResult parsed = instance_from_text(body);
      if (!parsed) {
        error("instance '" + name + "': " + parsed.error);
        continue;
      }
      instances.insert_or_assign(name, std::move(*parsed.instance));
    } else if (command == "load") {
      std::string name;
      std::string path;
      tokens >> name >> path;
      if (name.empty() || path.empty()) {
        error("load needs '<name> <path>'");
        continue;
      }
      std::ifstream file(path);
      if (!file) {
        error("load: cannot open '" + path + "'");
        continue;
      }
      ParseResult parsed = read_instance(file);
      if (!parsed) {
        error("load '" + path + "': " + parsed.error);
        continue;
      }
      instances.insert_or_assign(name, std::move(*parsed.instance));
    } else if (command == "solve") {
      std::string name;
      std::string solver_name;
      std::string period_text;
      std::string latency_text;
      tokens >> name >> solver_name >> period_text >> latency_text;
      const auto it = instances.find(name);
      if (it == instances.end()) {
        error("solve: unknown instance '" + name + "'");
        continue;
      }
      SolveRequest request{it->second, solver_name, {},
                           options.default_deadline_seconds,
                           options.default_policy};
      if (!parse_double(period_text, request.bounds.period_bound) ||
          !parse_double(latency_text, request.bounds.latency_bound)) {
        error("solve: malformed bounds '" + period_text + " " +
              latency_text + "'");
        continue;
      }
      bool bad_option = false;
      std::string option;
      while (tokens >> option) {
        if (option.rfind("deadline=", 0) == 0) {
          if (!parse_double(option.substr(9), request.deadline_seconds)) {
            bad_option = true;
          }
        } else if (option == "policy=reject") {
          request.deadline_policy = DeadlinePolicy::kReject;
        } else if (option == "policy=downgrade") {
          request.deadline_policy = DeadlinePolicy::kDowngrade;
        } else {
          bad_option = true;
        }
        if (bad_option) break;
      }
      if (bad_option) {
        error("solve: bad option '" + option + "'");
        continue;
      }
      pending.emplace_back(next_id++,
                           options.router
                               ? options.router->submit(std::move(request))
                               : service.submit(std::move(request)));
      ++result.requests;
    } else if (command == "stats") {
      std::string mode;
      tokens >> mode;
      if (mode == "--json") {
        out << "# stats-json ";
        write_merged_stats_json(out, service, options.router);
        out << "\n";
        out.flush();
        continue;
      }
      if (!mode.empty()) {
        error("stats: unknown option '" + mode + "'");
        continue;
      }
      const EngineStats engine_stats = service.stats();
      out << "# engine ";
      write_engine_stats_json(out, engine_stats);
      out << "\n";
      // Per-tier hit breakdown in one JSON block: how each answered
      // request was served, cheapest tier first.
      out << "# hits ";
      write_hit_tiers_json(out, engine_stats);
      out << "\n";
      out << "# near_miss "
          << (engine_stats.dominating_hits + engine_stats.warm_started)
          << "\n";
      out << "# cache ";
      ShardedSolutionCache::write_stats_json(out, service.cache_stats());
      out << "\n";
      if (options.router) {
        out << "# router ";
        ShardRouter::write_stats_json(out, options.router->stats());
        out << "\n";
        out << "# replica ";
        ReplicaCache::write_stats_json(out, options.router->replica_stats());
        out << "\n";
      }
      out.flush();
    } else if (command == "metrics") {
      out << "# metrics begin\n";
      write_metrics_text(out, service, options.router);
      out << "# metrics end\n";
      out.flush();
    } else if (command == "trace") {
      std::string id_text;
      tokens >> id_text;
      obs::Telemetry* const telemetry = service.telemetry();
      if (telemetry == nullptr) {
        error("trace: telemetry disabled");
        continue;
      }
      const std::uint64_t id = obs::id_from_hex(id_text);
      obs::Trace trace;
      if (id == 0 || !telemetry->tracer.find(id, trace)) {
        out << "# trace " << (id_text.empty() ? "-" : id_text)
            << " not-found\n";
        out.flush();
        continue;
      }
      print_trace(out, trace);
      out.flush();
    } else if (command == "traces" || command == "slowlog") {
      obs::Telemetry* const telemetry = service.telemetry();
      if (telemetry == nullptr) {
        error(command + ": telemetry disabled");
        continue;
      }
      double limit = 32;
      std::string limit_text;
      if (tokens >> limit_text &&
          (!parse_double(limit_text, limit) || limit < 1)) {
        error(command + ": bad limit '" + limit_text + "'");
        continue;
      }
      const auto count = static_cast<std::size_t>(limit);
      const std::vector<obs::Trace> list =
          command == "traces" ? telemetry->tracer.recent(count)
                              : telemetry->tracer.slow(count);
      for (const obs::Trace& trace : list) {
        print_trace_header(out, "trace-entry", trace);
      }
      out.flush();
    } else if (command == "timeseries") {
      obs::Telemetry* const telemetry = service.telemetry();
      if (telemetry == nullptr) {
        error("timeseries: telemetry disabled");
        continue;
      }
      double limit = 0;  // 0 = whole ring
      std::string limit_text;
      if (tokens >> limit_text &&
          (!parse_double(limit_text, limit) || limit < 1)) {
        error("timeseries: bad limit '" + limit_text + "'");
        continue;
      }
      const std::vector<obs::FlightRecorder::Tick> ticks =
          telemetry->recorder.recent(static_cast<std::size_t>(limit));
      out << "# timeseries ticks=" << telemetry->recorder.total_ticks()
          << " window=" << ticks.size() << "\n";
      for (const obs::FlightRecorder::Tick& tick : ticks) {
        print_tick(out, tick);
      }
      out << "# timeseries end\n";
      out.flush();
    } else if (command == "profile") {
      obs::Telemetry* const telemetry = service.telemetry();
      if (telemetry == nullptr) {
        error("profile: telemetry disabled");
        continue;
      }
      std::string filter;
      tokens >> filter;  // optional component-name substring
      out << "# profile ";
      telemetry->profiler.write_json(out, filter);
      out << "\n";
      out.flush();
    } else if (command == "alerts") {
      obs::Telemetry* const telemetry = service.telemetry();
      if (telemetry == nullptr) {
        error("alerts: telemetry disabled");
        continue;
      }
      out << "# alerts ";
      telemetry->alerts.write_json(out);
      out << "\n";
      out.flush();
    } else if (command == "checkpoint") {
      if (options.checkpointer == nullptr) {
        error("checkpoint: checkpointing disabled");
        continue;
      }
      std::string why;
      const bool ok = options.checkpointer->checkpoint_now(&why);
      const Checkpointer::Stats cp = options.checkpointer->stats();
      out << "# checkpoint {\"ok\":" << (ok ? "true" : "false")
          << ",\"path\":\"" << options.checkpointer->path() << "\""
          << ",\"checkpoints\":" << cp.checkpoints
          << ",\"failures\":" << cp.failures
          << ",\"entries\":" << cp.last_entries
          << ",\"bytes\":" << cp.last_bytes
          << ",\"seconds\":" << cp.last_seconds;
      if (!ok) out << ",\"error\":\"" << why << "\"";
      out << "}\n";
      out.flush();
    } else if (command == "sync") {
      flush();
    } else {
      error("unknown command '" + command + "'");
    }
  }
  flush();
  return result;
}

}  // namespace prts::service
