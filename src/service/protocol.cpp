#include "service/protocol.hpp"

#include "service/router.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace prts::service {
namespace {

bool parse_double(const std::string& text, double& value) {
  if (text == "inf") {
    value = std::numeric_limits<double>::infinity();
    return true;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// "last:proc,proc;..." — the same shape `prts_cli evaluate --mapping`
/// accepts, so replies can be piped back into the evaluator.
std::string mapping_to_string(const Mapping& mapping) {
  std::ostringstream out;
  for (std::size_t j = 0; j < mapping.interval_count(); ++j) {
    if (j) out << ";";
    out << mapping.partition().interval(j).last << ":";
    const auto procs = mapping.processors(j);
    for (std::size_t r = 0; r < procs.size(); ++r) {
      out << (r ? "," : "") << procs[r];
    }
  }
  return out.str();
}

void print_reply(std::ostream& out, std::size_t id, const SolveReply& reply) {
  out << id << "\t" << reply_status_name(reply.status) << "\t"
      << (reply.cache_hit ? 1 : 0) << "\t" << (reply.deduplicated ? 1 : 0)
      << "\t" << (reply.downgraded ? 1 : 0) << "\t"
      << (reply.solver_used.empty() ? "-" : reply.solver_used);
  if (reply.solution) {
    const MappingMetrics& metrics = reply.solution->metrics;
    out << "\t" << canonical_number(metrics.failure) << "\t"
        << canonical_number(metrics.worst_period) << "\t"
        << canonical_number(metrics.worst_latency) << "\t"
        << mapping_to_string(reply.solution->mapping);
  } else {
    out << "\t-\t-\t-\t-";
  }
  if (reply.status == ReplyStatus::kError) out << "\t# " << reply.error;
  out << "\n";
}

}  // namespace

ServeResult run_serve(std::istream& in, std::ostream& out,
                      SolveService& service, const ServeOptions& options) {
  ServeResult result;
  std::map<std::string, Instance> instances;
  std::vector<std::pair<std::size_t, std::future<SolveReply>>> pending;
  std::size_t next_id = 0;

  const auto flush = [&] {
    for (auto& [id, future] : pending) print_reply(out, id, future.get());
    pending.clear();
    // A long-lived serve process may sit idle after a sync; replies
    // must reach the pipe/file now, not at exit.
    out.flush();
  };
  const auto error = [&](const std::string& what) {
    out << "# error: " << what << "\n";
    ++result.protocol_errors;
  };

  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::string command;
    tokens >> command;
    if (command.empty() || command[0] == '#') continue;

    if (command == "instance") {
      std::string name;
      tokens >> name;
      if (name.empty()) {
        error("instance needs a name");
        continue;
      }
      std::string body;
      bool terminated = false;
      while (std::getline(in, line)) {
        std::istringstream probe(line);
        std::string first;
        probe >> first;
        if (first == "end") {
          terminated = true;
          break;
        }
        body += line;
        body += "\n";
      }
      if (!terminated) {
        error("instance '" + name + "' missing 'end'");
        continue;
      }
      ParseResult parsed = instance_from_text(body);
      if (!parsed) {
        error("instance '" + name + "': " + parsed.error);
        continue;
      }
      instances.insert_or_assign(name, std::move(*parsed.instance));
    } else if (command == "load") {
      std::string name;
      std::string path;
      tokens >> name >> path;
      if (name.empty() || path.empty()) {
        error("load needs '<name> <path>'");
        continue;
      }
      std::ifstream file(path);
      if (!file) {
        error("load: cannot open '" + path + "'");
        continue;
      }
      ParseResult parsed = read_instance(file);
      if (!parsed) {
        error("load '" + path + "': " + parsed.error);
        continue;
      }
      instances.insert_or_assign(name, std::move(*parsed.instance));
    } else if (command == "solve") {
      std::string name;
      std::string solver_name;
      std::string period_text;
      std::string latency_text;
      tokens >> name >> solver_name >> period_text >> latency_text;
      const auto it = instances.find(name);
      if (it == instances.end()) {
        error("solve: unknown instance '" + name + "'");
        continue;
      }
      SolveRequest request{it->second, solver_name, {},
                           options.default_deadline_seconds,
                           options.default_policy};
      if (!parse_double(period_text, request.bounds.period_bound) ||
          !parse_double(latency_text, request.bounds.latency_bound)) {
        error("solve: malformed bounds '" + period_text + " " +
              latency_text + "'");
        continue;
      }
      bool bad_option = false;
      std::string option;
      while (tokens >> option) {
        if (option.rfind("deadline=", 0) == 0) {
          if (!parse_double(option.substr(9), request.deadline_seconds)) {
            bad_option = true;
          }
        } else if (option == "policy=reject") {
          request.deadline_policy = DeadlinePolicy::kReject;
        } else if (option == "policy=downgrade") {
          request.deadline_policy = DeadlinePolicy::kDowngrade;
        } else {
          bad_option = true;
        }
        if (bad_option) break;
      }
      if (bad_option) {
        error("solve: bad option '" + option + "'");
        continue;
      }
      pending.emplace_back(next_id++,
                           options.router
                               ? options.router->submit(std::move(request))
                               : service.submit(std::move(request)));
      ++result.requests;
    } else if (command == "stats") {
      const EngineStats engine_stats = service.stats();
      out << "# engine ";
      write_engine_stats_json(out, engine_stats);
      out << "\n";
      // Per-tier hit breakdown in one JSON block: how each answered
      // request was served, cheapest tier first.
      out << "# hits ";
      write_hit_tiers_json(out, engine_stats);
      out << "\n";
      out << "# near_miss "
          << (engine_stats.dominating_hits + engine_stats.warm_started)
          << "\n";
      out << "# cache ";
      ShardedSolutionCache::write_stats_json(out, service.cache_stats());
      out << "\n";
      if (options.router) {
        out << "# router ";
        ShardRouter::write_stats_json(out, options.router->stats());
        out << "\n";
        out << "# replica ";
        ReplicaCache::write_stats_json(out, options.router->replica_stats());
        out << "\n";
      }
      out.flush();
    } else if (command == "sync") {
      flush();
    } else {
      error("unknown command '" + command + "'");
    }
  }
  flush();
  return result;
}

}  // namespace prts::service
