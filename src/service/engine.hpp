// The request engine (third layer of src/service/): an async, batched
// front end that turns the solver library into a long-running solve
// service.
//
// A submit() call canonicalizes the request, then takes the cheapest
// path that answers it:
//   1. cache hit  -> the reply future is ready immediately;
//   2. an identical request is already in flight -> the new caller is
//      attached to it (deduplication: one solve, many futures);
//   3. otherwise the request joins the open *batch* of its
//      (canonical instance, solver) pair — requests differing only in
//      bounds share one prepared solver session (Solver::prepare), the
//      access pattern of design-space sweeps — and the batch is fanned
//      out across the shared ThreadPool. Workers pick up open batches
//      in *earliest-waiter-deadline* order, not FIFO: under backlog a
//      tight-deadline request is served before patient ones that were
//      submitted earlier, instead of expiring in the queue behind them.
//
// Admission control: a queue-depth limit rejects new work outright
// (kRejectedQueue) when the backlog is full, and a per-request deadline
// measured from submission either rejects late requests or downgrades
// them to a fast heuristic solver (config.fallback_solver) when the
// batch worker finally reaches them. Downgraded answers are *not*
// cached — they would poison the key of the solver actually requested.
//
// Every solve runs on the canonical instance, so isomorphic requests
// receive bit-identical metrics and label-translated copies of one
// mapping whether served cold, deduplicated, or from the cache.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "service/cache.hpp"
#include "service/canonical.hpp"
#include "solver/registry.hpp"
#include "solver/solver.hpp"

namespace prts::service {

/// What to do with a request whose deadline elapsed while it queued.
enum class DeadlinePolicy {
  kReject,     ///< fail with kRejectedDeadline
  kDowngrade,  ///< answer with config.fallback_solver instead
};

struct SolveRequest {
  Instance instance;
  std::string solver = "portfolio";  ///< registry name
  solver::Bounds bounds;

  /// Seconds from submission the caller is willing to wait before the
  /// solve *starts*; <= 0 expires immediately, +inf never.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  DeadlinePolicy deadline_policy = DeadlinePolicy::kDowngrade;
};

enum class ReplyStatus {
  kSolved,            ///< solution present
  kInfeasible,        ///< solver found no mapping under the bounds
  kRejectedQueue,     ///< admission control: backlog full
  kRejectedDeadline,  ///< deadline elapsed, policy kReject
  kError,             ///< unknown solver or solver exception (see error)
};

/// "solved", "infeasible", ... (the line protocol's status column).
const char* reply_status_name(ReplyStatus status) noexcept;

struct EngineStats;

/// Writes an EngineStats snapshot as one JSON object (the line
/// protocol's '# engine' payload and the fabric's stats frames).
void write_engine_stats_json(std::ostream& out, const EngineStats& stats);

struct SolveReply {
  ReplyStatus status = ReplyStatus::kError;
  std::optional<solver::Solution> solution;  ///< request's own labels
  bool cache_hit = false;
  bool deduplicated = false;  ///< attached to an in-flight twin
  bool downgraded = false;    ///< answered by the fallback solver
  std::string solver_used;    ///< empty when nothing was solved
  CanonicalHash key;          ///< the request's cache key
  std::string error;          ///< set iff status == kError
};

/// A future already holding `reply` — for paths (cache hits,
/// rejections, replica hits) that answer without touching a worker.
std::future<SolveReply> ready_reply_future(SolveReply reply);

/// Engine counters (monotonic; snapshot via SolveService::stats).
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t deduplicated = 0;
  std::uint64_t batches = 0;           ///< batch tasks executed
  std::uint64_t batched_requests = 0;  ///< requests that shared a batch
  std::uint64_t downgraded = 0;
  std::uint64_t rejected_queue = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t errors = 0;
};

struct ServiceConfig {
  /// Solver lookup table; the built-in registry when null.
  const solver::SolverRegistry* registry = nullptr;

  std::size_t threads = 0;  ///< worker pool size, hardware when 0

  bool cache_enabled = true;
  ShardedSolutionCache::Config cache;

  /// Maximum number of accepted-but-unfinished requests (dedup waiters
  /// and cache hits do not count); 0 rejects everything.
  std::size_t max_queue_depth = 4096;

  /// Deadline downgrade target; must answer on any platform.
  std::string fallback_solver = "heur-p";
};

class SolveService {
 public:
  explicit SolveService(ServiceConfig config = {});

  /// Drains every accepted request, then stops the pool.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Submits a request; the future is ready immediately on a cache hit
  /// or rejection, and resolves from a worker thread otherwise. Never
  /// throws on solver-level failures — they arrive as reply statuses.
  std::future<SolveReply> submit(SolveRequest request);

  /// submit() for callers that already canonicalized the request (the
  /// shard router does, to pick the owner shard) — skips the second
  /// canonicalization on the hot path. `canonical` MUST be
  /// canonicalize(request.instance) and `key` its request_key.
  std::future<SolveReply> submit_canonicalized(
      SolveRequest request,
      std::shared_ptr<const CanonicalInstance> canonical,
      const CanonicalHash& key);

  /// Blocks until every accepted request has been answered.
  void wait_idle();

  EngineStats stats() const;
  CacheStats cache_stats() const;
  ShardedSolutionCache& cache() noexcept { return cache_; }
  const ServiceConfig& config() const noexcept { return config_; }

 private:
  /// One caller attached to a pending query. Each waiter keeps its own
  /// canonical form (isomorphic twins need their own label translation)
  /// and its own deadline/policy (a duplicate must not be rejected or
  /// downgraded on a stranger's options).
  struct Waiter {
    std::promise<SolveReply> promise;
    std::shared_ptr<const CanonicalInstance> canonical;
    double deadline_seconds;
    DeadlinePolicy deadline_policy;
    std::chrono::steady_clock::time_point submitted;
    bool deduplicated;
  };

  struct PendingQuery {
    std::shared_ptr<const CanonicalInstance> canonical;
    solver::Bounds bounds;
    CanonicalHash key;
    std::vector<Waiter> waiters;  ///< [0] = first submitter
  };

  struct Batch {
    std::shared_ptr<const CanonicalInstance> canonical;
    std::string solver_name;
    CanonicalHash key;  ///< batch key
    std::vector<std::unique_ptr<PendingQuery>> queries;
    /// Earliest absolute deadline over the queries' first submitters,
    /// maintained on insertion so pickup never rescans waiters. (A
    /// dedup waiter attaching to an in-flight query does not raise an
    /// open batch's urgency — pickup order is a scheduling heuristic;
    /// per-waiter deadline *semantics* are enforced in run_next_batch.)
    std::chrono::steady_clock::time_point earliest_deadline =
        std::chrono::steady_clock::time_point::max();
    /// Creation order, the tie-break: equal deadlines (the common
    /// all-infinite case) are served FIFO, not in map-iteration order.
    std::uint64_t sequence = 0;
  };

  /// What run_batch concluded for one query; finish_query renders it
  /// into per-waiter replies (statuses can differ per waiter when every
  /// waiter's deadline expired under mixed policies).
  struct QueryOutcome {
    enum class Kind {
      kError,     ///< unknown solver / solver exception
      kAnswered,  ///< solved with the requested solver
      kFallback,  ///< all deadlines expired; fallback answer available
      kRejected,  ///< all deadlines expired, every policy was kReject
    };
    Kind kind = Kind::kError;
    std::optional<solver::Solution> canonical_solution;
    std::string solver_used;
    std::string error;
  };

  /// One pool task: picks the open batch whose most urgent waiter has
  /// the earliest absolute deadline (deadline-aware pickup — FIFO would
  /// let a tight-deadline request expire behind patient backlog) and
  /// runs it to completion. Exactly one task is enqueued per batch
  /// created, so every task finds a batch to run.
  void run_next_batch();
  void finish_query(PendingQuery& query, const QueryOutcome& outcome);

  ServiceConfig config_;
  ShardedSolutionCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::size_t outstanding_ = 0;  ///< accepted, not yet answered
  std::unordered_map<CanonicalHash, PendingQuery*, CanonicalKeyHasher> in_flight_;
  std::unordered_map<CanonicalHash, std::shared_ptr<Batch>, CanonicalKeyHasher>
      open_batches_;
  std::uint64_t next_batch_sequence_ = 0;
  EngineStats stats_;

  /// Declared last: destroyed first, so draining batch tasks still see
  /// a live mutex, cache and maps during ~SolveService.
  ThreadPool pool_;
};

}  // namespace prts::service
