// The request engine (third layer of src/service/): an async, batched
// front end that turns the solver library into a long-running solve
// service.
//
// A submit() call canonicalizes the request, then takes the cheapest
// path that answers it:
//   1. cache hit  -> the reply future is ready immediately;
//   1b. near-miss hit: no entry under the exact key, but the
//      bounds-monotone index (service/cache.hpp) holds an answer for
//      *looser* bounds of the same (instance, solver) that transfers —
//      a feasible solution already satisfying the tighter request, or a
//      looser-bounds infeasibility. For engines declaring
//      Solver::bounds_monotone this is bit-identical to a cold solve,
//      so it is served like a cache hit (and promoted under the exact
//      key). Otherwise a cached solution for *tighter* bounds that fits
//      the request becomes a solver::WarmStart (feasible incumbent +
//      reliability floor) attached to the query — engines prune with
//      it, answers stay byte-identical by the WarmStart contract;
//   2. an identical request is already in flight -> the new caller is
//      attached to it (deduplication: one solve, many futures);
//   3. otherwise the request joins the open *batch* of its
//      (canonical instance, solver) pair — requests differing only in
//      bounds share one prepared solver session (Solver::prepare), the
//      access pattern of design-space sweeps — and the batch is fanned
//      out across the shared ThreadPool. Workers pick up open batches
//      in *earliest-waiter-deadline* order, not FIFO: under backlog a
//      tight-deadline request is served before patient ones that were
//      submitted earlier, instead of expiring in the queue behind them.
//
// Admission control: a queue-depth limit rejects new work outright
// (kRejectedQueue) when the backlog is full, and a per-request deadline
// measured from submission either rejects late requests or downgrades
// them to a fast heuristic solver (config.fallback_solver) when the
// batch worker finally reaches them. Downgraded answers are *not*
// cached — they would poison the key of the solver actually requested.
//
// Every solve runs on the canonical instance, so isomorphic requests
// receive bit-identical metrics and label-translated copies of one
// mapping whether served cold, deduplicated, or from the cache.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/trace.hpp"
#include "service/cache.hpp"
#include "service/canonical.hpp"
#include "solver/registry.hpp"
#include "solver/solver.hpp"

namespace prts::service {

/// What to do with a request whose deadline elapsed while it queued.
enum class DeadlinePolicy {
  kReject,     ///< fail with kRejectedDeadline
  kDowngrade,  ///< answer with config.fallback_solver instead
};

struct SolveRequest {
  SolveRequest() = default;
  // Not an aggregate: the trailing members default without tripping
  // -Wmissing-field-initializers at the many shorter call sites.
  explicit SolveRequest(
      Instance instance, std::string solver = "portfolio",
      solver::Bounds bounds = {},
      double deadline_seconds = std::numeric_limits<double>::infinity(),
      DeadlinePolicy deadline_policy = DeadlinePolicy::kDowngrade,
      std::optional<solver::WarmStart> warm_start = {})
      : instance(std::move(instance)),
        solver(std::move(solver)),
        bounds(bounds),
        deadline_seconds(deadline_seconds),
        deadline_policy(deadline_policy),
        warm_start(std::move(warm_start)) {}

  Instance instance;
  std::string solver = "portfolio";  ///< registry name
  solver::Bounds bounds;

  /// Seconds from submission the caller is willing to wait before the
  /// solve *starts*; <= 0 expires immediately, +inf never.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  DeadlinePolicy deadline_policy = DeadlinePolicy::kDowngrade;

  /// Optional caller-supplied warm start in *canonical* processor
  /// labels (the shard router forwards its best local near-miss this
  /// way). Merged with — and superseded by — anything stronger the
  /// local near-miss index turns up; never changes the answer.
  std::optional<solver::WarmStart> warm_start;

  /// Externally minted trace id (the remote half of a forwarded solve
  /// records its spans under the id carried on the wire). 0 = mint one
  /// locally when telemetry is on.
  std::uint64_t trace_id = 0;
};

enum class ReplyStatus {
  kSolved,            ///< solution present
  kInfeasible,        ///< solver found no mapping under the bounds
  kRejectedQueue,     ///< admission control: backlog full
  kRejectedDeadline,  ///< deadline elapsed, policy kReject
  kError,             ///< unknown solver or solver exception (see error)
};

/// "solved", "infeasible", ... (the line protocol's status column).
const char* reply_status_name(ReplyStatus status) noexcept;

struct EngineStats;

/// Writes an EngineStats snapshot as one JSON object (the line
/// protocol's '# engine' payload and the fabric's stats frames).
void write_engine_stats_json(std::ostream& out, const EngineStats& stats);

struct SolveReply {
  ReplyStatus status = ReplyStatus::kError;
  std::optional<solver::Solution> solution;  ///< request's own labels
  bool cache_hit = false;
  bool near_miss = false;     ///< served via the bounds-monotone index
  bool deduplicated = false;  ///< attached to an in-flight twin
  bool downgraded = false;    ///< answered by the fallback solver
  std::string solver_used;    ///< empty when nothing was solved
  CanonicalHash key;          ///< the request's cache key
  /// Recorded solve cost of the answer (0 when unknown): rides the wire
  /// so a requesting rank's replica tier can scale its TTL with it.
  double cost_seconds = 0.0;
  std::string error;          ///< set iff status == kError
  /// The trace this reply was recorded under (0 when telemetry is off).
  std::uint64_t trace_id = 0;
  /// Spans the *answering* rank recorded for a forwarded solve, decoded
  /// off the wire reply; the origin shifts them by the wire span's
  /// start and merges them into its own trace.
  std::vector<obs::Span> remote_spans;
};

/// A future already holding `reply` — for paths (cache hits,
/// rejections, replica hits) that answer without touching a worker.
std::future<SolveReply> ready_reply_future(SolveReply reply);

/// Engine counters (monotonic; snapshot via SolveService::stats).
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;        ///< exact-key hits
  std::uint64_t dominating_hits = 0;   ///< near-miss answers (no solve)
  std::uint64_t warm_started = 0;      ///< solves run with a warm hint
  std::uint64_t solver_invocations = 0;  ///< session solves executed
  std::uint64_t deduplicated = 0;
  std::uint64_t batches = 0;           ///< batch tasks executed
  std::uint64_t batched_requests = 0;  ///< requests that shared a batch
  std::uint64_t downgraded = 0;
  std::uint64_t rejected_queue = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t errors = 0;
};

/// Writes the per-tier hit breakdown as one JSON object:
///   {"exact":..,"dominating":..,"warm_start":..,"miss":..}
/// exact = exact-key cache hits, dominating = near-miss answers served
/// without a solve, warm_start = solves accelerated by a hint, miss =
/// cold solves (solver_invocations - warm_started).
void write_hit_tiers_json(std::ostream& out, const EngineStats& stats);

struct ServiceConfig {
  /// Solver lookup table; the built-in registry when null.
  const solver::SolverRegistry* registry = nullptr;

  std::size_t threads = 0;  ///< worker pool size, hardware when 0

  bool cache_enabled = true;
  ShardedSolutionCache::Config cache;

  /// Near-miss reuse (requires the cache): bounds-monotone dominating
  /// hits answer without a solve, other near misses warm-start the
  /// solver. Both are answer-preserving, so this defaults on; turning
  /// it off (`--near-miss off`) is for A/B measurement.
  bool near_miss = true;

  /// Maximum number of accepted-but-unfinished requests (dedup waiters
  /// and cache hits do not count); 0 rejects everything.
  std::size_t max_queue_depth = 4096;

  /// Deadline downgrade target; must answer on any platform.
  std::string fallback_solver = "heur-p";

  /// Per-rank telemetry (metrics + tracer). nullptr = observability off:
  /// the hot path pays one null check and nothing else. Must outlive
  /// the service.
  obs::Telemetry* telemetry = nullptr;
};

class SolveService {
 public:
  explicit SolveService(ServiceConfig config = {});

  /// Drains every accepted request, then stops the pool.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Submits a request; the future is ready immediately on a cache hit
  /// or rejection, and resolves from a worker thread otherwise. Never
  /// throws on solver-level failures — they arrive as reply statuses.
  std::future<SolveReply> submit(SolveRequest request);

  /// submit() for callers that already canonicalized the request (the
  /// shard router does, to pick the owner shard) — skips the second
  /// canonicalization on the hot path. `canonical` MUST be
  /// canonicalize(request.instance) and `key` its request_key.
  std::future<SolveReply> submit_canonicalized(
      SolveRequest request,
      std::shared_ptr<const CanonicalInstance> canonical,
      const CanonicalHash& key);

  /// Blocks until every accepted request has been answered.
  void wait_idle();

  EngineStats stats() const;
  CacheStats cache_stats() const;
  ShardedSolutionCache& cache() noexcept { return cache_; }
  const ServiceConfig& config() const noexcept { return config_; }
  obs::Telemetry* telemetry() const noexcept { return config_.telemetry; }

 private:
  /// One caller attached to a pending query. Each waiter keeps its own
  /// canonical form (isomorphic twins need their own label translation)
  /// and its own deadline/policy (a duplicate must not be rejected or
  /// downgraded on a stranger's options).
  struct Waiter {
    std::promise<SolveReply> promise;
    std::shared_ptr<const CanonicalInstance> canonical;
    double deadline_seconds;
    DeadlinePolicy deadline_policy;
    std::chrono::steady_clock::time_point submitted;
    bool deduplicated;
    std::uint64_t trace_id = 0;  ///< this waiter's own trace
  };

  struct PendingQuery {
    std::shared_ptr<const CanonicalInstance> canonical;
    solver::Bounds bounds;
    CanonicalHash key;
    /// Warm hint harvested at submission (canonical labels); refreshed
    /// against the index again at solve time — earlier queries of the
    /// same batch may have produced stronger floors by then.
    std::optional<solver::WarmStart> warm;
    std::vector<Waiter> waiters;  ///< [0] = first submitter
  };

  struct Batch {
    std::shared_ptr<const CanonicalInstance> canonical;
    std::string solver_name;
    CanonicalHash key;  ///< batch key
    std::vector<std::unique_ptr<PendingQuery>> queries;
    /// Earliest absolute deadline over the queries' first submitters,
    /// maintained on insertion so pickup never rescans waiters. (A
    /// dedup waiter attaching to an in-flight query does not raise an
    /// open batch's urgency — pickup order is a scheduling heuristic;
    /// per-waiter deadline *semantics* are enforced in run_next_batch.)
    std::chrono::steady_clock::time_point earliest_deadline =
        std::chrono::steady_clock::time_point::max();
    /// Creation order, the tie-break: equal deadlines (the common
    /// all-infinite case) are served FIFO, not in map-iteration order.
    std::uint64_t sequence = 0;
  };

  /// What run_batch concluded for one query; finish_query renders it
  /// into per-waiter replies (statuses can differ per waiter when every
  /// waiter's deadline expired under mixed policies).
  struct QueryOutcome {
    enum class Kind {
      kError,     ///< unknown solver / solver exception
      kAnswered,  ///< solved with the requested solver
      kFallback,  ///< all deadlines expired; fallback answer available
      kRejected,  ///< all deadlines expired, every policy was kReject
    };
    Kind kind = Kind::kError;
    std::optional<solver::Solution> canonical_solution;
    std::string solver_used;
    std::string error;
    bool cache_hit = false;    ///< answered from cache at solve time
    bool near_miss = false;    ///< ... via the bounds-monotone index
    bool warm_started = false; ///< solve ran with a warm hint
    bool invoked = false;      ///< a session solve actually executed
    double cost_seconds = 0.0; ///< recorded cost of the answer

    /// Work phases recorded while the batch worker ran this query, in
    /// absolute time: finish_query converts them into per-waiter span
    /// offsets (each waiter has its own submit time and trace). The
    /// cpu/alloc attribution rides along when the profiler is on.
    struct TimedSpan {
      const char* name;
      std::chrono::steady_clock::time_point start;
      double duration_seconds;
      double cpu_seconds;
      std::uint64_t alloc_count;
      std::uint64_t alloc_bytes;
    };
    std::vector<TimedSpan> spans;
    std::chrono::steady_clock::time_point processing_started{};
  };

  /// One pool task: picks the open batch whose most urgent waiter has
  /// the earliest absolute deadline (deadline-aware pickup — FIFO would
  /// let a tight-deadline request expire behind patient backlog) and
  /// runs it to completion. Exactly one task is enqueued per batch
  /// created, so every task finds a batch to run.
  void run_next_batch();
  void finish_query(PendingQuery& query, const QueryOutcome& outcome);

  bool near_miss_enabled() const noexcept {
    return config_.cache_enabled && config_.near_miss;
  }

  /// find_dominating + promotion under the request's own key, so the
  /// next identical request is an exact hit. nullopt when the index
  /// holds nothing transferable (or near-miss reuse is off).
  std::optional<CachedSolution> dominating_answer(
      const CanonicalHash& bkey, const CanonicalHash& key,
      const solver::Bounds& bounds);

  /// Strengthens `warm` with the index's best feasible incumbent for
  /// (bkey, bounds), keeping whichever floor is higher.
  void merge_warm_hint(const CanonicalHash& bkey,
                       const solver::Bounds& bounds,
                       std::optional<solver::WarmStart>& warm);

  ServiceConfig config_;
  ShardedSolutionCache cache_;

  /// The engine's central lock, contention-profiled as "engine_queue"
  /// when telemetry is on.
  mutable obs::ProfiledMutex mutex_;
  /// _any: idle_cv_ waits on the ProfiledMutex above.
  std::condition_variable_any idle_cv_;
  std::size_t outstanding_ = 0;  ///< accepted, not yet answered
  std::unordered_map<CanonicalHash, PendingQuery*, CanonicalKeyHasher> in_flight_;
  std::unordered_map<CanonicalHash, std::shared_ptr<Batch>, CanonicalKeyHasher>
      open_batches_;
  std::uint64_t next_batch_sequence_ = 0;
  EngineStats stats_;

  /// Telemetry handles resolved once at construction (registration
  /// locks the registry); non-null iff config_.telemetry is set, and
  /// every record afterward is a lock-free relaxed add.
  obs::Counter* requests_counter_ = nullptr;
  /// Error/rejection counters, the alert engine's error_rate /
  /// reject_rate numerators (rejected = queue + deadline rejections).
  obs::Counter* errors_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  /// Submit-path allocation bill: totals plus the derived
  /// engine_allocs_per_request gauge (allocs_total / requests_total) —
  /// the zero-allocation rebuild's headline number.
  obs::Counter* request_allocs_counter_ = nullptr;
  obs::Counter* request_alloc_bytes_counter_ = nullptr;
  obs::Gauge* allocs_per_request_gauge_ = nullptr;
  obs::Histogram* request_latency_hist_ = nullptr;
  obs::Histogram* batch_wait_hist_ = nullptr;
  obs::Histogram* solver_run_hist_ = nullptr;
  /// Profiler component handles (profile_<name>_* counters), resolved
  /// once; null iff the telemetry registry is absent.
  obs::Profiler::Component* prof_canonicalize_ = nullptr;
  obs::Profiler::Component* prof_submit_ = nullptr;
  obs::Profiler::Component* prof_cache_lookup_ = nullptr;
  obs::Profiler::Component* prof_near_miss_ = nullptr;
  obs::Profiler::Component* prof_solver_run_ = nullptr;
  obs::Profiler::Component* prof_fallback_ = nullptr;
  obs::Profiler::Component* prof_batch_wait_ = nullptr;
  /// Contention probes (stable addresses the mutexes point at): the
  /// engine's own queue lock, one shared probe over every cache shard,
  /// and the worker pool's queue lock.
  obs::ProfiledMutex::Probe queue_probe_;
  obs::ProfiledMutex::Probe cache_probe_;
  obs::ProfiledMutex::Probe pool_probe_;
  /// Sampled to outstanding_ on submit and completion — the queue depth
  /// a scrape or flight-recorder tick sees is the instantaneous one.
  obs::Gauge* queue_depth_gauge_ = nullptr;
  /// "engine" liveness: load mirrors outstanding_; beats come from the
  /// batch runner so a wedged runner under continuous arrivals still
  /// ages out and trips the watchdog.
  obs::Heartbeat* heartbeat_ = nullptr;

  /// Declared last: destroyed first, so draining batch tasks still see
  /// a live mutex, cache and maps during ~SolveService.
  ThreadPool pool_;
};

}  // namespace prts::service
