// Wire serialization of solve requests and replies for the fabric's
// framed transport (src/net/): line-oriented text payloads reusing the
// canonical instance form of model/serialize.hpp and the cache entry
// codec of service/cache.hpp, so every double survives the network
// bit-exactly and a forwarded solve replays byte-identical metrics.
//
// Request payload:
//   prts-solve-request v1
//   solver <name>
//   period <canonical_number|inf>
//   latency <canonical_number|inf>
//   deadline <canonical_number|inf>
//   policy reject|downgrade
//   trace <hex16>              (optional: the origin's trace id; the
//                               owner records its spans under it so the
//                               forwarded solve stays ONE trace)
//   warm <encode_cache_entry>  (optional: the requester's best local
//                               near-miss incumbent, canonical labels;
//                               its key field is ignored)
//   instance
//   <write_instance_canonical text>
//
// Reply payload:
//   prts-solve-reply v1
//   status <reply_status_name>
//   hit 0|1
//   near 0|1
//   down 0|1
//   solver <name|->
//   cost <canonical_number>    (recorded solve cost; feeds the
//                               requester's adaptive replica TTL)
//   error <message>            (only when status == error)
//   span <rank> <start> <dur> <name>
//                              (0+ lines: the answering rank's trace
//                               spans, offsets from ITS submit point;
//                               the origin shifts and merges them)
//   entry <encode_cache_entry> (only when a solution/infeasible answer
//                               is present; carries key + solution)
//   key <hash-hex>             (only when no entry line is present)
//
// Gossip digest payload (kGossipDigest; the sender announces its hot
// *owned* keys so peers can prefetch them):
//   prts-gossip v1
//   rank <sender rank>
//   keys <n>
//   <hash-hex> <hit count>     x n
//
// Replica fetch payload (kReplicaFetch):
//   prts-replica-fetch v1
//   keys <n>
//   <hash-hex>                 x n
//
// Replica fetch reply payload (kReplicaFetchReply; only the keys the
// owner still holds — a fetch is best-effort):
//   prts-replica-entries v1
//   entries <n>
//   <encode_cache_entry>       x n
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "service/engine.hpp"
#include "service/membership.hpp"

namespace prts::service {

std::string encode_wire_request(const SolveRequest& request);

/// nullopt on malformed payloads (wrong header, bad numbers, bad
/// instance text); `error` names the first offending line.
std::optional<SolveRequest> decode_wire_request(std::string_view payload,
                                                std::string& error);

std::string encode_wire_reply(const SolveReply& reply);

std::optional<SolveReply> decode_wire_reply(std::string_view payload,
                                            std::string& error);

/// One rank's view of its hot owned keys since the last gossip round.
struct GossipDigest {
  std::size_t rank = 0;  ///< the sender (owner of every key below)
  struct Entry {
    CanonicalHash key;
    std::uint64_t hits = 0;
  };
  std::vector<Entry> entries;
};

std::string encode_gossip_digest(const GossipDigest& digest);

std::optional<GossipDigest> decode_gossip_digest(std::string_view payload,
                                                 std::string& error);

std::string encode_replica_fetch(const std::vector<CanonicalHash>& keys);

std::optional<std::vector<CanonicalHash>> decode_replica_fetch(
    std::string_view payload, std::string& error);

std::string encode_replica_entries(
    const std::vector<std::pair<CanonicalHash, CachedSolution>>& entries);

std::optional<std::vector<std::pair<CanonicalHash, CachedSolution>>>
decode_replica_entries(std::string_view payload, std::string& error);

// Membership codecs (kJoinRequest / kMembershipUpdate):
//
//   prts-join v1
//   rank <r>
//   port <p>
//   host <h>
//
//   prts-membership v1
//   from <sender rank>
//   epoch <e>
//   members <n>
//   <rank> <port> <host>       x n  (host last: it is the only field
//                                    that could ever hold a space)

std::string encode_join_request(const Member& member);

std::optional<Member> decode_join_request(std::string_view payload,
                                          std::string& error);

/// A full epoch-stamped view plus who sent it (the receiver refreshes
/// the sender's heartbeat from `from`).
struct MembershipUpdate {
  std::size_t from = 0;
  MembershipView view;
};

std::string encode_membership_update(const MembershipUpdate& update);

std::optional<MembershipUpdate> decode_membership_update(
    std::string_view payload, std::string& error);

// Handoff codecs (kHandoffBegin / kHandoffChunk / kHandoffDone): the
// old owner streams a new member's ring slice as bounded batches of
// cache-entry lines (the PRTS1 entry codec), bracketed by begin/done
// stamps.
//
//   prts-handoff-begin v1 | prts-handoff-done v1
//   epoch <e>
//   from <sender rank>
//   entries <n>                (begin: announced total; done: streamed)
//
//   prts-handoff-chunk v1
//   epoch <e>
//   from <sender rank>
//   entries <n>
//   <encode_cache_entry>       x n

struct HandoffStamp {
  std::uint64_t epoch = 0;
  std::size_t from = 0;
  std::size_t entries = 0;
};

std::string encode_handoff_begin(const HandoffStamp& stamp);
std::string encode_handoff_done(const HandoffStamp& stamp);

/// Decodes a begin OR done stamp (same body, different header).
std::optional<HandoffStamp> decode_handoff_stamp(std::string_view payload,
                                                 std::string& error);

struct HandoffChunk {
  std::uint64_t epoch = 0;
  std::size_t from = 0;
  std::vector<std::pair<CanonicalHash, CachedSolution>> entries;
};

std::string encode_handoff_chunk(const HandoffChunk& chunk);

std::optional<HandoffChunk> decode_handoff_chunk(std::string_view payload,
                                                 std::string& error);

}  // namespace prts::service
