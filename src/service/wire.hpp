// Wire serialization of solve requests and replies for the fabric's
// framed transport (src/net/): line-oriented text payloads reusing the
// canonical instance form of model/serialize.hpp and the cache entry
// codec of service/cache.hpp, so every double survives the network
// bit-exactly and a forwarded solve replays byte-identical metrics.
//
// Request payload:
//   prts-solve-request v1
//   solver <name>
//   period <canonical_number|inf>
//   latency <canonical_number|inf>
//   deadline <canonical_number|inf>
//   policy reject|downgrade
//   instance
//   <write_instance_canonical text>
//
// Reply payload:
//   prts-solve-reply v1
//   status <reply_status_name>
//   hit 0|1
//   down 0|1
//   solver <name|->
//   error <message>            (only when status == error)
//   entry <encode_cache_entry> (only when a solution/infeasible answer
//                               is present; carries key + solution)
//   key <hash-hex>             (only when no entry line is present)
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "service/engine.hpp"

namespace prts::service {

std::string encode_wire_request(const SolveRequest& request);

/// nullopt on malformed payloads (wrong header, bad numbers, bad
/// instance text); `error` names the first offending line.
std::optional<SolveRequest> decode_wire_request(std::string_view payload,
                                                std::string& error);

std::string encode_wire_reply(const SolveReply& reply);

std::optional<SolveReply> decode_wire_reply(std::string_view payload,
                                            std::string& error);

}  // namespace prts::service
