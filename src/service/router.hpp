// The shard router (top of the distributed solve fabric): N cooperating
// `prts_cli serve` processes present one logical cache whose capacity
// scales with N, by partitioning the canonical-hash keyspace
//
//   shard(key) = key.hi mod world_size
//
// A submitted request is canonicalized once; keys this rank owns go
// straight to the local SolveService, keys owned by a peer are
// forwarded over a per-peer MuxFrameClient (protocol v2: one connection
// carries many in-flight forwards, replies correlated by request id) as
// the *canonical* instance (so the remote answer comes back in
// canonical labels and each waiter translates into its own). Identical
// remote-shard requests submitted
// while a forward is in flight attach to it — the router-level
// counterpart of the engine's in-flight dedup, so a thundering herd of
// isomorphic misses costs one network exchange.
//
// Hot-entry replication: every authoritative remote answer is also
// copied into a bounded, TTL'd *replica cache* on this rank (entries
// are immutable, so there is no invalidation protocol), and repeat hits
// on a peer's keys are absorbed locally — steady-state repeat traffic
// stops crossing the network. On top of that, ranks gossip per-key
// hit-count digests of their hot owned keys on a timer; a peer
// receiving a digest prefetches the top-K keys it lacks (one
// kReplicaFetch exchange), so a key that is hot *anywhere* becomes
// cheap *everywhere* before the first local request even arrives.
//
// Near-miss hints: a remote-shard miss consults the *local* cache's
// bounds-monotone index before crossing the wire — the best feasible
// incumbent for the request (from replicated or fallback-solved entries
// of the same instance) rides along as a solver::WarmStart, so the
// owner prunes its solve with the requester's knowledge. Answer bytes
// never change (the WarmStart contract); only the owner's work does.
//
// Degradation: a peer that cannot be reached (or answers garbage)
// makes the request fall back to the local engine — correctness never
// depends on the fabric, only capacity does. The mux client marks the
// peer suspect and fails fast during its backoff window, so a dead
// peer costs one connect timeout, not one per request, and connection
// death fails every in-flight forward at once — failover fires exactly
// once per waiter. Failover re-submits every attached waiter locally
// with its own deadline policy and its *remaining* deadline budget
// (time already burned on the wire is charged, floored at zero); the
// engine's dedup collapses them to exactly one solve.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.hpp"
#include "net/frame_client.hpp"
#include "net/frame_server.hpp"
#include "net/mux_client.hpp"
#include "service/engine.hpp"
#include "service/membership.hpp"
#include "service/wire.hpp"

namespace prts::service {

struct PeerAddress {
  std::string host;
  std::uint16_t port = 0;
};

class ShardRouter;

/// The server-side half of a fabric node: a net::FrameHandler that
/// answers kSolveRequest frames against the local service (blocking on
/// the reply — run it on a pool dedicated to the FrameServer), kPing
/// with kPong, kStatsRequest with one JSON object carrying the engine
/// and cache counters, and kReplicaFetch with the requested cache
/// entries (peek only — a fetch never disturbs the owner's LRU order).
/// Undecodable payloads get kError frames.
///
/// `router` resolves this node's ShardRouter at call time (it is
/// usually constructed *after* the server, since peers need the bound
/// port): when it yields one, kGossipDigest frames are handed to it for
/// prefetching and solved keys are counted toward the gossip digest;
/// when it yields nullptr, gossip frames are acknowledged and dropped.
net::FrameHandler make_fabric_handler(
    SolveService& service,
    std::function<ShardRouter*()> router = {});

/// Parses "host:port,host:port,..." (one entry per rank, in rank
/// order); nullopt on malformed input.
std::optional<std::vector<PeerAddress>> parse_peer_list(
    const std::string& text);

struct RouterConfig {
  std::size_t world_size = 1;
  std::size_t rank = 0;
  /// One address per rank; the entry at `rank` is ignored (self).
  /// Unused in elastic mode, where the member list is dynamic.
  std::vector<PeerAddress> peers;
  net::FrameClientConfig client;

  /// Elastic membership (src/service/membership.hpp): ranks join by
  /// dialing any seed, ownership follows the consistent-hash ring, and
  /// join/leave/death moves only the affected key slices (streamed by
  /// their old owners as kHandoff* frames). When false the router is
  /// the classic static fabric: fixed world_size, `hi mod world`.
  bool elastic = false;
  /// Failure-detection knobs (self_rank is overwritten with `rank`).
  Membership::Config membership;
  /// This rank's own address, announced to the fleet on join and
  /// carried in every membership view.
  PeerAddress advertise;
  /// Any live member to dial on startup; nullopt founds a new fleet.
  /// Unreachable seeds are retried from the heartbeat loop.
  std::optional<PeerAddress> join_seed;
  /// Seconds between heartbeat rounds (membership-view exchanges +
  /// failure-detection ticks); <= 0 disables the timer (tests drive
  /// rounds via heartbeat_now()). Elastic only.
  double heartbeat_interval_seconds = 0.5;
  /// Cache entries per kHandoffChunk frame — bounds both the frame
  /// size and how long the receiving rank's handler holds its cache.
  std::size_t handoff_chunk_entries = 64;
  /// Threads running blocking forward exchanges (and replica
  /// prefetches). Peer links are protocol-v2 MuxFrameClients, so
  /// exchanges to ONE peer pipeline on its single connection (replies
  /// correlate by request id) — this caps total in-flight forwards,
  /// per peer and across peers alike.
  std::size_t forward_threads = 8;

  /// The replica tier (capacity_bytes 0 disables replication).
  ReplicaCache::Config replica;
  /// Seconds between gossip rounds; <= 0 disables the timer (tests and
  /// benches drive rounds explicitly via gossip_now()).
  double gossip_interval_seconds = 0.0;
  /// At most this many keys per digest, and at most this many
  /// prefetched per received digest.
  std::size_t gossip_top_k = 16;
  /// Keys with fewer hits since the last round are not worth
  /// announcing (a single hit is not "hot").
  std::uint64_t gossip_min_hits = 2;

  /// This rank's telemetry, shared with its SolveService (the same
  /// Telemetry object so traces begun by the router continue in the
  /// engine and vice versa). nullptr = observability off. Must outlive
  /// the router; per-peer FrameClient counters register under
  /// net_client_rank<r>_*.
  obs::Telemetry* telemetry = nullptr;
};

/// Monotonic router counters (snapshot via ShardRouter::stats).
struct RouterStats {
  std::uint64_t local = 0;      ///< keys this rank owns
  std::uint64_t forwarded = 0;  ///< remote keys answered by their owner
  std::uint64_t forward_hits = 0;      ///< ... that were remote cache hits
  std::uint64_t forward_failures = 0;  ///< peer down or bad reply
  std::uint64_t local_fallbacks = 0;   ///< remote keys solved locally
  std::uint64_t deduplicated = 0;      ///< attached to an in-flight forward
  std::uint64_t replica_hits = 0;   ///< remote keys served from the replica
                                    ///< tier (no network round trip)
  std::uint64_t prefetched = 0;     ///< replica entries pulled via gossip
  std::uint64_t gossip_sent = 0;      ///< digests acknowledged by a peer
  std::uint64_t gossip_failures = 0;  ///< digests a peer never acked
  std::uint64_t gossip_received = 0;  ///< digests received from peers
};

/// Elastic-membership counters (snapshot via membership_stats; all
/// zero on a static router).
struct MembershipStats {
  std::uint64_t epoch = 0;   ///< current membership epoch
  std::size_t members = 0;   ///< current member count (incl. self)
  std::uint64_t joins = 0;   ///< members admitted (seen joining)
  std::uint64_t deaths = 0;  ///< members removed after silence
  std::uint64_t suspects = 0;          ///< healthy -> suspect transitions
  std::uint64_t handoffs_started = 0;  ///< slices this rank began streaming
  std::uint64_t handoffs_completed = 0;  ///< ... streamed to the end
  std::uint64_t handoff_chunks_sent = 0;
  std::uint64_t handoff_chunks_received = 0;
  std::uint64_t handoff_entries_sent = 0;
  std::uint64_t handoff_entries_received = 0;
  /// Answers served for a key the ring now assigns elsewhere, copied to
  /// the new owner (the transition-window write path).
  std::uint64_t double_writes = 0;
};

class ShardRouter {
 public:
  /// The service answers local-shard requests and degraded remote ones;
  /// it must outlive the router.
  ShardRouter(SolveService& service, RouterConfig config);

  /// Stops the gossip timer, then drains every in-flight forward and
  /// prefetch.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  std::size_t rank() const noexcept { return config_.rank; }
  std::size_t world_size() const noexcept { return config_.world_size; }
  bool elastic() const noexcept { return config_.elastic; }

  /// The rank owning `key`: the consistent-hash ring under elastic
  /// membership, `hi mod world` on the static fabric.
  std::size_t shard_of(const CanonicalHash& key) const {
    return config_.elastic
               ? membership_.owner_of(key)
               : static_cast<std::size_t>(key.hi % config_.world_size);
  }

  /// True when requests can route to another rank right now (static:
  /// world > 1; elastic: more than one live member).
  bool distributed() const {
    return config_.elastic ? membership_.member_count() > 1
                           : config_.world_size > 1;
  }

  /// Routes one request; the future resolves exactly like
  /// SolveService::submit's (statuses, never exceptions).
  std::future<SolveReply> submit(SolveRequest request);

  /// True while the peer owning `rank` is inside its backoff window.
  bool peer_suspect(std::size_t rank) const;

  /// Runs one gossip round synchronously: snapshot + reset the hit
  /// counts of this rank's hot owned keys, send one kGossipDigest to
  /// every reachable peer. Peers prefetch asynchronously — their
  /// replica caches fill shortly after their ack, not upon it. Also
  /// called by the interval timer when gossip_interval_seconds > 0.
  void gossip_now();

  /// Handles a digest received from a peer: schedules one background
  /// kReplicaFetch for the hottest announced keys missing from the
  /// replica tier. Never blocks on the network (two ranks gossiping at
  /// each other must not deadlock on their shared per-peer
  /// connections).
  void handle_gossip_digest(GossipDigest digest);

  /// Counts one served request against `key` for the next digest
  /// (no-op unless this rank owns the key). The fabric handler calls
  /// this for peer traffic; submit() for local traffic.
  void note_owned_hit(const CanonicalHash& key);

  /// Blocks until every scheduled prefetch has completed (test and
  /// bench determinism).
  void wait_prefetches_idle();

  // --- Elastic membership (no-ops / empty on a static router) ---

  /// The current membership epoch (0 when not elastic).
  std::uint64_t epoch() const;
  MembershipView membership_view() const;
  MembershipStats membership_stats() const;

  /// Dials the configured join seed once, synchronously: kJoinRequest
  /// out, the seed's merged view adopted from the reply. True when the
  /// fleet now has more than one member. Called by the constructor and
  /// retried by the heartbeat loop while the rank is still alone.
  bool join_now();

  /// One synchronous heartbeat round: failure-detection tick, then one
  /// kMembershipUpdate exchange per live peer (dispatched to the
  /// forward pool — a dead peer's connect timeout never stalls the
  /// caller). Also called by the interval timer.
  void heartbeat_now();

  /// Handles the membership/handoff frame families (kJoinRequest,
  /// kMembershipUpdate, kHandoffBegin/Chunk/Done) — the server half of
  /// the elastic protocol, called by make_fabric_handler. kError on a
  /// static router.
  net::Frame handle_fabric_frame(const net::Frame& request);

  /// Ships the freshly-answered `key` to its new ring owner when the
  /// ring no longer assigns it here (one async single-entry handoff
  /// chunk): the handoff-window double-write. No-op when not elastic
  /// or the key is still ours.
  void maybe_double_write(const CanonicalHash& key);

  /// Blocks until every scheduled handoff stream has completed (test
  /// and bench determinism).
  void wait_handoffs_idle();

  RouterStats stats() const;
  ReplicaStats replica_stats() const { return replicas_.stats(); }
  static void write_stats_json(std::ostream& out, const RouterStats& stats);
  static void write_membership_stats_json(std::ostream& out,
                                          const MembershipStats& stats);

  /// Per-peer FrameClient counters, one (rank, stats) pair per wired
  /// peer (self has no client) — surfaces reconnect/backoff/suspect
  /// churn in the merged stats document.
  std::vector<std::pair<std::size_t, net::FrameClientStats>> client_stats()
      const;

 private:
  /// One forward in flight: the canonical request plus every waiter
  /// attached to it. Each waiter keeps its own label translation and
  /// its own deadline options — failover must not reject a patient
  /// waiter on an impatient stranger's policy.
  struct ForwardWaiter {
    std::promise<SolveReply> promise;
    std::shared_ptr<const CanonicalInstance> canonical;
    double deadline_seconds;
    DeadlinePolicy deadline_policy;
    bool deduplicated = false;
    std::uint64_t trace_id = 0;  ///< this waiter's own trace
    std::chrono::steady_clock::time_point submitted{};
  };
  struct Forward {
    std::shared_ptr<const CanonicalInstance> canonical;
    solver::Bounds bounds;
    std::string solver;
    /// The requester's best local near-miss (canonical labels), carried
    /// on the wire so the owner's solve starts warm.
    std::optional<solver::WarmStart> warm;
    /// The first submitter's deadline options, carried on the wire (a
    /// later waiter's options only matter on the failover path).
    double deadline_seconds;
    DeadlinePolicy deadline_policy;
    CanonicalHash key;
    std::size_t owner_rank;
    std::vector<ForwardWaiter> waiters;
    /// The first submitter's trace id, carried on the wire so the
    /// owner's spans land in the same trace.
    std::uint64_t trace_id = 0;
  };

  void run_forward(std::shared_ptr<Forward> forward);
  void run_prefetch(std::size_t owner, std::vector<CanonicalHash> keys);
  void finish_prefetch(std::size_t fetched);

  /// The client wired to `rank`, lazily created from the membership
  /// view (elastic) or the static peer list; nullptr for self and for
  /// ranks with no known address. Created clients live until the
  /// router dies (an address change retires the old client without
  /// destroying it — in-flight exchanges may still hold it).
  net::MuxFrameClient* client_for(std::size_t rank);
  /// client_for without the create (health probes).
  net::MuxFrameClient* client_lookup(std::size_t rank) const;
  /// Every rank this one should talk to right now (membership view or
  /// static peer list; never self).
  std::vector<std::size_t> peer_ranks() const;
  /// True when `rank` is a rank gossip/prefetch may trust.
  bool known_rank(std::size_t rank) const;

  /// Reacts to a membership change: counters/gauges, client retirement
  /// on address change, and one scheduled handoff stream per joined
  /// member (this rank streams the slice the ring now assigns to the
  /// newcomer).
  void apply_membership_changes(const Membership::ChangeSet& changes);
  void schedule_handoff(const Member& target);
  void run_handoff(Member target, std::uint64_t epoch);
  void finish_handoff(bool completed);
  /// Updates the epoch/member-count gauges from the current view.
  void publish_membership_gauges();

  net::Frame handle_join_frame(const net::Frame& request);
  net::Frame handle_membership_frame(const net::Frame& request);
  net::Frame handle_handoff_frame(const net::Frame& request);

  SolveService& service_;
  RouterConfig config_;
  Membership membership_;  ///< inert on a static router

  /// Guards the client map only (leaf lock: taken while neither mutex_
  /// nor the membership lock is held... and never the reverse).
  mutable std::mutex clients_mutex_;
  std::unordered_map<std::size_t, std::unique_ptr<net::MuxFrameClient>>
      clients_;
  /// Clients replaced after an address change (a restarted member on a
  /// new port). Kept alive until destruction: a forward in flight may
  /// still be blocked inside one.
  std::vector<std::unique_ptr<net::MuxFrameClient>> retired_clients_;

  ReplicaCache replicas_;

  /// The router's central lock (in-flight map, stats, hit counts),
  /// contention-profiled as "router_inflight" when telemetry is on.
  mutable obs::ProfiledMutex mutex_;
  std::unordered_map<CanonicalHash, Forward*, CanonicalKeyHasher> in_flight_;
  /// Hits on owned keys since the last gossip round (windowed counts:
  /// gossip_now snapshots and clears, so "hot" means *recently* hot).
  std::unordered_map<CanonicalHash, std::uint64_t, CanonicalKeyHasher> owned_hits_;
  std::size_t outstanding_prefetches_ = 0;
  std::size_t outstanding_handoffs_ = 0;
  /// _any: waits on the ProfiledMutex above (prefetch AND handoff
  /// drains — notify_all covers both predicates).
  std::condition_variable_any prefetch_cv_;
  RouterStats stats_;
  MembershipStats membership_stats_;
  /// Last epoch a handoff stream was scheduled toward each rank — the
  /// dedup that keeps one membership change from streaming the same
  /// slice twice (equal-epoch updates arrive from several peers).
  std::unordered_map<std::size_t, std::uint64_t> handoff_epochs_;
  /// Ranks with a heartbeat exchange currently in flight (the timer
  /// must not stack exchanges onto a slow peer).
  std::unordered_set<std::size_t> heartbeats_in_flight_;

  /// Telemetry handles resolved once at construction; non-null iff
  /// config_.telemetry is set.
  obs::Histogram* wire_hist_ = nullptr;
  obs::Histogram* router_latency_hist_ = nullptr;
  /// Sampled to in_flight_.size() at forward insert/erase.
  obs::Gauge* inflight_gauge_ = nullptr;
  /// Periodic "router_gossip" heartbeat: expected every gossip interval.
  obs::Heartbeat* gossip_heartbeat_ = nullptr;
  /// Profiler components: the wire exchange (nearly all blocked time —
  /// the forward thread waits on the peer) and the replica-tier probe.
  obs::Profiler::Component* prof_wire_ = nullptr;
  obs::Profiler::Component* prof_replica_ = nullptr;
  /// Contention probe the in-flight mutex points at.
  obs::ProfiledMutex::Probe inflight_probe_;

  /// Elastic telemetry handles; non-null iff telemetry is on AND the
  /// router is elastic.
  obs::Gauge* epoch_gauge_ = nullptr;
  obs::Gauge* members_gauge_ = nullptr;
  obs::Counter* joins_counter_ = nullptr;
  obs::Counter* deaths_counter_ = nullptr;
  obs::Counter* suspects_counter_ = nullptr;
  obs::Counter* handoff_entries_sent_counter_ = nullptr;
  obs::Counter* handoff_entries_received_counter_ = nullptr;
  obs::Histogram* handoff_chunk_hist_ = nullptr;
  /// Periodic "router_membership" heartbeat (elastic timer liveness).
  obs::Heartbeat* membership_heartbeat_ = nullptr;

  /// The periodic fabric timer: gossip rounds on a static router,
  /// heartbeat rounds (+ gossip, when due) on an elastic one.
  std::mutex gossip_mutex_;
  std::condition_variable gossip_cv_;
  bool gossip_stop_ = false;
  std::thread gossip_thread_;

  /// Declared last: destroyed first, so draining forward and prefetch
  /// tasks still see live clients, caches, maps and the service.
  ThreadPool forward_pool_;
};

}  // namespace prts::service
