// The shard router (top of the distributed solve fabric): N cooperating
// `prts_cli serve` processes present one logical cache whose capacity
// scales with N, by partitioning the canonical-hash keyspace
//
//   shard(key) = key.hi mod world_size
//
// A submitted request is canonicalized once; keys this rank owns go
// straight to the local SolveService, keys owned by a peer are
// forwarded over a FrameClient as the *canonical* instance (so the
// remote answer comes back in canonical labels and each waiter
// translates into its own). Identical remote-shard requests submitted
// while a forward is in flight attach to it — the router-level
// counterpart of the engine's in-flight dedup, so a thundering herd of
// isomorphic misses costs one network exchange.
//
// Degradation: a peer that cannot be reached (or answers garbage)
// makes the request fall back to the local engine — correctness never
// depends on the fabric, only capacity does. The FrameClient marks the
// peer suspect and fails fast during its backoff window, so a dead
// peer costs one connect timeout, not one per request.
#pragma once

#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "net/frame_client.hpp"
#include "net/frame_server.hpp"
#include "service/engine.hpp"

namespace prts::service {

struct PeerAddress {
  std::string host;
  std::uint16_t port = 0;
};

/// The server-side half of a fabric node: a net::FrameHandler that
/// answers kSolveRequest frames against the local service (blocking on
/// the reply — run it on a pool dedicated to the FrameServer), kPing
/// with kPong, and kStatsRequest with one JSON object carrying the
/// engine and cache counters. Undecodable payloads get kError frames.
net::FrameHandler make_fabric_handler(SolveService& service);

/// Parses "host:port,host:port,..." (one entry per rank, in rank
/// order); nullopt on malformed input.
std::optional<std::vector<PeerAddress>> parse_peer_list(
    const std::string& text);

struct RouterConfig {
  std::size_t world_size = 1;
  std::size_t rank = 0;
  /// One address per rank; the entry at `rank` is ignored (self).
  std::vector<PeerAddress> peers;
  net::FrameClientConfig client;
  /// Threads running blocking forward exchanges. Note exchanges to one
  /// peer additionally serialize on that peer's single connection
  /// (FrameClient matches replies to requests by ordering), so this
  /// caps concurrency *across* peers; per-peer pipelining is a
  /// follow-up (see ROADMAP "Fabric hardening").
  std::size_t forward_threads = 4;
};

/// Monotonic router counters (snapshot via ShardRouter::stats).
struct RouterStats {
  std::uint64_t local = 0;      ///< keys this rank owns
  std::uint64_t forwarded = 0;  ///< remote keys answered by their owner
  std::uint64_t forward_hits = 0;      ///< ... that were remote cache hits
  std::uint64_t forward_failures = 0;  ///< peer down or bad reply
  std::uint64_t local_fallbacks = 0;   ///< remote keys solved locally
  std::uint64_t deduplicated = 0;      ///< attached to an in-flight forward
};

class ShardRouter {
 public:
  /// The service answers local-shard requests and degraded remote ones;
  /// it must outlive the router.
  ShardRouter(SolveService& service, RouterConfig config);

  /// Drains every in-flight forward.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  std::size_t rank() const noexcept { return config_.rank; }
  std::size_t world_size() const noexcept { return config_.world_size; }

  std::size_t shard_of(const CanonicalHash& key) const noexcept {
    return static_cast<std::size_t>(key.hi % config_.world_size);
  }

  /// Routes one request; the future resolves exactly like
  /// SolveService::submit's (statuses, never exceptions).
  std::future<SolveReply> submit(SolveRequest request);

  /// True while the peer owning `rank` is inside its backoff window.
  bool peer_suspect(std::size_t rank) const;

  RouterStats stats() const;
  static void write_stats_json(std::ostream& out, const RouterStats& stats);

 private:
  /// One forward in flight: the canonical request plus every waiter
  /// attached to it (each with its own label translation).
  struct ForwardWaiter {
    std::promise<SolveReply> promise;
    std::shared_ptr<const CanonicalInstance> canonical;
    bool deduplicated = false;
  };
  struct Forward {
    std::shared_ptr<const CanonicalInstance> canonical;
    solver::Bounds bounds;
    std::string solver;
    double deadline_seconds;
    DeadlinePolicy deadline_policy;
    CanonicalHash key;
    std::size_t owner_rank;
    std::vector<ForwardWaiter> waiters;
  };

  struct KeyHasher {
    std::size_t operator()(const CanonicalHash& key) const noexcept {
      return static_cast<std::size_t>(key.lo);
    }
  };

  void run_forward(std::shared_ptr<Forward> forward);

  SolveService& service_;
  RouterConfig config_;
  std::vector<std::unique_ptr<net::FrameClient>> clients_;  ///< [rank]

  mutable std::mutex mutex_;
  std::unordered_map<CanonicalHash, Forward*, KeyHasher> in_flight_;
  RouterStats stats_;

  /// Declared last: destroyed first, so draining forward tasks still
  /// see live clients, maps and the service.
  ThreadPool forward_pool_;
};

}  // namespace prts::service
