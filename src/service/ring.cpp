#include "service/ring.hpp"

#include <algorithm>

namespace prts::service {
namespace {

/// The fixed 64-bit finalizer (splitmix64): stable across runs,
/// platforms and standard libraries — ring points must agree between
/// ranks built by different compilers.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void HashRing::rebuild(const std::vector<std::size_t>& ranks) {
  std::vector<std::size_t> unique = ranks;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  points_.clear();
  points_.reserve(unique.size() * config_.virtual_nodes);
  for (const std::size_t rank : unique) {
    for (std::size_t v = 0; v < config_.virtual_nodes; ++v) {
      Point point;
      // Two mix rounds decorrelate (rank, replica) pairs; a single
      // xor'd round leaves neighbouring ranks' points clustered.
      point.position = mix64(mix64(static_cast<std::uint64_t>(rank)) ^
                             (static_cast<std::uint64_t>(v) * 0xd1b54a32d192ed03ULL));
      point.rank = rank;
      points_.push_back(point);
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Position ties (vanishingly rare) break by rank so every
              // member builds the identical order.
              return a.position != b.position ? a.position < b.position
                                              : a.rank < b.rank;
            });
  members_ = unique.size();
}

std::uint64_t HashRing::key_position(const CanonicalHash& key) noexcept {
  // hi and lo are already avalanched by fingerprint(); one more mix
  // binds them so keys differing only in one half still spread.
  return mix64(key.hi ^ (key.lo * 0x2545f4914f6cdd1dULL));
}

std::size_t HashRing::owner_of(const CanonicalHash& key) const noexcept {
  const std::uint64_t position = key_position(key);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), position,
      [](const Point& point, std::uint64_t pos) {
        return point.position < pos;
      });
  // Wrap: a key past the last point belongs to the first.
  return it == points_.end() ? points_.front().rank : it->rank;
}

}  // namespace prts::service
