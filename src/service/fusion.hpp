// Campaign x service fusion: drives a scenario campaign's (instance x
// solver x sweep point) jobs through SolveService::submit instead of
// bare solver sessions, so sweep campaigns share the cross-run
// solution cache and in-flight dedup with interactive traffic — a
// sweep re-run after a warm start (or against a long-lived service)
// skips every solve it has already seen.
//
// Determinism contract (same as scenario::run_campaign): requests are
// submitted and drained in fixed job order and reduced sequentially
// with scenario::reduce_job_failures, so output is byte-identical for
// any thread count, any completion order, and any cache state.
// Caveat: the service solves *canonical* instances (processors sorted
// by (speed, failure rate)); on heterogeneous platforms a solver may
// legitimately pick a different tie-breaking mapping for the reordered
// platform than for the original, so fused results are deterministic
// and bound-equivalent but not guaranteed bit-equal to the unfused
// engine's — on homogeneous platforms (canonicalization is the
// identity) they are bit-equal.
#pragma once

#include "scenario/campaign.hpp"
#include "service/engine.hpp"

namespace prts::service {

/// Runs the campaign through `service`. Throws std::invalid_argument
/// on an empty or unknown solver list (mirroring run_campaign) and
/// std::runtime_error when the service rejects or errors a request
/// (backlog exhausted after retries, solver exception).
scenario::CampaignResult run_campaign_via_service(
    const scenario::CampaignSpec& spec, SolveService& service);

}  // namespace prts::service
