// Live background checkpointing of a serving rank: a timer thread (or
// an explicit checkpoint_now() — the `checkpoint` protocol verb)
// snapshots the solution cache to a PRTS1 binary file while requests
// keep flowing. The snapshot locks one cache shard at a time (the
// save_binary discipline), so a checkpoint never stops the world; it is
// written to `path + ".tmp"` and atomically renamed over `path`, so a
// crash mid-write leaves the previous complete checkpoint intact and a
// restarted rank always warm-starts from a self-consistent file.
//
// Combined with `--warm-start` and the elastic membership layer, this
// is the crash-recovery loop: SIGKILL a rank, restart it pointing at
// its checkpoint, and it rejoins the fleet with its slices already
// populated (cache_entries > 0 before the first request arrives).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/trace.hpp"
#include "service/cache.hpp"

namespace prts::service {

class Checkpointer {
 public:
  struct Config {
    /// Destination file (the PRTS1 snapshot readable by --warm-start
    /// and load_binary). Must be on the same filesystem as its ".tmp"
    /// sibling for the rename to be atomic — it is, by construction.
    std::string path;
    /// Seconds between background snapshots; <= 0 disables the timer
    /// (checkpoint_now() still works — manual / shutdown checkpoints).
    double interval_seconds = 0.0;
    /// Mirrors checkpoint counters + duration histogram when set; must
    /// outlive the checkpointer.
    obs::Telemetry* telemetry = nullptr;
  };

  struct Stats {
    std::uint64_t checkpoints = 0;  ///< successful snapshots
    std::uint64_t failures = 0;     ///< write or rename errors
    std::size_t last_entries = 0;   ///< entries in the last snapshot
    std::size_t last_bytes = 0;     ///< bytes of the last snapshot file
    double last_seconds = 0.0;      ///< wall time of the last snapshot
  };

  /// The cache must outlive the checkpointer. Starts the timer thread
  /// iff interval_seconds > 0.
  Checkpointer(const ShardedSolutionCache& cache, Config config);
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// One synchronous snapshot; false (with `error` filled when given)
  /// on IO failure. Safe to call concurrently with the timer — writes
  /// are serialized, the atomic rename makes the last writer win.
  bool checkpoint_now(std::string* error = nullptr);

  const std::string& path() const noexcept { return config_.path; }
  Stats stats() const;

 private:
  void timer_loop();

  const ShardedSolutionCache& cache_;
  const Config config_;

  /// Serializes snapshot writes (timer vs manual vs shutdown).
  std::mutex write_mutex_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  Stats stats_;

  obs::Counter* checkpoints_counter_ = nullptr;
  obs::Counter* failures_counter_ = nullptr;
  obs::Histogram* duration_hist_ = nullptr;

  std::thread timer_;  ///< joinable iff the interval timer is on
};

}  // namespace prts::service
