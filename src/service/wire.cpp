#include "service/wire.hpp"

#include <sstream>

#include "service/cache.hpp"

namespace prts::service {
namespace {

const char* policy_name(DeadlinePolicy policy) noexcept {
  return policy == DeadlinePolicy::kReject ? "reject" : "downgrade";
}

/// "status <x>" -> x; false when the line does not start with the key.
bool take_field(const std::string& line, std::string_view key,
                std::string& value) {
  if (line.size() < key.size() + 1 || line.compare(0, key.size(), key) != 0 ||
      line[key.size()] != ' ') {
    return false;
  }
  value = line.substr(key.size() + 1);
  return true;
}

std::optional<ReplyStatus> status_from_name(std::string_view name) {
  for (const ReplyStatus status :
       {ReplyStatus::kSolved, ReplyStatus::kInfeasible,
        ReplyStatus::kRejectedQueue, ReplyStatus::kRejectedDeadline,
        ReplyStatus::kError}) {
    if (name == reply_status_name(status)) return status;
  }
  return std::nullopt;
}

}  // namespace

std::string encode_wire_request(const SolveRequest& request) {
  std::ostringstream out;
  out << "prts-solve-request v1\n";
  out << "solver " << request.solver << "\n";
  out << "period " << canonical_number(request.bounds.period_bound) << "\n";
  out << "latency " << canonical_number(request.bounds.latency_bound)
      << "\n";
  out << "deadline " << canonical_number(request.deadline_seconds) << "\n";
  out << "policy " << policy_name(request.deadline_policy) << "\n";
  out << "instance\n";
  write_instance_canonical(out, request.instance);
  return out.str();
}

std::optional<SolveRequest> decode_wire_request(std::string_view payload,
                                                std::string& error) {
  std::istringstream in{std::string(payload)};
  std::string line;

  const auto bad = [&](const std::string& what) {
    error = what;
    return std::nullopt;
  };

  if (!std::getline(in, line) || line != "prts-solve-request v1") {
    error = "expected header 'prts-solve-request v1'";
    return std::nullopt;
  }

  std::string solver;
  solver::Bounds bounds;
  double deadline_seconds = 0.0;
  DeadlinePolicy policy = DeadlinePolicy::kDowngrade;

  std::string value;
  if (!std::getline(in, line) || !take_field(line, "solver", value) ||
      value.empty()) {
    return bad("expected 'solver <name>'");
  }
  solver = value;
  if (!std::getline(in, line) || !take_field(line, "period", value) ||
      !parse_canonical_number(value, bounds.period_bound)) {
    return bad("expected 'period <number>'");
  }
  if (!std::getline(in, line) || !take_field(line, "latency", value) ||
      !parse_canonical_number(value, bounds.latency_bound)) {
    return bad("expected 'latency <number>'");
  }
  if (!std::getline(in, line) || !take_field(line, "deadline", value) ||
      !parse_canonical_number(value, deadline_seconds)) {
    return bad("expected 'deadline <number>'");
  }
  if (!std::getline(in, line) || !take_field(line, "policy", value)) {
    return bad("expected 'policy reject|downgrade'");
  }
  if (value == "reject") {
    policy = DeadlinePolicy::kReject;
  } else if (value == "downgrade") {
    policy = DeadlinePolicy::kDowngrade;
  } else {
    return bad("unknown policy '" + value + "'");
  }
  if (!std::getline(in, line) || line != "instance") {
    return bad("expected 'instance'");
  }

  std::string body;
  while (std::getline(in, line)) {
    body += line;
    body += "\n";
  }
  ParseResult parsed = instance_from_text(body);
  if (!parsed) return bad("instance: " + parsed.error);
  return SolveRequest{std::move(*parsed.instance), std::move(solver), bounds,
                      deadline_seconds, policy};
}

std::string encode_wire_reply(const SolveReply& reply) {
  std::ostringstream out;
  out << "prts-solve-reply v1\n";
  out << "status " << reply_status_name(reply.status) << "\n";
  out << "hit " << (reply.cache_hit ? 1 : 0) << "\n";
  out << "down " << (reply.downgraded ? 1 : 0) << "\n";
  out << "solver " << (reply.solver_used.empty() ? "-" : reply.solver_used)
      << "\n";
  if (reply.status == ReplyStatus::kError) {
    out << "error " << reply.error << "\n";
  }
  if (reply.status == ReplyStatus::kSolved ||
      reply.status == ReplyStatus::kInfeasible) {
    out << "entry " << encode_cache_entry(reply.key,
                                          CachedSolution{reply.solution})
        << "\n";
  } else {
    out << "key " << to_hex(reply.key) << "\n";
  }
  return out.str();
}

std::optional<SolveReply> decode_wire_reply(std::string_view payload,
                                            std::string& error) {
  std::istringstream in{std::string(payload)};
  std::string line;

  const auto bad = [&](const std::string& what) {
    error = what;
    return std::nullopt;
  };

  if (!std::getline(in, line) || line != "prts-solve-reply v1") {
    error = "expected header 'prts-solve-reply v1'";
    return std::nullopt;
  }

  SolveReply reply;
  std::string value;
  if (!std::getline(in, line) || !take_field(line, "status", value)) {
    return bad("expected 'status <name>'");
  }
  const auto status = status_from_name(value);
  if (!status) return bad("unknown status '" + value + "'");
  reply.status = *status;

  if (!std::getline(in, line) || !take_field(line, "hit", value) ||
      (value != "0" && value != "1")) {
    return bad("expected 'hit 0|1'");
  }
  reply.cache_hit = value == "1";
  if (!std::getline(in, line) || !take_field(line, "down", value) ||
      (value != "0" && value != "1")) {
    return bad("expected 'down 0|1'");
  }
  reply.downgraded = value == "1";
  if (!std::getline(in, line) || !take_field(line, "solver", value)) {
    return bad("expected 'solver <name>'");
  }
  reply.solver_used = value == "-" ? "" : value;

  while (std::getline(in, line)) {
    if (take_field(line, "error", value)) {
      reply.error = value;
    } else if (take_field(line, "entry", value)) {
      CachedSolution entry;
      std::string why;
      if (!parse_cache_entry(value, reply.key, entry, why)) {
        return bad("entry: " + why);
      }
      reply.solution = std::move(entry.solution);
    } else if (take_field(line, "key", value)) {
      const auto key = hash_from_hex(value);
      if (!key) return bad("malformed key '" + value + "'");
      reply.key = *key;
    } else if (!line.empty()) {
      return bad("unexpected line '" + line + "'");
    }
  }

  if (reply.status == ReplyStatus::kSolved && !reply.solution) {
    return bad("status solved but no solution entry");
  }
  return reply;
}

}  // namespace prts::service
