#include "service/wire.hpp"

#include <charconv>
#include <functional>
#include <sstream>

#include "obs/trace.hpp"
#include "service/cache.hpp"

namespace prts::service {
namespace {

const char* policy_name(DeadlinePolicy policy) noexcept {
  return policy == DeadlinePolicy::kReject ? "reject" : "downgrade";
}

/// "status <x>" -> x; false when the line does not start with the key.
bool take_field(const std::string& line, std::string_view key,
                std::string& value) {
  if (line.size() < key.size() + 1 || line.compare(0, key.size(), key) != 0 ||
      line[key.size()] != ' ') {
    return false;
  }
  value = line.substr(key.size() + 1);
  return true;
}

std::optional<ReplyStatus> status_from_name(std::string_view name) {
  for (const ReplyStatus status :
       {ReplyStatus::kSolved, ReplyStatus::kInfeasible,
        ReplyStatus::kRejectedQueue, ReplyStatus::kRejectedDeadline,
        ReplyStatus::kError}) {
    if (name == reply_status_name(status)) return status;
  }
  return std::nullopt;
}

}  // namespace

std::string encode_wire_request(const SolveRequest& request) {
  std::ostringstream out;
  out << "prts-solve-request v1\n";
  out << "solver " << request.solver << "\n";
  out << "period " << canonical_number(request.bounds.period_bound) << "\n";
  out << "latency " << canonical_number(request.bounds.latency_bound)
      << "\n";
  out << "deadline " << canonical_number(request.deadline_seconds) << "\n";
  out << "policy " << policy_name(request.deadline_policy) << "\n";
  if (request.trace_id != 0) {
    out << "trace " << obs::id_to_hex(request.trace_id) << "\n";
  }
  if (request.warm_start && request.warm_start->incumbent) {
    // The incumbent rides as a key-less cache entry line; the floor is
    // recomputed from its metrics on the far side.
    out << "warm "
        << encode_cache_entry(CanonicalHash{},
                              CachedSolution{request.warm_start->incumbent})
        << "\n";
  }
  out << "instance\n";
  write_instance_canonical(out, request.instance);
  return out.str();
}

std::optional<SolveRequest> decode_wire_request(std::string_view payload,
                                                std::string& error) {
  std::istringstream in{std::string(payload)};
  std::string line;

  const auto bad = [&](const std::string& what) {
    error = what;
    return std::nullopt;
  };

  if (!std::getline(in, line) || line != "prts-solve-request v1") {
    error = "expected header 'prts-solve-request v1'";
    return std::nullopt;
  }

  std::string solver;
  solver::Bounds bounds;
  double deadline_seconds = 0.0;
  DeadlinePolicy policy = DeadlinePolicy::kDowngrade;

  std::string value;
  if (!std::getline(in, line) || !take_field(line, "solver", value) ||
      value.empty()) {
    return bad("expected 'solver <name>'");
  }
  solver = value;
  if (!std::getline(in, line) || !take_field(line, "period", value) ||
      !parse_canonical_number(value, bounds.period_bound)) {
    return bad("expected 'period <number>'");
  }
  if (!std::getline(in, line) || !take_field(line, "latency", value) ||
      !parse_canonical_number(value, bounds.latency_bound)) {
    return bad("expected 'latency <number>'");
  }
  if (!std::getline(in, line) || !take_field(line, "deadline", value) ||
      !parse_canonical_number(value, deadline_seconds)) {
    return bad("expected 'deadline <number>'");
  }
  if (!std::getline(in, line) || !take_field(line, "policy", value)) {
    return bad("expected 'policy reject|downgrade'");
  }
  if (value == "reject") {
    policy = DeadlinePolicy::kReject;
  } else if (value == "downgrade") {
    policy = DeadlinePolicy::kDowngrade;
  } else {
    return bad("unknown policy '" + value + "'");
  }
  if (!std::getline(in, line)) return bad("expected 'instance'");
  // Optional trace id (a payload without one still decodes — the line
  // joined the v1 format later).
  std::uint64_t trace_id = 0;
  if (take_field(line, "trace", value)) {
    trace_id = obs::id_from_hex(value);
    if (trace_id == 0) return bad("malformed trace id '" + value + "'");
    if (!std::getline(in, line)) return bad("expected 'instance'");
  }
  std::optional<Mapping> warm_mapping;
  if (take_field(line, "warm", value)) {
    CanonicalHash ignored_key;
    CachedSolution entry;
    std::string why;
    if (!parse_cache_entry(value, ignored_key, entry, why) ||
        !entry.solution) {
      return bad("warm: " + why);
    }
    warm_mapping = std::move(entry.solution->mapping);
    if (!std::getline(in, line)) return bad("expected 'instance'");
  }
  if (line != "instance") return bad("expected 'instance'");

  std::string body;
  while (std::getline(in, line)) {
    body += line;
    body += "\n";
  }
  ParseResult parsed = instance_from_text(body);
  if (!parsed) return bad("instance: " + parsed.error);

  // The hint is advisory and the peer is untrusted: carried metrics are
  // discarded and re-evaluated against the decoded instance, so a
  // fabricated reliability floor can never prune a real optimum (the
  // WarmStart contract holds against lying peers, not just honest
  // ones). A mapping that does not fit the instance drops the hint
  // rather than the request.
  std::optional<solver::WarmStart> warm;
  if (warm_mapping && !warm_mapping->validate(parsed.instance->platform) &&
      warm_mapping->partition().task_count() ==
          parsed.instance->chain.size()) {
    solver::WarmStart hint;
    const MappingMetrics metrics = evaluate(
        parsed.instance->chain, parsed.instance->platform, *warm_mapping);
    hint.reliability_floor_log = metrics.reliability.log();
    hint.incumbent = solver::Solution{std::move(*warm_mapping), metrics};
    warm = std::move(hint);
  }
  SolveRequest request{std::move(*parsed.instance), std::move(solver), bounds,
                       deadline_seconds, policy, std::move(warm)};
  request.trace_id = trace_id;
  return request;
}

std::string encode_wire_reply(const SolveReply& reply) {
  std::ostringstream out;
  out << "prts-solve-reply v1\n";
  out << "status " << reply_status_name(reply.status) << "\n";
  out << "hit " << (reply.cache_hit ? 1 : 0) << "\n";
  out << "near " << (reply.near_miss ? 1 : 0) << "\n";
  out << "down " << (reply.downgraded ? 1 : 0) << "\n";
  out << "solver " << (reply.solver_used.empty() ? "-" : reply.solver_used)
      << "\n";
  out << "cost " << canonical_number(reply.cost_seconds) << "\n";
  if (reply.status == ReplyStatus::kError) {
    out << "error " << reply.error << "\n";
  }
  for (const obs::Span& span : reply.remote_spans) {
    out << "span " << span.rank << " "
        << canonical_number(span.start_seconds) << " "
        << canonical_number(span.duration_seconds) << " " << span.name
        << "\n";
    // Profiler attribution rides as an optional follow-line ('span'
    // carries the name as its tail, so new fields cannot extend it):
    // emitted only when nonzero, so pre-profiler decoders — which error
    // on unknown lines — only see it from ranks that also encode it
    // alongside, and new decoders accept replies without it.
    if (span.cpu_seconds > 0.0 || span.alloc_count > 0 ||
        span.alloc_bytes > 0) {
      out << "spanx " << canonical_number(span.cpu_seconds) << " "
          << span.alloc_count << " " << span.alloc_bytes << "\n";
    }
  }
  if (reply.status == ReplyStatus::kSolved ||
      reply.status == ReplyStatus::kInfeasible) {
    out << "entry "
        << encode_cache_entry(
               reply.key, CachedSolution{reply.solution, reply.cost_seconds})
        << "\n";
  } else {
    out << "key " << to_hex(reply.key) << "\n";
  }
  return out.str();
}

std::optional<SolveReply> decode_wire_reply(std::string_view payload,
                                            std::string& error) {
  std::istringstream in{std::string(payload)};
  std::string line;

  const auto bad = [&](const std::string& what) {
    error = what;
    return std::nullopt;
  };

  if (!std::getline(in, line) || line != "prts-solve-reply v1") {
    error = "expected header 'prts-solve-reply v1'";
    return std::nullopt;
  }

  SolveReply reply;
  std::string value;
  if (!std::getline(in, line) || !take_field(line, "status", value)) {
    return bad("expected 'status <name>'");
  }
  const auto status = status_from_name(value);
  if (!status) return bad("unknown status '" + value + "'");
  reply.status = *status;

  if (!std::getline(in, line) || !take_field(line, "hit", value) ||
      (value != "0" && value != "1")) {
    return bad("expected 'hit 0|1'");
  }
  reply.cache_hit = value == "1";
  // 'near' and 'cost' joined the v1 format later; replies from a rank
  // without them must keep decoding (rolling fabric upgrades), so both
  // are optional in their slots.
  if (!std::getline(in, line)) return bad("expected 'down 0|1'");
  if (take_field(line, "near", value)) {
    if (value != "0" && value != "1") return bad("expected 'near 0|1'");
    reply.near_miss = value == "1";
    if (!std::getline(in, line)) return bad("expected 'down 0|1'");
  }
  if (!take_field(line, "down", value) || (value != "0" && value != "1")) {
    return bad("expected 'down 0|1'");
  }
  reply.downgraded = value == "1";
  if (!std::getline(in, line) || !take_field(line, "solver", value)) {
    return bad("expected 'solver <name>'");
  }
  reply.solver_used = value == "-" ? "" : value;
  if (in.peek() == 'c') {
    if (!std::getline(in, line) || !take_field(line, "cost", value) ||
        !parse_canonical_number(value, reply.cost_seconds)) {
      return bad("expected 'cost <number>'");
    }
  }

  while (std::getline(in, line)) {
    if (take_field(line, "error", value)) {
      reply.error = value;
    } else if (take_field(line, "span", value)) {
      // "<rank> <start> <duration> <name>"; the name is the line tail
      // (span names never contain spaces, but tolerating them is free).
      std::istringstream fields(value);
      obs::Span span;
      std::string start_text;
      std::string duration_text;
      if (!(fields >> span.rank >> start_text >> duration_text) ||
          !parse_canonical_number(start_text, span.start_seconds) ||
          !parse_canonical_number(duration_text, span.duration_seconds)) {
        return bad("malformed span '" + value + "'");
      }
      std::getline(fields >> std::ws, span.name);
      if (span.name.empty()) return bad("span missing name");
      reply.remote_spans.push_back(std::move(span));
    } else if (take_field(line, "spanx", value)) {
      // "<cpu_seconds> <alloc_count> <alloc_bytes>", amending the most
      // recent span. A spanx with no preceding span is tolerated and
      // dropped (never a decode error — the span data is advisory).
      if (reply.remote_spans.empty()) continue;
      obs::Span& span = reply.remote_spans.back();
      std::istringstream fields(value);
      std::string cpu_text;
      double cpu_seconds = 0.0;
      std::uint64_t alloc_count = 0;
      std::uint64_t alloc_bytes = 0;
      if (!(fields >> cpu_text >> alloc_count >> alloc_bytes) ||
          !parse_canonical_number(cpu_text, cpu_seconds)) {
        return bad("malformed spanx '" + value + "'");
      }
      span.cpu_seconds = cpu_seconds;
      span.alloc_count = alloc_count;
      span.alloc_bytes = alloc_bytes;
    } else if (take_field(line, "entry", value)) {
      CachedSolution entry;
      std::string why;
      if (!parse_cache_entry(value, reply.key, entry, why)) {
        return bad("entry: " + why);
      }
      reply.solution = std::move(entry.solution);
    } else if (take_field(line, "key", value)) {
      const auto key = hash_from_hex(value);
      if (!key) return bad("malformed key '" + value + "'");
      reply.key = *key;
    } else if (!line.empty()) {
      return bad("unexpected line '" + line + "'");
    }
  }

  if (reply.status == ReplyStatus::kSolved && !reply.solution) {
    return bad("status solved but no solution entry");
  }
  return reply;
}

// ------------------------------------------------- gossip / replica fetch

namespace {

/// Parses "<header> <count>" then hands each of the following `count`
/// lines to `parse_line`; nullopt-style false with a reason otherwise.
bool read_counted_lines(std::istream& in, std::string_view count_key,
                        std::string& error,
                        const std::function<bool(const std::string&)>&
                            parse_line) {
  std::string line;
  std::string value;
  if (!std::getline(in, line) || !take_field(line, count_key, value)) {
    error = "expected '" + std::string(count_key) + " <n>'";
    return false;
  }
  std::size_t count = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), count);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    error = "malformed count '" + value + "'";
    return false;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      error = "truncated list (expected " + std::to_string(count) +
              " lines)";
      return false;
    }
    if (!parse_line(line)) return false;
  }
  return true;
}

}  // namespace

std::string encode_gossip_digest(const GossipDigest& digest) {
  std::ostringstream out;
  out << "prts-gossip v1\n";
  out << "rank " << digest.rank << "\n";
  out << "keys " << digest.entries.size() << "\n";
  for (const GossipDigest::Entry& entry : digest.entries) {
    out << to_hex(entry.key) << " " << entry.hits << "\n";
  }
  return out.str();
}

std::optional<GossipDigest> decode_gossip_digest(std::string_view payload,
                                                 std::string& error) {
  std::istringstream in{std::string(payload)};
  std::string line;
  if (!std::getline(in, line) || line != "prts-gossip v1") {
    error = "expected header 'prts-gossip v1'";
    return std::nullopt;
  }
  GossipDigest digest;
  std::string value;
  if (!std::getline(in, line) || !take_field(line, "rank", value)) {
    error = "expected 'rank <r>'";
    return std::nullopt;
  }
  {
    const auto [ptr, ec] = std::from_chars(
        value.data(), value.data() + value.size(), digest.rank);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
      error = "malformed rank '" + value + "'";
      return std::nullopt;
    }
  }
  const bool ok = read_counted_lines(
      in, "keys", error, [&](const std::string& entry_line) {
        const std::size_t space = entry_line.find(' ');
        if (space == std::string::npos) {
          error = "expected '<hash-hex> <hits>'";
          return false;
        }
        const auto key =
            hash_from_hex(std::string_view(entry_line).substr(0, space));
        if (!key) {
          error = "malformed hash '" + entry_line.substr(0, space) + "'";
          return false;
        }
        GossipDigest::Entry entry;
        entry.key = *key;
        const char* first = entry_line.data() + space + 1;
        const char* last = entry_line.data() + entry_line.size();
        const auto [ptr, ec] = std::from_chars(first, last, entry.hits);
        if (ec != std::errc{} || ptr != last) {
          error = "malformed hit count in '" + entry_line + "'";
          return false;
        }
        digest.entries.push_back(entry);
        return true;
      });
  if (!ok) return std::nullopt;
  return digest;
}

std::string encode_replica_fetch(const std::vector<CanonicalHash>& keys) {
  std::ostringstream out;
  out << "prts-replica-fetch v1\n";
  out << "keys " << keys.size() << "\n";
  for (const CanonicalHash& key : keys) out << to_hex(key) << "\n";
  return out.str();
}

std::optional<std::vector<CanonicalHash>> decode_replica_fetch(
    std::string_view payload, std::string& error) {
  std::istringstream in{std::string(payload)};
  std::string line;
  if (!std::getline(in, line) || line != "prts-replica-fetch v1") {
    error = "expected header 'prts-replica-fetch v1'";
    return std::nullopt;
  }
  std::vector<CanonicalHash> keys;
  const bool ok =
      read_counted_lines(in, "keys", error, [&](const std::string& key_line) {
        const auto key = hash_from_hex(key_line);
        if (!key) {
          error = "malformed hash '" + key_line + "'";
          return false;
        }
        keys.push_back(*key);
        return true;
      });
  if (!ok) return std::nullopt;
  return keys;
}

std::string encode_replica_entries(
    const std::vector<std::pair<CanonicalHash, CachedSolution>>& entries) {
  std::ostringstream out;
  out << "prts-replica-entries v1\n";
  out << "entries " << entries.size() << "\n";
  for (const auto& [key, value] : entries) {
    out << encode_cache_entry(key, value) << "\n";
  }
  return out.str();
}

std::optional<std::vector<std::pair<CanonicalHash, CachedSolution>>>
decode_replica_entries(std::string_view payload, std::string& error) {
  std::istringstream in{std::string(payload)};
  std::string line;
  if (!std::getline(in, line) || line != "prts-replica-entries v1") {
    error = "expected header 'prts-replica-entries v1'";
    return std::nullopt;
  }
  std::vector<std::pair<CanonicalHash, CachedSolution>> entries;
  const bool ok = read_counted_lines(
      in, "entries", error, [&](const std::string& entry_line) {
        CanonicalHash key;
        CachedSolution value;
        std::string why;
        if (!parse_cache_entry(entry_line, key, value, why)) {
          error = "entry: " + why;
          return false;
        }
        entries.emplace_back(key, std::move(value));
        return true;
      });
  if (!ok) return std::nullopt;
  return entries;
}

namespace {

/// "<key> <unsigned>" field; false (with a reason) on malformed digits.
template <typename Unsigned>
bool read_unsigned_field(std::istream& in, std::string_view key,
                         Unsigned& out, std::string& error) {
  std::string line;
  std::string value;
  if (!std::getline(in, line) || !take_field(line, key, value)) {
    error = "expected '" + std::string(key) + " <n>'";
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    error = "malformed " + std::string(key) + " '" + value + "'";
    return false;
  }
  return true;
}

/// "<rank> <port> <host>" member line of the membership update codec.
bool parse_member_line(const std::string& line, Member& member,
                       std::string& error) {
  const char* first = line.data();
  const char* last = line.data() + line.size();
  auto [after_rank, rank_ec] = std::from_chars(first, last, member.rank);
  if (rank_ec != std::errc{} || after_rank == last || *after_rank != ' ') {
    error = "expected '<rank> <port> <host>' in '" + line + "'";
    return false;
  }
  auto [after_port, port_ec] =
      std::from_chars(after_rank + 1, last, member.port);
  if (port_ec != std::errc{} || after_port == last || *after_port != ' ') {
    error = "expected '<rank> <port> <host>' in '" + line + "'";
    return false;
  }
  member.host.assign(after_port + 1, last);
  return true;
}

}  // namespace

std::string encode_join_request(const Member& member) {
  std::ostringstream out;
  out << "prts-join v1\n";
  out << "rank " << member.rank << "\n";
  out << "port " << member.port << "\n";
  out << "host " << member.host << "\n";
  return out.str();
}

std::optional<Member> decode_join_request(std::string_view payload,
                                          std::string& error) {
  std::istringstream in{std::string(payload)};
  std::string line;
  if (!std::getline(in, line) || line != "prts-join v1") {
    error = "expected header 'prts-join v1'";
    return std::nullopt;
  }
  Member member;
  if (!read_unsigned_field(in, "rank", member.rank, error)) return std::nullopt;
  if (!read_unsigned_field(in, "port", member.port, error)) return std::nullopt;
  std::string value;
  if (!std::getline(in, line) || !take_field(line, "host", value)) {
    error = "expected 'host <h>'";
    return std::nullopt;
  }
  member.host = value;
  return member;
}

std::string encode_membership_update(const MembershipUpdate& update) {
  std::ostringstream out;
  out << "prts-membership v1\n";
  out << "from " << update.from << "\n";
  out << "epoch " << update.view.epoch << "\n";
  out << "members " << update.view.members.size() << "\n";
  for (const Member& member : update.view.members) {
    out << member.rank << " " << member.port << " " << member.host << "\n";
  }
  return out.str();
}

std::optional<MembershipUpdate> decode_membership_update(
    std::string_view payload, std::string& error) {
  std::istringstream in{std::string(payload)};
  std::string line;
  if (!std::getline(in, line) || line != "prts-membership v1") {
    error = "expected header 'prts-membership v1'";
    return std::nullopt;
  }
  MembershipUpdate update;
  if (!read_unsigned_field(in, "from", update.from, error)) {
    return std::nullopt;
  }
  if (!read_unsigned_field(in, "epoch", update.view.epoch, error)) {
    return std::nullopt;
  }
  const bool ok = read_counted_lines(
      in, "members", error, [&](const std::string& member_line) {
        Member member;
        if (!parse_member_line(member_line, member, error)) return false;
        update.view.members.push_back(std::move(member));
        return true;
      });
  if (!ok) return std::nullopt;
  return update;
}

namespace {

std::string encode_handoff_stamp(const char* header,
                                 const HandoffStamp& stamp) {
  std::ostringstream out;
  out << header << "\n";
  out << "epoch " << stamp.epoch << "\n";
  out << "from " << stamp.from << "\n";
  out << "entries " << stamp.entries << "\n";
  return out.str();
}

}  // namespace

std::string encode_handoff_begin(const HandoffStamp& stamp) {
  return encode_handoff_stamp("prts-handoff-begin v1", stamp);
}

std::string encode_handoff_done(const HandoffStamp& stamp) {
  return encode_handoff_stamp("prts-handoff-done v1", stamp);
}

std::optional<HandoffStamp> decode_handoff_stamp(std::string_view payload,
                                                 std::string& error) {
  std::istringstream in{std::string(payload)};
  std::string line;
  if (!std::getline(in, line) || (line != "prts-handoff-begin v1" &&
                                  line != "prts-handoff-done v1")) {
    error = "expected a handoff begin/done header";
    return std::nullopt;
  }
  HandoffStamp stamp;
  if (!read_unsigned_field(in, "epoch", stamp.epoch, error) ||
      !read_unsigned_field(in, "from", stamp.from, error) ||
      !read_unsigned_field(in, "entries", stamp.entries, error)) {
    return std::nullopt;
  }
  return stamp;
}

std::string encode_handoff_chunk(const HandoffChunk& chunk) {
  std::ostringstream out;
  out << "prts-handoff-chunk v1\n";
  out << "epoch " << chunk.epoch << "\n";
  out << "from " << chunk.from << "\n";
  out << "entries " << chunk.entries.size() << "\n";
  for (const auto& [key, value] : chunk.entries) {
    out << encode_cache_entry(key, value) << "\n";
  }
  return out.str();
}

std::optional<HandoffChunk> decode_handoff_chunk(std::string_view payload,
                                                 std::string& error) {
  std::istringstream in{std::string(payload)};
  std::string line;
  if (!std::getline(in, line) || line != "prts-handoff-chunk v1") {
    error = "expected header 'prts-handoff-chunk v1'";
    return std::nullopt;
  }
  HandoffChunk chunk;
  if (!read_unsigned_field(in, "epoch", chunk.epoch, error) ||
      !read_unsigned_field(in, "from", chunk.from, error)) {
    return std::nullopt;
  }
  const bool ok = read_counted_lines(
      in, "entries", error, [&](const std::string& entry_line) {
        CanonicalHash key;
        CachedSolution value;
        std::string why;
        if (!parse_cache_entry(entry_line, key, value, why)) {
          error = "entry: " + why;
          return false;
        }
        chunk.entries.emplace_back(key, std::move(value));
        return true;
      });
  if (!ok) return std::nullopt;
  return chunk;
}

}  // namespace prts::service
