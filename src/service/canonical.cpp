#include "service/canonical.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

namespace prts::service {
namespace {

/// SplitMix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

CanonicalHash fingerprint(std::string_view bytes) noexcept {
  // Two independent multiply-xor chains (FNV-1a and an offset variant
  // with a different odd multiplier), each finalized by splitmix64.
  std::uint64_t lo = 0xcbf29ce484222325ULL;   // FNV-1a offset basis
  std::uint64_t hi = 0x9e3779b97f4a7c15ULL;   // golden-ratio basis
  for (const char c : bytes) {
    const auto byte = static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    lo = (lo ^ byte) * 0x100000001b3ULL;      // FNV-1a prime
    hi = (hi ^ byte) * 0xc2b2ae3d27d4eb4fULL; // xxhash64 prime 2
  }
  // Fold the length in so prefixes of each other cannot collide on both
  // halves, then avalanche.
  const auto length = static_cast<std::uint64_t>(bytes.size());
  return CanonicalHash{mix64(hi ^ (length * 0xff51afd7ed558ccdULL)),
                       mix64(lo ^ length)};
}

std::string to_hex(const CanonicalHash& hash) {
  static const char* digits = "0123456789abcdef";
  std::string text(32, '0');
  for (int i = 0; i < 16; ++i) {
    text[15 - i] = digits[(hash.hi >> (4 * i)) & 0xF];
    text[31 - i] = digits[(hash.lo >> (4 * i)) & 0xF];
  }
  return text;
}

std::optional<CanonicalHash> hash_from_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  CanonicalHash hash;
  for (int i = 0; i < 32; ++i) {
    const char c = hex[static_cast<std::size_t>(i)];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
    if (i < 16) {
      hash.hi = (hash.hi << 4) | digit;
    } else {
      hash.lo = (hash.lo << 4) | digit;
    }
  }
  return hash;
}

CanonicalInstance canonicalize(const Instance& instance) {
  const Platform& platform = instance.platform;
  const std::size_t p = platform.processor_count();

  // Stable sort on the physical characteristics only: processors with
  // equal (speed, failure rate) are interchangeable, and stability makes
  // the permutation deterministic for a given request.
  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const Processor& pa = platform.processor(a);
                     const Processor& pb = platform.processor(b);
                     if (pa.speed != pb.speed) return pa.speed < pb.speed;
                     return pa.failure_rate < pb.failure_rate;
                   });

  std::vector<Processor> sorted;
  sorted.reserve(p);
  std::vector<std::size_t> to_canonical(p);
  for (std::size_t c = 0; c < p; ++c) {
    sorted.push_back(platform.processor(order[c]));
    to_canonical[order[c]] = c;
  }

  CanonicalInstance canonical{
      Instance{instance.chain,
               Platform(std::move(sorted), platform.bandwidth(),
                        platform.link_failure_rate(),
                        platform.max_replication())},
      std::move(order),
      std::move(to_canonical),
      {},
      {}};

  std::ostringstream text;
  write_instance_canonical(text, canonical.instance);
  canonical.text = text.str();
  canonical.instance_hash = fingerprint(canonical.text);
  return canonical;
}

CanonicalHash request_key(const CanonicalInstance& canonical,
                          const std::string& solver_name,
                          const solver::Bounds& bounds) {
  std::string bytes = canonical.text;
  bytes += "solver ";
  bytes += solver_name;
  bytes += "\nbounds ";
  bytes += canonical_number(bounds.period_bound);
  bytes += " ";
  bytes += canonical_number(bounds.latency_bound);
  bytes += "\n";
  return fingerprint(bytes);
}

CanonicalHash batch_key(const CanonicalInstance& canonical,
                        const std::string& solver_name) {
  std::string bytes = canonical.text;
  bytes += "solver ";
  bytes += solver_name;
  bytes += "\n";
  return fingerprint(bytes);
}

solver::Solution to_original_labels(
    const solver::Solution& canonical_solution,
    const CanonicalInstance& canonical) {
  const Mapping& mapping = canonical_solution.mapping;
  std::vector<std::vector<std::size_t>> procs;
  procs.reserve(mapping.interval_count());
  for (std::size_t j = 0; j < mapping.interval_count(); ++j) {
    std::vector<std::size_t> replicas;
    for (const std::size_t c : mapping.processors(j)) {
      replicas.push_back(canonical.to_original[c]);
    }
    procs.push_back(std::move(replicas));  // Mapping's ctor re-sorts
  }
  return solver::Solution{Mapping(mapping.partition(), std::move(procs)),
                          canonical_solution.metrics};
}

}  // namespace prts::service
