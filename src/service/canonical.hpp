// Canonical instance forms and content hashing for the solve service
// (the first layer of src/service/): two requests that describe the
// same tri-criteria problem must collide on one cache key even when
// their representations differ.
//
// Normalizations applied:
//   - value level: every number is rendered by canonical_number()
//     (shortest round-trip decimal), so "1", "1.0" and "1.000" are one
//     byte sequence;
//   - stage labels: the chain is kept in pipeline order with labels
//     erased (the serializer's 'task <id> ...' form already reduces
//     labels to an ordering, see model/serialize.hpp);
//   - processor labels: processors are sorted by (speed, failure rate)
//     with a stable sort, and the permutation is recorded both ways, so
//     processor-permuted isomorphic instances share one canonical form
//     and cached solutions can be translated back into each request's
//     own labels.
//
// The service *solves the canonical instance*, never the original: two
// isomorphic requests therefore receive bit-identical metrics and
// label-translated copies of one mapping, whether they were served cold
// or from the cache.
//
// The 128-bit content hash is computed by a fixed, self-contained
// function (two independent 64-bit mix chains + splitmix finalizers),
// never std::hash, so keys are stable across runs, platforms and
// standard libraries — a requirement for warm-start cache files.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/serialize.hpp"
#include "solver/solver.hpp"

namespace prts::service {

/// A 128-bit content hash. Collisions are treated as impossible at
/// service scale (~2^-64 per pair); equality of keys is equality of
/// canonical requests.
struct CanonicalHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  auto operator<=>(const CanonicalHash&) const noexcept = default;
};

/// Hashes a byte string with the fixed 128-bit function described above.
CanonicalHash fingerprint(std::string_view bytes) noexcept;

/// 32 lowercase hex digits (hi then lo).
std::string to_hex(const CanonicalHash& hash);

/// Parses to_hex output; nullopt on malformed input.
std::optional<CanonicalHash> hash_from_hex(std::string_view hex);

/// Hasher for CanonicalHash-keyed maps: lo is already avalanched by
/// fingerprint(), so it is the bucket index; maps compare full 128-bit
/// keys.
struct CanonicalKeyHasher {
  std::size_t operator()(const CanonicalHash& key) const noexcept {
    return static_cast<std::size_t>(key.lo);
  }
};

/// An instance in canonical form plus the label translation back to the
/// request it came from.
struct CanonicalInstance {
  /// The canonical instance: same chain, processors in canonical order.
  Instance instance;

  /// to_original[c] = index in the *request's* platform of the
  /// processor that became canonical index c.
  std::vector<std::size_t> to_original;

  /// Inverse: to_canonical[o] = canonical index of request processor o.
  std::vector<std::size_t> to_canonical;

  /// The canonical byte form (write_instance_canonical of `instance`).
  std::string text;

  /// fingerprint(text).
  CanonicalHash instance_hash;
};

/// Canonicalizes an instance. Deterministic: equal instances (after
/// label erasure) produce byte-identical `text` and equal hashes.
CanonicalInstance canonicalize(const Instance& instance);

/// Cache key of a full request: canonical instance + solver name +
/// canonically formatted bounds.
CanonicalHash request_key(const CanonicalInstance& canonical,
                          const std::string& solver_name,
                          const solver::Bounds& bounds);

/// Batching key: canonical instance + solver name, bounds excluded —
/// requests sharing it can be answered by one prepared solver session.
CanonicalHash batch_key(const CanonicalInstance& canonical,
                        const std::string& solver_name);

/// Translates a solution expressed in canonical processor indices into
/// the request's own labels (replica sets re-sorted ascending; metrics
/// are label-invariant and pass through unchanged).
solver::Solution to_original_labels(const solver::Solution& canonical_solution,
                                    const CanonicalInstance& canonical);

}  // namespace prts::service
