#include "service/cache.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "model/interval.hpp"

namespace prts::service {
namespace {

bool parse_size(std::string_view text, std::size_t& value) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// Splits on one delimiter, no empty fields allowed.
std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, delim)) parts.push_back(part);
  return parts;
}

// ---- binary snapshot primitives (explicit little-endian) ----

void put_u64_le(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void put_u32_le(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_u64_le(const unsigned char* in) noexcept {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | in[i];
  return value;
}

std::uint32_t get_u32_le(const unsigned char* in) noexcept {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) value = (value << 8) | in[i];
  return value;
}

constexpr char kBinaryMagic[6] = {'P', 'R', 'T', 'S', '1', '\n'};
constexpr std::uint8_t kBinaryVersion = 1;
constexpr std::size_t kBinaryHeaderBytes = sizeof(kBinaryMagic) + 2 + 8;
constexpr std::size_t kBinaryIndexEntryBytes = 8 + 8 + 8 + 4;
/// A corrupted blob length must not turn into a huge allocation.
constexpr std::uint32_t kBinaryMaxBlobBytes = 16 * 1024 * 1024;

}  // namespace

std::size_t cached_solution_bytes(const CachedSolution& value) noexcept {
  // Fixed per-entry overhead: key, list/map nodes, metrics struct.
  std::size_t bytes = 160;
  if (value.solution) {
    const Mapping& mapping = value.solution->mapping;
    bytes += mapping.interval_count() * (sizeof(Interval) + sizeof(void*) * 3);
    bytes += mapping.processors_used() * sizeof(std::size_t);
  }
  // Near-miss metadata plus its bounds-index slot.
  if (value.indexable()) bytes += 64;
  return bytes;
}

std::string encode_cache_entry(const CanonicalHash& key,
                               const CachedSolution& value) {
  std::ostringstream out;
  out << to_hex(key) << "\t";
  if (!value.solution) {
    out << "0\t-\t-";
  } else {
    const solver::Solution& solution = *value.solution;
    out << "1\t";
    const auto boundaries = solution.mapping.partition().boundaries();
    for (std::size_t j = 0; j < boundaries.size(); ++j) {
      out << (j ? "," : "") << boundaries[j];
    }
    out << "\t";
    for (std::size_t j = 0; j < solution.mapping.interval_count(); ++j) {
      if (j) out << ";";
      const auto procs = solution.mapping.processors(j);
      for (std::size_t r = 0; r < procs.size(); ++r) {
        out << (r ? "," : "") << procs[r];
      }
    }
    const MappingMetrics& metrics = solution.metrics;
    out << "\t" << canonical_number(metrics.reliability.log()) << "\t"
        << canonical_number(metrics.failure) << "\t"
        << canonical_number(metrics.expected_latency) << "\t"
        << canonical_number(metrics.worst_latency) << "\t"
        << canonical_number(metrics.expected_period) << "\t"
        << canonical_number(metrics.worst_period) << "\t"
        << metrics.interval_count << "\t" << metrics.processors_used << "\t"
        << canonical_number(metrics.replication_level);
  }
  out << "\t" << canonical_number(value.cost_seconds);
  if (value.indexable()) {
    out << "\t" << to_hex(*value.instance_key) << "\t"
        << canonical_number(value.bounds->period_bound) << "\t"
        << canonical_number(value.bounds->latency_bound);
  }
  return out.str();
}

namespace {

/// Parses the optional trailing near-miss metadata triple (fields
/// `first..first+2`) into `value`; false on malformed fields.
bool parse_near_metadata(const std::vector<std::string>& fields,
                         std::size_t first, CachedSolution& value,
                         std::string& error) {
  const auto instance_key = hash_from_hex(fields[first]);
  solver::Bounds bounds;
  if (!instance_key ||
      !parse_canonical_number(fields[first + 1], bounds.period_bound) ||
      !parse_canonical_number(fields[first + 2], bounds.latency_bound)) {
    error = "malformed near-miss metadata";
    return false;
  }
  value.instance_key = *instance_key;
  value.bounds = bounds;
  return true;
}

}  // namespace

bool parse_cache_entry(std::string_view line, CanonicalHash& key,
                       CachedSolution& value, std::string& error) {
  const auto bad = [&](const std::string& what) {
    error = what;
    return false;
  };

  const std::vector<std::string> fields = split(std::string(line), '\t');
  // Infeasible entries carry 4 fields (legacy, no cost), 5, or 8 (with
  // near-miss metadata); feasible ones 13 (legacy), 14, or 17.
  if (fields.size() < 4) return bad("expected >= 4 tab-separated fields");
  const auto parsed_key = hash_from_hex(fields[0]);
  if (!parsed_key) return bad("malformed hash '" + fields[0] + "'");

  if (fields[1] == "0") {
    if (fields.size() != 4 && fields.size() != 5 && fields.size() != 8) {
      return bad("infeasible entries need 4/5/8 fields");
    }
    CachedSolution parsed;
    if (fields.size() >= 5 &&
        !parse_canonical_number(fields[4], parsed.cost_seconds)) {
      return bad("malformed cost field");
    }
    if (fields.size() == 8 && !parse_near_metadata(fields, 5, parsed, error)) {
      return false;
    }
    key = *parsed_key;
    value = std::move(parsed);
    return true;
  }
  if (fields[1] != "1" ||
      (fields.size() != 13 && fields.size() != 14 && fields.size() != 17)) {
    return bad("feasible entries need 13/14/17 fields");
  }

  std::vector<std::size_t> boundaries;
  for (const std::string& part : split(fields[2], ',')) {
    std::size_t parsed = 0;
    if (!parse_size(part, parsed)) return bad("malformed boundary list");
    boundaries.push_back(parsed);
  }
  std::vector<std::vector<std::size_t>> procs;
  for (const std::string& group : split(fields[3], ';')) {
    std::vector<std::size_t> replicas;
    for (const std::string& part : split(group, ',')) {
      std::size_t parsed = 0;
      if (!parse_size(part, parsed)) return bad("malformed processor list");
      replicas.push_back(parsed);
    }
    procs.push_back(std::move(replicas));
  }
  if (boundaries.empty() || procs.size() != boundaries.size()) {
    return bad("boundary/processor list size mismatch");
  }

  double log_r = 0.0;
  MappingMetrics metrics;
  double cost_seconds = 0.0;
  if (!parse_canonical_number(fields[4], log_r) ||
      !parse_canonical_number(fields[5], metrics.failure) ||
      !parse_canonical_number(fields[6], metrics.expected_latency) ||
      !parse_canonical_number(fields[7], metrics.worst_latency) ||
      !parse_canonical_number(fields[8], metrics.expected_period) ||
      !parse_canonical_number(fields[9], metrics.worst_period) ||
      !parse_size(fields[10], metrics.interval_count) ||
      !parse_size(fields[11], metrics.processors_used) ||
      !parse_canonical_number(fields[12], metrics.replication_level) ||
      (fields.size() >= 14 &&
       !parse_canonical_number(fields[13], cost_seconds))) {
    return bad("malformed metric fields");
  }
  metrics.reliability = LogReliability::from_log(log_r);

  CachedSolution parsed;
  parsed.cost_seconds = cost_seconds;
  if (fields.size() == 17 && !parse_near_metadata(fields, 14, parsed, error)) {
    return false;
  }
  try {
    Mapping mapping(
        IntervalPartition::from_boundaries(boundaries, boundaries.back() + 1),
        std::move(procs));
    parsed.solution = solver::Solution{std::move(mapping), metrics};
    key = *parsed_key;
    value = std::move(parsed);
  } catch (const std::exception& why) {
    return bad(std::string("invalid mapping: ") + why.what());
  }
  return true;
}

ShardedSolutionCache::ShardedSolutionCache(Config config)
    : shards_(std::max<std::size_t>(1, config.shards)),
      near_shards_(shards_.size()),
      per_shard_capacity_(
          std::max<std::size_t>(1, config.capacity_bytes / shards_.size())),
      retention_(config.retention),
      cost_window_(std::max<std::size_t>(1, config.cost_window)),
      near_index_per_instance_(
          std::max<std::size_t>(1, config.near_index_per_instance)) {}

std::optional<CachedSolution> ShardedSolutionCache::lookup(
    const CanonicalHash& key) {
  Shard& shard = shard_of(key);
  const std::lock_guard<obs::ProfiledMutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

std::optional<CachedSolution> ShardedSolutionCache::peek(
    const CanonicalHash& key) const {
  const Shard& shard = shard_of(key);
  const std::lock_guard<obs::ProfiledMutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  return it->second->value;
}

std::optional<ShardedSolutionCache::EntrySummary>
ShardedSolutionCache::peek_summary(const CanonicalHash& key) const {
  const Shard& shard = shard_of(key);
  const std::lock_guard<obs::ProfiledMutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  EntrySummary summary;
  summary.cost_seconds = it->second->value.cost_seconds;
  if (it->second->value.solution) {
    summary.feasible = true;
    summary.metrics = it->second->value.solution->metrics;
  }
  return summary;
}

bool ShardedSolutionCache::contains(const CanonicalHash& key) const {
  const Shard& shard = shard_of(key);
  const std::lock_guard<obs::ProfiledMutex> lock(shard.mutex);
  return shard.index.count(key) > 0;
}

void ShardedSolutionCache::evict_one(Shard& shard) {
  auto victim = std::prev(shard.lru.end());
  if (retention_ == Retention::kCost) {
    // Scan a bounded tail window for the cheapest solve; ties keep the
    // least recent. The window never reaches the front entry (the one
    // just inserted or refreshed).
    auto candidate = victim;
    for (std::size_t examined = 1;
         examined < cost_window_ && candidate != shard.lru.begin();
         ++examined) {
      --candidate;
      if (candidate == shard.lru.begin()) break;
      if (candidate->value.cost_seconds < victim->value.cost_seconds) {
        victim = candidate;
      }
    }
  }
  shard.bytes -= victim->bytes;
  shard.index.erase(victim->key);
  shard.lru.erase(victim);
  ++shard.evictions;
}

void ShardedSolutionCache::insert(const CanonicalHash& key,
                                  CachedSolution value) {
  const std::size_t bytes = cached_solution_bytes(value);
  // Remembered before `value` is moved into the shard; the index update
  // runs after the shard lock is released (shard locks are leaves: the
  // near-miss lookups hold an index mutex *while* peeking a shard).
  const bool indexable = value.indexable();
  const CanonicalHash instance_key =
      indexable ? *value.instance_key : CanonicalHash{};
  const solver::Bounds bounds = indexable ? *value.bounds : solver::Bounds{};
  {
    Shard& shard = shard_of(key);
    const std::lock_guard<obs::ProfiledMutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.bytes -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      shard.bytes += bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(value), bytes});
      shard.index.emplace(key, shard.lru.begin());
      shard.bytes += bytes;
      ++shard.insertions;
    }
    while (shard.bytes > per_shard_capacity_ && shard.lru.size() > 1) {
      evict_one(shard);
    }
  }
  if (!indexable) return;

  NearShard& near = near_shard_of(instance_key);
  const std::lock_guard<obs::ProfiledMutex> lock(near.mutex);
  std::vector<NearEntry>& entries = near.map[instance_key];
  for (const NearEntry& entry : entries) {
    // A request key is a function of (instance, solver, bounds): the
    // same key always records the same bounds, so refreshes are no-ops.
    if (entry.request_key == key) return;
  }
  // Bounded sweep history per instance: oldest recorded bounds go
  // first (a ladder revisits recent neighborhoods, not its start).
  if (entries.size() >= near_index_per_instance_) {
    entries.erase(entries.begin());
  }
  entries.push_back(NearEntry{bounds, key});
}

std::optional<CachedSolution> ShardedSolutionCache::find_dominating(
    const CanonicalHash& instance_key, const solver::Bounds& bounds) {
  NearShard& near = near_shard_of(instance_key);
  const std::lock_guard<obs::ProfiledMutex> lock(near.mutex);
  const auto it = near.map.find(instance_key);
  if (it == near.map.end()) return std::nullopt;
  std::vector<NearEntry>& entries = it->second;
  for (std::size_t i = 0; i < entries.size();) {
    const NearEntry& entry = entries[i];
    const bool dominates =
        entry.bounds.period_bound >= bounds.period_bound &&
        entry.bounds.latency_bound >= bounds.latency_bound;
    if (!dominates) {
      ++i;
      continue;
    }
    // Summary peek, not lookup: a dead candidate must not count a
    // main-cache miss, and rejected candidates must not pay a mapping
    // copy; near hits keep their own counter.
    const auto summary = peek_summary(entry.request_key);
    if (!summary) {
      entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
      continue;  // evicted under us; forget the reference
    }
    // Infeasible at looser bounds => infeasible here. A feasible
    // solution transfers only when it already satisfies the tighter
    // request (then, for a bounds-monotone engine, it *is* the
    // optimum here too — any qualifying entry gives the same answer).
    if (!summary->feasible ||
        solver::within_bounds(summary->metrics, bounds)) {
      auto value = peek(entry.request_key);
      if (!value) {  // lost a race with eviction between the peeks
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ++near.near_hits;
      return value;
    }
    ++i;
  }
  return std::nullopt;
}

std::optional<CachedSolution> ShardedSolutionCache::find_feasible(
    const CanonicalHash& instance_key, const solver::Bounds& bounds) {
  NearShard& near = near_shard_of(instance_key);
  const std::lock_guard<obs::ProfiledMutex> lock(near.mutex);
  const auto it = near.map.find(instance_key);
  if (it == near.map.end()) return std::nullopt;
  std::vector<NearEntry>& entries = it->second;
  std::optional<CanonicalHash> best_key;
  double best_log = 0.0;
  for (std::size_t i = 0; i < entries.size();) {
    // Metrics-only walk; the single winner is copied out at the end.
    const auto summary = peek_summary(entries[i].request_key);
    if (!summary) {
      entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    // Any cached solution satisfying the request bounds is a feasible
    // incumbent for it, wherever on the bounds lattice it came from;
    // the most reliable one makes the strongest floor.
    if (summary->feasible &&
        solver::within_bounds(summary->metrics, bounds) &&
        (!best_key || summary->metrics.reliability.log() > best_log)) {
      best_key = entries[i].request_key;
      best_log = summary->metrics.reliability.log();
    }
    ++i;
  }
  if (!best_key) return std::nullopt;
  auto best = peek(*best_key);
  // The winner may have been evicted between the walks; a lost hint is
  // only a lost acceleration.
  if (!best || !best->solution) return std::nullopt;
  return best;
}

void ShardedSolutionCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<obs::ProfiledMutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
  for (NearShard& near : near_shards_) {
    const std::lock_guard<obs::ProfiledMutex> lock(near.mutex);
    near.map.clear();
  }
}

CacheStats ShardedSolutionCache::stats() const {
  CacheStats stats;
  stats.shards = shards_.size();
  stats.capacity_bytes = per_shard_capacity_ * shards_.size();
  for (const Shard& shard : shards_) {
    const std::lock_guard<obs::ProfiledMutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  for (const NearShard& near : near_shards_) {
    const std::lock_guard<obs::ProfiledMutex> lock(near.mutex);
    stats.near_hits += near.near_hits;
    for (const auto& [key, entries] : near.map) {
      stats.near_entries += entries.size();
    }
  }
  return stats;
}

std::vector<CanonicalHash> ShardedSolutionCache::keys() const {
  std::vector<CanonicalHash> keys;
  for (const Shard& shard : shards_) {
    const std::lock_guard<obs::ProfiledMutex> lock(shard.mutex);
    for (const Entry& entry : shard.lru) keys.push_back(entry.key);
  }
  return keys;
}

void ShardedSolutionCache::save_tsv(std::ostream& out) const {
  out << "# prts-solution-cache v1\n";
  for (const Shard& shard : shards_) {
    const std::lock_guard<obs::ProfiledMutex> lock(shard.mutex);
    for (const Entry& entry : shard.lru) {
      out << encode_cache_entry(entry.key, entry.value) << "\n";
    }
  }
}

ShardedSolutionCache::LoadResult ShardedSolutionCache::load_tsv(
    std::istream& in) {
  LoadResult result;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    CanonicalHash key;
    CachedSolution value;
    std::string why;
    if (!parse_cache_entry(line, key, value, why)) {
      result.error = "line " + std::to_string(lineno) + ": " + why;
      return result;
    }
    insert(key, std::move(value));
    ++result.loaded;
  }
  return result;
}

void ShardedSolutionCache::save_binary(std::ostream& out) const {
  // Snapshot entries first (per-shard locks are not held across the
  // whole write) and encode each blob once.
  std::vector<std::pair<CanonicalHash, std::string>> blobs;
  for (const Shard& shard : shards_) {
    const std::lock_guard<obs::ProfiledMutex> lock(shard.mutex);
    for (const Entry& entry : shard.lru) {
      std::string blob = encode_cache_entry(entry.key, entry.value);
      // The loader rejects blobs over kBinaryMaxBlobBytes as corrupt;
      // never write one (a pathological entry is dropped from the
      // snapshot, not allowed to brick it).
      if (blob.size() > kBinaryMaxBlobBytes) continue;
      blobs.emplace_back(entry.key, std::move(blob));
    }
  }

  std::string header;
  header.append(kBinaryMagic, sizeof(kBinaryMagic));
  header.push_back(static_cast<char>(kBinaryVersion));
  header.push_back(0);  // reserved
  put_u64_le(header, blobs.size());

  std::uint64_t offset =
      kBinaryHeaderBytes + blobs.size() * kBinaryIndexEntryBytes;
  for (const auto& [key, blob] : blobs) {
    put_u64_le(header, key.hi);
    put_u64_le(header, key.lo);
    put_u64_le(header, offset);
    put_u32_le(header, static_cast<std::uint32_t>(blob.size()));
    offset += blob.size();
  }
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  for (const auto& [key, blob] : blobs) {
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
}

ShardedSolutionCache::LoadResult ShardedSolutionCache::load_binary(
    std::istream& in,
    const std::function<bool(const CanonicalHash&)>& filter) {
  LoadResult result;
  const auto bad = [&](const std::string& what) {
    result.error = what;
    return result;
  };

  char header[kBinaryHeaderBytes];
  if (!in.read(header, sizeof(header))) return bad("truncated header");
  if (std::memcmp(header, kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    return bad("bad magic (not a PRTS1 snapshot)");
  }
  if (static_cast<std::uint8_t>(header[sizeof(kBinaryMagic)]) !=
      kBinaryVersion) {
    return bad("unsupported snapshot version");
  }
  const std::uint64_t count = get_u64_le(
      reinterpret_cast<const unsigned char*>(header) + sizeof(kBinaryMagic) +
      2);

  struct IndexEntry {
    CanonicalHash key;
    std::uint64_t offset;
    std::uint32_t length;
  };
  std::vector<IndexEntry> wanted;
  char raw[kBinaryIndexEntryBytes];
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!in.read(raw, sizeof(raw))) return bad("truncated index");
    const auto* bytes = reinterpret_cast<const unsigned char*>(raw);
    IndexEntry entry;
    entry.key.hi = get_u64_le(bytes);
    entry.key.lo = get_u64_le(bytes + 8);
    entry.offset = get_u64_le(bytes + 16);
    entry.length = get_u32_le(bytes + 24);
    if (entry.length > kBinaryMaxBlobBytes) {
      return bad("oversized entry in index");
    }
    if (filter && !filter(entry.key)) {
      ++result.skipped;
      continue;
    }
    wanted.push_back(entry);
  }

  std::string blob;
  for (const IndexEntry& entry : wanted) {
    in.clear();
    if (!in.seekg(static_cast<std::streamoff>(entry.offset))) {
      return bad("seek failed (stream not seekable?)");
    }
    blob.resize(entry.length);
    if (!in.read(blob.data(), static_cast<std::streamsize>(entry.length))) {
      return bad("truncated entry blob");
    }
    CanonicalHash key;
    CachedSolution value;
    std::string why;
    if (!parse_cache_entry(blob, key, value, why)) {
      result.error = "entry " + to_hex(entry.key) + ": " + why;
      return result;
    }
    if (key != entry.key) {
      return bad("index/blob key mismatch for " + to_hex(entry.key));
    }
    insert(key, std::move(value));
    ++result.loaded;
  }
  return result;
}

void ShardedSolutionCache::write_stats_json(std::ostream& out,
                                            const CacheStats& stats) {
  out << "{\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
      << ",\"hit_rate\":" << canonical_number(stats.hit_rate())
      << ",\"insertions\":" << stats.insertions
      << ",\"evictions\":" << stats.evictions
      << ",\"near_hits\":" << stats.near_hits
      << ",\"entries\":" << stats.entries
      << ",\"near_entries\":" << stats.near_entries
      << ",\"bytes\":" << stats.bytes
      << ",\"capacity_bytes\":" << stats.capacity_bytes
      << ",\"shards\":" << stats.shards << "}";
}

void ShardedSolutionCache::attach_mutex_probe(
    const obs::ProfiledMutex::Probe* probe) noexcept {
  for (Shard& shard : shards_) shard.mutex.attach(probe);
  for (NearShard& near : near_shards_) near.mutex.attach(probe);
}

// ----------------------------------------------------------- replica tier

ReplicaCache::ReplicaCache(Config config)
    : capacity_bytes_(config.capacity_bytes),
      ttl_seconds_(config.ttl_seconds),
      ttl_cost_factor_(std::max(0.0, config.ttl_cost_factor)),
      ttl_max_seconds_(config.ttl_max_seconds) {}

ReplicaCache::Clock::time_point ReplicaCache::expiry_for(
    Clock::time_point now, double cost_seconds) const noexcept {
  if (ttl_seconds_ <= 0.0) return Clock::time_point::max();
  // Adaptive TTL: entries that were expensive to produce stay
  // replicated longer (re-deriving them after expiry costs a full
  // remote solve, not just a fetch), capped so a pathological recorded
  // cost cannot pin an entry effectively forever.
  double seconds = ttl_seconds_;
  if (ttl_cost_factor_ > 0.0 && cost_seconds > 0.0) {
    // The cap bounds the *extension*, never the base TTL — a cap below
    // ttl_seconds must not make expensive entries expire sooner than
    // free ones.
    const double cap = std::max(
        ttl_seconds_,
        ttl_max_seconds_ > 0.0 ? ttl_max_seconds_ : 16.0 * ttl_seconds_);
    seconds = std::min(cap, seconds + cost_seconds * ttl_cost_factor_);
  }
  // Clamp huge TTLs instead of overflowing the time_point arithmetic.
  const std::chrono::duration<double> ttl(seconds);
  if (ttl > Clock::time_point::max() - now) return Clock::time_point::max();
  return now + std::chrono::duration_cast<Clock::duration>(ttl);
}

std::optional<CachedSolution> ReplicaCache::lookup(const CanonicalHash& key,
                                                   Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (now >= it->second->expires_at) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

bool ReplicaCache::contains(const CanonicalHash& key,
                            Clock::time_point now) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  return it != index_.end() && now < it->second->expires_at;
}

void ReplicaCache::insert(const CanonicalHash& key, CachedSolution value,
                          Clock::time_point now) {
  if (capacity_bytes_ == 0) return;
  const std::size_t bytes = cached_solution_bytes(value);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto expires_at = expiry_for(now, value.cost_seconds);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    it->second->value = std::move(value);
    it->second->bytes = bytes;
    it->second->expires_at = expires_at;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(value), bytes, expires_at});
    index_.emplace(key, lru_.begin());
    bytes_ += bytes;
    ++stats_.insertions;
  }
  // Never evict the entry just inserted; one oversized entry is kept
  // (and displaced by the next insertion), mirroring the engine cache.
  while (bytes_ > capacity_bytes_ && lru_.size() > 1) {
    const auto victim = std::prev(lru_.end());
    bytes_ -= victim->bytes;
    index_.erase(victim->key);
    lru_.erase(victim);
    ++stats_.evictions;
  }
}

void ReplicaCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

ReplicaStats ReplicaCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ReplicaStats stats = stats_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  stats.capacity_bytes = capacity_bytes_;
  return stats;
}

void ReplicaCache::write_stats_json(std::ostream& out,
                                    const ReplicaStats& stats) {
  out << "{\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
      << ",\"insertions\":" << stats.insertions
      << ",\"evictions\":" << stats.evictions
      << ",\"expirations\":" << stats.expirations
      << ",\"entries\":" << stats.entries << ",\"bytes\":" << stats.bytes
      << ",\"capacity_bytes\":" << stats.capacity_bytes << "}";
}

}  // namespace prts::service
