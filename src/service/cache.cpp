#include "service/cache.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "model/interval.hpp"

namespace prts::service {
namespace {

/// Parses a canonical_number back into a double; false on trailing
/// garbage or malformed input. from_chars round-trips to_chars exactly.
bool parse_number(std::string_view text, double& value) {
  if (text == "inf") {
    value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-inf") {
    value = -std::numeric_limits<double>::infinity();
    return true;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_size(std::string_view text, std::size_t& value) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// Splits on one delimiter, no empty fields allowed.
std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, delim)) parts.push_back(part);
  return parts;
}

}  // namespace

std::size_t cached_solution_bytes(const CachedSolution& value) noexcept {
  // Fixed per-entry overhead: key, list/map nodes, metrics struct.
  std::size_t bytes = 160;
  if (value.solution) {
    const Mapping& mapping = value.solution->mapping;
    bytes += mapping.interval_count() * (sizeof(Interval) + sizeof(void*) * 3);
    bytes += mapping.processors_used() * sizeof(std::size_t);
  }
  return bytes;
}

ShardedSolutionCache::ShardedSolutionCache(Config config)
    : shards_(std::max<std::size_t>(1, config.shards)),
      per_shard_capacity_(
          std::max<std::size_t>(1, config.capacity_bytes / shards_.size())) {}

std::optional<CachedSolution> ShardedSolutionCache::lookup(
    const CanonicalHash& key) {
  Shard& shard = shard_of(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ShardedSolutionCache::insert(const CanonicalHash& key,
                                  CachedSolution value) {
  const std::size_t bytes = cached_solution_bytes(value);
  Shard& shard = shard_of(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    it->second->value = std::move(value);
    it->second->bytes = bytes;
    shard.bytes += bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(value), bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
    ++shard.insertions;
  }
  while (shard.bytes > per_shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ShardedSolutionCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

CacheStats ShardedSolutionCache::stats() const {
  CacheStats stats;
  stats.shards = shards_.size();
  stats.capacity_bytes = per_shard_capacity_ * shards_.size();
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

void ShardedSolutionCache::save_tsv(std::ostream& out) const {
  out << "# prts-solution-cache v1\n";
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Entry& entry : shard.lru) {
      out << to_hex(entry.key) << "\t";
      if (!entry.value.solution) {
        out << "0\t-\t-";
      } else {
        const solver::Solution& solution = *entry.value.solution;
        out << "1\t";
        const auto boundaries = solution.mapping.partition().boundaries();
        for (std::size_t j = 0; j < boundaries.size(); ++j) {
          out << (j ? "," : "") << boundaries[j];
        }
        out << "\t";
        for (std::size_t j = 0; j < solution.mapping.interval_count(); ++j) {
          if (j) out << ";";
          const auto procs = solution.mapping.processors(j);
          for (std::size_t r = 0; r < procs.size(); ++r) {
            out << (r ? "," : "") << procs[r];
          }
        }
      }
      const MappingMetrics* metrics =
          entry.value.solution ? &entry.value.solution->metrics : nullptr;
      if (metrics) {
        out << "\t" << canonical_number(metrics->reliability.log()) << "\t"
            << canonical_number(metrics->failure) << "\t"
            << canonical_number(metrics->expected_latency) << "\t"
            << canonical_number(metrics->worst_latency) << "\t"
            << canonical_number(metrics->expected_period) << "\t"
            << canonical_number(metrics->worst_period) << "\t"
            << metrics->interval_count << "\t" << metrics->processors_used
            << "\t" << canonical_number(metrics->replication_level);
      }
      out << "\n";
    }
  }
}

ShardedSolutionCache::LoadResult ShardedSolutionCache::load_tsv(
    std::istream& in) {
  LoadResult result;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const auto bad = [&](const std::string& what) {
      result.error = "line " + std::to_string(lineno) + ": " + what;
      return result;
    };

    const std::vector<std::string> fields = split(line, '\t');
    if (fields.size() != 4 && fields.size() != 13) {
      return bad("expected 4 or 13 tab-separated fields");
    }
    const auto key = hash_from_hex(fields[0]);
    if (!key) return bad("malformed hash '" + fields[0] + "'");

    if (fields[1] == "0") {
      insert(*key, CachedSolution{});
      ++result.loaded;
      continue;
    }
    if (fields[1] != "1" || fields.size() != 13) {
      return bad("feasible entries need 13 fields");
    }

    std::vector<std::size_t> boundaries;
    for (const std::string& part : split(fields[2], ',')) {
      std::size_t value = 0;
      if (!parse_size(part, value)) return bad("malformed boundary list");
      boundaries.push_back(value);
    }
    std::vector<std::vector<std::size_t>> procs;
    for (const std::string& group : split(fields[3], ';')) {
      std::vector<std::size_t> replicas;
      for (const std::string& part : split(group, ',')) {
        std::size_t value = 0;
        if (!parse_size(part, value)) return bad("malformed processor list");
        replicas.push_back(value);
      }
      procs.push_back(std::move(replicas));
    }
    if (boundaries.empty() || procs.size() != boundaries.size()) {
      return bad("boundary/processor list size mismatch");
    }

    double log_r = 0.0;
    MappingMetrics metrics;
    if (!parse_number(fields[4], log_r) ||
        !parse_number(fields[5], metrics.failure) ||
        !parse_number(fields[6], metrics.expected_latency) ||
        !parse_number(fields[7], metrics.worst_latency) ||
        !parse_number(fields[8], metrics.expected_period) ||
        !parse_number(fields[9], metrics.worst_period) ||
        !parse_size(fields[10], metrics.interval_count) ||
        !parse_size(fields[11], metrics.processors_used) ||
        !parse_number(fields[12], metrics.replication_level)) {
      return bad("malformed metric fields");
    }
    metrics.reliability = LogReliability::from_log(log_r);

    try {
      Mapping mapping(
          IntervalPartition::from_boundaries(boundaries,
                                             boundaries.back() + 1),
          std::move(procs));
      insert(*key,
             CachedSolution{solver::Solution{std::move(mapping), metrics}});
    } catch (const std::exception& error) {
      return bad(std::string("invalid mapping: ") + error.what());
    }
    ++result.loaded;
  }
  return result;
}

void ShardedSolutionCache::write_stats_json(std::ostream& out,
                                            const CacheStats& stats) {
  out << "{\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
      << ",\"hit_rate\":" << canonical_number(stats.hit_rate())
      << ",\"insertions\":" << stats.insertions
      << ",\"evictions\":" << stats.evictions
      << ",\"entries\":" << stats.entries << ",\"bytes\":" << stats.bytes
      << ",\"capacity_bytes\":" << stats.capacity_bytes
      << ",\"shards\":" << stats.shards << "}";
}

}  // namespace prts::service
