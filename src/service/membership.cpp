#include "service/membership.hpp"

#include <algorithm>

namespace prts::service {
namespace {

std::chrono::steady_clock::duration seconds_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

}  // namespace

Membership::Membership(Config config) : config_(config), ring_(config.ring) {
  if (config_.dead_after_seconds < config_.suspect_after_seconds) {
    config_.dead_after_seconds = config_.suspect_after_seconds;
  }
}

void Membership::bootstrap(std::vector<Member> members, Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  for (Member& member : members) {
    Entry entry;
    entry.member = std::move(member);
    entry.last_heard = now;
    entries_[entry.member.rank] = std::move(entry);
  }
  if (entries_.find(config_.self_rank) == entries_.end()) {
    Entry self;
    self.member.rank = config_.self_rank;
    self.last_heard = now;
    entries_[config_.self_rank] = std::move(self);
  }
  epoch_ = 1;
  rebuild_ring_locked();
}

MembershipView Membership::view() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MembershipView view;
  view.epoch = epoch_;
  view.members = members_locked();
  return view;
}

std::uint64_t Membership::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::size_t Membership::member_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool Membership::contains(std::size_t rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(rank) != entries_.end();
}

std::optional<Member> Membership::member(std::size_t rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(rank);
  if (it == entries_.end()) return std::nullopt;
  return it->second.member;
}

bool Membership::is_suspect(std::size_t rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(rank);
  return it != entries_.end() && it->second.suspect;
}

std::size_t Membership::owner_of(const CanonicalHash& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return config_.self_rank;
  return ring_.owner_of(key);
}

Membership::ChangeSet Membership::handle_join(const Member& member,
                                              Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  ChangeSet changes;
  // A join claiming OUR rank is an operator error (duplicate --rank in
  // the fleet). We are authoritative for our own record: ignore it —
  // the reply view carries the real owner back to the confused joiner.
  if (member.rank == config_.self_rank) return changes;
  auto it = entries_.find(member.rank);
  if (it != entries_.end()) {
    it->second.last_heard = now;
    it->second.suspect = false;
    if (it->second.member == member) return changes;  // re-announce, no change
    // Same rank, new address: a restarted process. Its caches start
    // over (or warm from a checkpoint), so treat it as a fresh joiner —
    // re-triggering handoff is safe, entries are immutable.
    it->second.member = member;
  } else {
    Entry entry;
    entry.member = member;
    entry.last_heard = now;
    entries_[member.rank] = std::move(entry);
  }
  epoch_ += 1;
  rebuild_ring_locked();
  changes.joined.push_back(member);
  changes.changed = true;
  return changes;
}

Membership::ChangeSet Membership::handle_update(const MembershipView& incoming,
                                                Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  ChangeSet changes;
  if (incoming.epoch < epoch_) return changes;  // stale; reply re-educates

  if (incoming.epoch == epoch_) {
    // Equal epochs merge by union: two ranks that each admitted a
    // different joiner at the same epoch converge without either
    // needing to win a bump race.
    for (const Member& member : incoming.members) {
      auto it = entries_.find(member.rank);
      if (it != entries_.end()) continue;
      Entry entry;
      entry.member = member;
      entry.last_heard = now;
      entries_[member.rank] = std::move(entry);
      changes.joined.push_back(member);
      changes.changed = true;
    }
    if (changes.changed) rebuild_ring_locked();
    return changes;
  }

  // Higher epoch: adopt wholesale. Keep heartbeat state for members we
  // already knew; newcomers start their silence clock now. Our OWN
  // record is the one exception: we are authoritative for our address,
  // so a view mis-stating it (a duplicate-rank joiner slipped in
  // somewhere) never overwrites it.
  std::unordered_map<std::size_t, Entry> next;
  for (const Member& member : incoming.members) {
    Entry entry;
    const auto it = entries_.find(member.rank);
    if (it != entries_.end()) {
      entry = it->second;
      if (member.rank != config_.self_rank) {
        entry.member = member;  // address may have changed (restart)
      }
    } else {
      entry.member = member;
      entry.last_heard = now;
      changes.joined.push_back(member);
    }
    next[member.rank] = std::move(entry);
  }
  for (const auto& [rank, entry] : entries_) {
    if (next.find(rank) == next.end() && rank != config_.self_rank) {
      changes.left.push_back(rank);
    }
  }
  if (next.find(config_.self_rank) == next.end()) {
    // The fleet dropped us (we were silent past dead_after — e.g. a
    // long stall or partition). Re-add self (keeping our advertise
    // address) and bump PAST the incoming epoch so our presence wins
    // the next exchange.
    Entry self;
    const auto prior = entries_.find(config_.self_rank);
    if (prior != entries_.end()) self.member = prior->second.member;
    self.member.rank = config_.self_rank;
    self.last_heard = now;
    next[config_.self_rank] = std::move(self);
    changes.rejoined_self = true;
  }
  entries_ = std::move(next);
  epoch_ = incoming.epoch + (changes.rejoined_self ? 1 : 0);
  changes.changed = true;
  rebuild_ring_locked();
  return changes;
}

void Membership::note_heard_from(std::size_t rank, Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(rank);
  if (it == entries_.end()) return;
  it->second.last_heard = now;
  it->second.suspect = false;
}

Membership::TickResult Membership::tick(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  TickResult result;
  const auto suspect_after = seconds_duration(config_.suspect_after_seconds);
  const auto dead_after = seconds_duration(config_.dead_after_seconds);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first == config_.self_rank) {
      ++it;
      continue;
    }
    const auto silence = now - it->second.last_heard;
    if (silence >= dead_after) {
      result.died.push_back(it->first);
      it = entries_.erase(it);
      continue;
    }
    if (silence >= suspect_after && !it->second.suspect) {
      it->second.suspect = true;
      result.suspected.push_back(it->first);
    }
    ++it;
  }
  if (!result.died.empty()) {
    epoch_ += 1;
    rebuild_ring_locked();
  }
  return result;
}

void Membership::rebuild_ring_locked() {
  std::vector<std::size_t> ranks;
  ranks.reserve(entries_.size());
  for (const auto& [rank, entry] : entries_) ranks.push_back(rank);
  ring_.rebuild(ranks);
}

std::vector<Member> Membership::members_locked() const {
  std::vector<Member> members;
  members.reserve(entries_.size());
  for (const auto& [rank, entry] : entries_) members.push_back(entry.member);
  std::sort(members.begin(), members.end(),
            [](const Member& a, const Member& b) { return a.rank < b.rank; });
  return members;
}

}  // namespace prts::service
