#include "service/engine.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

namespace prts::service {
namespace {

using Clock = std::chrono::steady_clock;

/// RAII profile of one submit-path exit: however submit_canonicalized
/// returns (cache hit, dedup, rejection, batch scheduled), the
/// per-request allocation counters advance exactly once. Allocation
/// accounting (two relaxed TLS loads) runs on every request so
/// engine_allocs_per_request stays exact; the dual-clock component
/// sample costs CPU-clock syscalls and is taken only when the
/// profiler's 1-in-N gate says so. Inert until start().
struct SubmitProfile {
  obs::Profiler::Component* component = nullptr;
  obs::Counter* allocs_total = nullptr;
  obs::Counter* alloc_bytes_total = nullptr;
  obs::Counter* requests_total = nullptr;
  obs::Gauge* per_request = nullptr;
  std::optional<obs::AllocScope> allocs;
  std::optional<obs::ScopedSample> sample;

  void start(bool sampled) {
    allocs.emplace();
    if (sampled) sample.emplace();
  }

  /// The probes' current reading (for span attribution mid-path).
  /// Unsampled requests still report their exact allocation delta; the
  /// clock fields stay zero rather than paying the syscalls.
  obs::WorkSample snapshot() const noexcept {
    if (sample) return sample->finish();
    obs::WorkSample work;
    if (allocs) {
      const obs::AllocCounts delta = allocs->delta();
      work.alloc_count = delta.count;
      work.alloc_bytes = delta.bytes;
    }
    return work;
  }

  ~SubmitProfile() {
    if (!allocs) return;
    const obs::AllocCounts delta = allocs->delta();
    if (allocs_total) allocs_total->add(delta.count);
    if (alloc_bytes_total) alloc_bytes_total->add(delta.bytes);
    if (per_request && requests_total && allocs_total) {
      const std::uint64_t requests = requests_total->value();
      if (requests > 0) {
        per_request->set(static_cast<double>(allocs_total->value()) /
                         static_cast<double>(requests));
      }
    }
    if (sample && component != nullptr) {
      obs::Profiler::record(*component, sample->finish());
    }
  }
};

/// True when a deadline measured from `submitted` has elapsed at `now`.
bool deadline_expired(double deadline_seconds, Clock::time_point submitted,
                      Clock::time_point now) noexcept {
  if (deadline_seconds <= 0.0) return true;
  if (!std::isfinite(deadline_seconds)) return false;
  const double elapsed =
      std::chrono::duration<double>(now - submitted).count();
  return elapsed >= deadline_seconds;
}

/// The absolute time a waiter's deadline elapses; max() when it never
/// does (infinite or clock-range-exceeding deadlines must not overflow
/// the time_point arithmetic).
Clock::time_point waiter_deadline(double deadline_seconds,
                                  Clock::time_point submitted) noexcept {
  if (!std::isfinite(deadline_seconds)) return Clock::time_point::max();
  if (deadline_seconds <= 0.0) return submitted;
  const std::chrono::duration<double> wait(deadline_seconds);
  if (wait > Clock::time_point::max() - submitted) {
    return Clock::time_point::max();
  }
  return submitted + std::chrono::duration_cast<Clock::duration>(wait);
}

}  // namespace

std::future<SolveReply> ready_reply_future(SolveReply reply) {
  std::promise<SolveReply> promise;
  std::future<SolveReply> future = promise.get_future();
  promise.set_value(std::move(reply));
  return future;
}

const char* reply_status_name(ReplyStatus status) noexcept {
  switch (status) {
    case ReplyStatus::kSolved:
      return "solved";
    case ReplyStatus::kInfeasible:
      return "infeasible";
    case ReplyStatus::kRejectedQueue:
      return "rejected-queue";
    case ReplyStatus::kRejectedDeadline:
      return "rejected-deadline";
    case ReplyStatus::kError:
      return "error";
  }
  return "error";
}

void write_engine_stats_json(std::ostream& out, const EngineStats& stats) {
  out << "{\"submitted\":" << stats.submitted
      << ",\"completed\":" << stats.completed
      << ",\"cache_hits\":" << stats.cache_hits
      << ",\"dominating_hits\":" << stats.dominating_hits
      << ",\"warm_started\":" << stats.warm_started
      << ",\"solver_invocations\":" << stats.solver_invocations
      << ",\"deduplicated\":" << stats.deduplicated
      << ",\"batches\":" << stats.batches
      << ",\"batched_requests\":" << stats.batched_requests
      << ",\"downgraded\":" << stats.downgraded
      << ",\"rejected_queue\":" << stats.rejected_queue
      << ",\"rejected_deadline\":" << stats.rejected_deadline
      << ",\"errors\":" << stats.errors << "}";
}

void write_hit_tiers_json(std::ostream& out, const EngineStats& stats) {
  const std::uint64_t miss =
      stats.solver_invocations > stats.warm_started
          ? stats.solver_invocations - stats.warm_started
          : 0;
  out << "{\"exact\":" << stats.cache_hits
      << ",\"dominating\":" << stats.dominating_hits
      << ",\"warm_start\":" << stats.warm_started << ",\"miss\":" << miss
      << "}";
}

/// Seconds between two steady-clock points, floored at zero (span
/// offsets are measured from a waiter's submit time, and a span that
/// began before the waiter attached must not go negative).
static double seconds_since(Clock::time_point from,
                            Clock::time_point to) noexcept {
  const double elapsed = std::chrono::duration<double>(to - from).count();
  return elapsed < 0.0 ? 0.0 : elapsed;
}

SolveService::SolveService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache),
      pool_(config_.threads) {
  if (obs::Telemetry* telemetry = config_.telemetry) {
    requests_counter_ = &telemetry->metrics.counter("engine_requests_total");
    errors_counter_ = &telemetry->metrics.counter("engine_errors_total");
    rejected_counter_ = &telemetry->metrics.counter("engine_rejected_total");
    request_allocs_counter_ =
        &telemetry->metrics.counter("engine_request_allocs_total");
    request_alloc_bytes_counter_ =
        &telemetry->metrics.counter("engine_request_alloc_bytes_total");
    allocs_per_request_gauge_ =
        &telemetry->metrics.gauge("engine_allocs_per_request");
    request_latency_hist_ =
        &telemetry->metrics.histogram("engine_request_latency_seconds");
    batch_wait_hist_ =
        &telemetry->metrics.histogram("engine_batch_wait_seconds");
    solver_run_hist_ =
        &telemetry->metrics.histogram("engine_solver_run_seconds");
    queue_depth_gauge_ = &telemetry->metrics.gauge("engine_queue_depth");
    heartbeat_ = &telemetry->watchdog.component("engine");
    prof_canonicalize_ = &telemetry->profiler.component("canonicalize");
    prof_submit_ = &telemetry->profiler.component("submit_path");
    prof_cache_lookup_ = &telemetry->profiler.component("cache_lookup");
    prof_near_miss_ = &telemetry->profiler.component("near_miss_lookup");
    prof_solver_run_ = &telemetry->profiler.component("solver_run");
    prof_fallback_ = &telemetry->profiler.component("fallback_solve");
    prof_batch_wait_ = &telemetry->profiler.component("batch_wait");
    queue_probe_ =
        obs::ProfiledMutex::make_probe(telemetry->metrics, "engine_queue");
    mutex_.attach(&queue_probe_);
    cache_probe_ =
        obs::ProfiledMutex::make_probe(telemetry->metrics, "cache_shard");
    cache_.attach_mutex_probe(&cache_probe_);
    pool_probe_ =
        obs::ProfiledMutex::make_probe(telemetry->metrics, "engine_pool");
    pool_.attach_mutex_probe(&pool_probe_);
  }
}

SolveService::~SolveService() { wait_idle(); }

std::future<SolveReply> SolveService::submit(SolveRequest request) {
  // Canonicalization runs on every submit, so its dual-clock sample is
  // 1-in-N — two CPU-clock syscalls per request would dominate the warm
  // path's own cost.
  const bool sampled =
      config_.telemetry && config_.telemetry->profiler.should_sample();
  std::optional<obs::ScopedSample> sample;
  if (sampled) sample.emplace();
  auto canonical = std::make_shared<const CanonicalInstance>(
      canonicalize(request.instance));
  const CanonicalHash key =
      request_key(*canonical, request.solver, request.bounds);
  if (sampled) obs::Profiler::record(*prof_canonicalize_, sample->finish());
  return submit_canonicalized(std::move(request), std::move(canonical), key);
}

std::future<SolveReply> SolveService::submit_canonicalized(
    SolveRequest request, std::shared_ptr<const CanonicalInstance> canonical,
    const CanonicalHash& key) {
  // Trace opening: a carried id (forwarded solve) is adopted so the
  // origin's trace id resolves on this rank too; otherwise one is
  // minted. All span offsets are measured from this arrival point.
  obs::Telemetry* const telemetry = config_.telemetry;
  const Clock::time_point arrival = Clock::now();
  std::uint64_t trace_id = request.trace_id;
  // Submit-path attribution: one sample covering this call however it
  // exits, feeding submit_path and the allocations-per-request gauge.
  SubmitProfile submit_profile;
  if (telemetry) {
    requests_counter_->add();
    if (telemetry->profiler.enabled()) {
      submit_profile.component = prof_submit_;
      submit_profile.allocs_total = request_allocs_counter_;
      submit_profile.alloc_bytes_total = request_alloc_bytes_counter_;
      submit_profile.requests_total = requests_counter_;
      submit_profile.per_request = allocs_per_request_gauge_;
      submit_profile.start(telemetry->profiler.should_sample());
    }
    const std::string label = request.solver + ":" + to_hex(key);
    if (trace_id == 0) {
      trace_id = telemetry->tracer.start(label);
    } else {
      telemetry->tracer.start_with_id(trace_id, label);
    }
  }

  // One construction for both served-from-cache tiers (exact and
  // dominating) — they differ only in the near_miss flag and which
  // counter they bump.
  const auto serve_cached = [&](const CachedSolution& cached,
                                bool near_miss) {
    SolveReply reply;
    reply.key = key;
    reply.cache_hit = true;
    reply.near_miss = near_miss;
    reply.solver_used = request.solver;
    reply.cost_seconds = cached.cost_seconds;
    reply.trace_id = trace_id;
    if (cached.solution) {
      reply.status = ReplyStatus::kSolved;
      reply.solution = to_original_labels(*cached.solution, *canonical);
    } else {
      reply.status = ReplyStatus::kInfeasible;
    }
    if (telemetry) {
      const double elapsed = seconds_since(arrival, Clock::now());
      const obs::WorkSample work = submit_profile.snapshot();
      obs::Span span;
      span.name = near_miss ? "near_miss_lookup" : "cache_lookup";
      span.rank = telemetry->rank;
      span.duration_seconds = elapsed;
      span.cpu_seconds = work.cpu_seconds < elapsed ? work.cpu_seconds
                                                    : elapsed;
      span.alloc_count = work.alloc_count;
      span.alloc_bytes = work.alloc_bytes;
      telemetry->tracer.record(trace_id, std::move(span));
      telemetry->tracer.finish(trace_id, elapsed);
      request_latency_hist_->record(elapsed);
      if (submit_profile.sample) {
        obs::Profiler::record(near_miss ? *prof_near_miss_
                                        : *prof_cache_lookup_,
                              work);
      }
    }
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    ++stats_.submitted;
    ++(near_miss ? stats_.dominating_hits : stats_.cache_hits);
    ++stats_.completed;
    return ready_reply_future(std::move(reply));
  };

  if (config_.cache_enabled) {
    if (auto cached = cache_.lookup(key)) {
      return serve_cached(*cached, /*near_miss=*/false);
    }
  }

  // Near-miss path: the exact key missed, but the bounds-monotone index
  // may hold an answer for this (instance, solver) at other bounds.
  const solver::SolverRegistry& registry =
      config_.registry ? *config_.registry : solver::SolverRegistry::builtin();
  const auto engine = registry.find(request.solver);
  const CanonicalHash bkey = batch_key(*canonical, request.solver);
  std::optional<solver::WarmStart> warm = std::move(request.warm_start);
  // A caller-supplied hint is only a hint when its incumbent is
  // actually feasible under *these* bounds — otherwise its floor is
  // unproven and the downgrade path could leak a bound-violating
  // answer. Drop it rather than trust it.
  if (warm && (!warm->incumbent ||
               !solver::within_bounds(warm->incumbent->metrics,
                                      request.bounds))) {
    warm.reset();
  }
  if (near_miss_enabled() && engine) {
    if (engine->bounds_monotone(canonical->instance)) {
      if (auto near = dominating_answer(bkey, key, request.bounds)) {
        return serve_cached(*near, /*near_miss=*/true);
      }
    }
    merge_warm_hint(bkey, request.bounds, warm);
  }

  std::unique_lock<obs::ProfiledMutex> lock(mutex_);
  ++stats_.submitted;

  // Deduplication: attach to an identical in-flight request. The waiter
  // carries its own canonical form and deadline options — the shared
  // solve must not leak the first submitter's labels or policy.
  if (const auto it = in_flight_.find(key); it != in_flight_.end()) {
    ++stats_.deduplicated;
    it->second->waiters.push_back(
        Waiter{{}, canonical, request.deadline_seconds,
               request.deadline_policy, Clock::now(), true, trace_id});
    return it->second->waiters.back().promise.get_future();
  }

  // Admission control: bounded backlog.
  if (outstanding_ >= config_.max_queue_depth) {
    ++stats_.rejected_queue;
    ++stats_.completed;
    lock.unlock();
    SolveReply reply;
    reply.status = ReplyStatus::kRejectedQueue;
    reply.key = key;
    reply.trace_id = trace_id;
    if (telemetry) {
      rejected_counter_->add();
      const double elapsed = seconds_since(arrival, Clock::now());
      telemetry->tracer.record(trace_id, "rejected_queue", telemetry->rank,
                               0.0, elapsed);
      telemetry->tracer.finish(trace_id, elapsed);
    }
    return ready_reply_future(std::move(reply));
  }
  ++outstanding_;
  if (queue_depth_gauge_) {
    queue_depth_gauge_->set(static_cast<double>(outstanding_));
  }
  if (heartbeat_) {
    // The idle→busy transition beats once so the runner gets a full
    // stall threshold to pick the work up; after that only the runner's
    // own progress resets the age.
    if (outstanding_ == 1) heartbeat_->beat();
    heartbeat_->set_load(static_cast<std::int64_t>(outstanding_));
  }

  auto query = std::make_unique<PendingQuery>();
  query->canonical = canonical;
  query->bounds = request.bounds;
  query->key = key;
  query->warm = std::move(warm);
  query->waiters.push_back(Waiter{{}, canonical, request.deadline_seconds,
                                  request.deadline_policy, Clock::now(),
                                  false, trace_id});
  std::future<SolveReply> future =
      query->waiters.back().promise.get_future();
  in_flight_.emplace(key, query.get());

  // Batching: requests sharing (canonical instance, solver) ride one
  // prepared session; the batch stays open until a worker picks it up.
  const Clock::time_point query_deadline = waiter_deadline(
      request.deadline_seconds, query->waiters.back().submitted);
  if (const auto it = open_batches_.find(bkey); it != open_batches_.end()) {
    ++stats_.batched_requests;
    it->second->queries.push_back(std::move(query));
    it->second->earliest_deadline =
        std::min(it->second->earliest_deadline, query_deadline);
    return future;
  }
  auto batch = std::make_shared<Batch>();
  batch->canonical = std::move(canonical);
  batch->solver_name = request.solver;
  batch->key = bkey;
  batch->queries.push_back(std::move(query));
  batch->earliest_deadline = query_deadline;
  batch->sequence = next_batch_sequence_++;
  open_batches_.emplace(bkey, batch);
  lock.unlock();

  // One task per batch created; each task picks the currently most
  // urgent open batch, so pickup order is deadline-driven, not FIFO.
  pool_.submit([this] { run_next_batch(); });
  return future;
}

std::optional<CachedSolution> SolveService::dominating_answer(
    const CanonicalHash& bkey, const CanonicalHash& key,
    const solver::Bounds& bounds) {
  if (!near_miss_enabled()) return std::nullopt;
  auto near = cache_.find_dominating(bkey, bounds);
  if (!near) return std::nullopt;
  // Promote under the request's own key: the next identical request is
  // an exact hit, and the entry (indexed under this request's bounds)
  // extends the instance's sweep history toward the tighter end. The
  // recorded cost is inherited — the answer is worth what its solve
  // cost, not the near-free lookup.
  CachedSolution promoted = *near;
  promoted.instance_key = bkey;
  promoted.bounds = bounds;
  cache_.insert(key, promoted);
  return near;
}

void SolveService::merge_warm_hint(const CanonicalHash& bkey,
                                   const solver::Bounds& bounds,
                                   std::optional<solver::WarmStart>& warm) {
  if (!near_miss_enabled()) return;
  auto feasible = cache_.find_feasible(bkey, bounds);
  if (!feasible || !feasible->solution) return;
  const double floor = feasible->solution->metrics.reliability.log();
  if (warm && warm->reliability_floor_log >= floor) return;
  solver::WarmStart hint;
  hint.incumbent = std::move(feasible->solution);
  hint.reliability_floor_log = floor;
  warm = std::move(hint);
}

void SolveService::run_next_batch() {
  std::shared_ptr<Batch> batch;
  std::vector<std::unique_ptr<PendingQuery>> queries;
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    if (open_batches_.empty()) return;  // defensive; see run_next_batch doc
    auto best = open_batches_.begin();
    for (auto it = std::next(best); it != open_batches_.end(); ++it) {
      const Batch& candidate = *it->second;
      const Batch& leader = *best->second;
      // Earliest deadline wins; creation order breaks ties, so the
      // all-infinite-deadline workload keeps its FIFO fairness.
      if (candidate.earliest_deadline < leader.earliest_deadline ||
          (candidate.earliest_deadline == leader.earliest_deadline &&
           candidate.sequence < leader.sequence)) {
        best = it;
      }
    }
    batch = best->second;
    open_batches_.erase(best);
    queries = std::move(batch->queries);
    ++stats_.batches;
  }
  if (heartbeat_) heartbeat_->beat();

  const solver::SolverRegistry& registry =
      config_.registry ? *config_.registry : solver::SolverRegistry::builtin();
  const auto engine = registry.find(batch->solver_name);
  const bool monotone =
      engine && engine->bounds_monotone(batch->canonical->instance);
  const bool profiled =
      config_.telemetry && config_.telemetry->profiler.enabled();
  std::unique_ptr<solver::PreparedSolver> session;

  for (auto& query : queries) {
    QueryOutcome outcome;
    try {
      // A query runs for real as long as ANY of its waiters is still
      // within deadline (waiters joined later than the first submitter
      // and may be more patient); expired waiters then simply receive
      // the answer that was computed anyway. Only when every waiter
      // expired does the query degrade: fallback if someone allows it,
      // rejection otherwise.
      const auto now = Clock::now();
      outcome.processing_started = now;
      bool any_live = false;
      bool any_downgrade = false;
      {
        // submit() may still be appending waiters to this query.
        const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
        for (const Waiter& waiter : query->waiters) {
          if (!deadline_expired(waiter.deadline_seconds, waiter.submitted,
                                now)) {
            any_live = true;
          } else if (waiter.deadline_policy == DeadlinePolicy::kDowngrade) {
            any_downgrade = true;
          }
        }
      }
      if (!engine) {
        outcome.kind = QueryOutcome::Kind::kError;
        outcome.error = "unknown solver '" + batch->solver_name + "'";
      } else if (any_live) {
        // Solve-time re-probe: earlier queries of this very batch (or a
        // concurrent batch elsewhere) may have answered this key — or a
        // dominating neighbor of it — since submission. A 20-step bound
        // ladder submitted in one burst collapses to a handful of real
        // solves this way, exactly like a paced sweep does.
        bool answered_from_cache = false;
        if (config_.cache_enabled) {
          const auto probe_start = Clock::now();
          std::optional<obs::ScopedSample> probe_sample;
          if (profiled) probe_sample.emplace();
          // peek: the submit-path lookup already counted this key's
          // miss; the re-probe must not count a second one.
          std::optional<CachedSolution> cached = cache_.peek(query->key);
          if (cached) {
            outcome.cache_hit = true;
          } else if (monotone) {
            cached = dominating_answer(batch->key, query->key, query->bounds);
            if (cached) {
              outcome.cache_hit = true;
              outcome.near_miss = true;
            }
          }
          if (cached) {
            outcome.canonical_solution = std::move(cached->solution);
            outcome.cost_seconds = cached->cost_seconds;
            outcome.kind = QueryOutcome::Kind::kAnswered;
            outcome.solver_used = batch->solver_name;
            answered_from_cache = true;
            const obs::WorkSample work =
                probe_sample ? probe_sample->finish() : obs::WorkSample{};
            if (probe_sample) {
              obs::Profiler::record(outcome.near_miss ? *prof_near_miss_
                                                      : *prof_cache_lookup_,
                                    work);
            }
            outcome.spans.push_back(QueryOutcome::TimedSpan{
                outcome.near_miss ? "near_miss_lookup" : "cache_lookup",
                probe_start, seconds_since(probe_start, Clock::now()),
                work.cpu_seconds, work.alloc_count, work.alloc_bytes});
          }
        }
        if (!answered_from_cache) {
          // Freshen the hint: neighbors solved since submission may
          // carry a stronger floor than what submit harvested.
          merge_warm_hint(batch->key, query->bounds, query->warm);
          if (!session) session = engine->prepare(batch->canonical->instance);
          const auto solve_start = Clock::now();
          std::optional<obs::ScopedSample> solve_sample;
          if (profiled) solve_sample.emplace();
          const solver::WarmStart* hint =
              query->warm && !query->warm->empty() ? &*query->warm : nullptr;
          // Recorded per entry so Retention::kCost can keep expensive
          // exact solves alive longer than cheap heuristic answers.
          double cost_seconds = 0.0;
          outcome.canonical_solution = solver::timed_solve(
              *session, query->bounds, hint, cost_seconds);
          outcome.warm_started = hint != nullptr;
          outcome.invoked = true;
          outcome.cost_seconds = cost_seconds;
          const obs::WorkSample solve_work =
              solve_sample ? solve_sample->finish() : obs::WorkSample{};
          if (solve_sample) {
            obs::Profiler::record(*prof_solver_run_, solve_work);
          }
          outcome.spans.push_back(QueryOutcome::TimedSpan{
              "solver_run", solve_start, cost_seconds,
              solve_work.cpu_seconds, solve_work.alloc_count,
              solve_work.alloc_bytes});
          if (solver_run_hist_) solver_run_hist_->record(cost_seconds);
          if (config_.cache_enabled) {
            // The near-miss metadata makes this solve a reusable point
            // of the instance's sweep history.
            cache_.insert(query->key,
                          CachedSolution{outcome.canonical_solution,
                                         cost_seconds, batch->key,
                                         query->bounds});
          }
          outcome.kind = QueryOutcome::Kind::kAnswered;
          outcome.solver_used = batch->solver_name;
        }
      } else if (any_downgrade) {
        const auto fallback = registry.find(config_.fallback_solver);
        if (!fallback) {
          outcome.kind = QueryOutcome::Kind::kError;
          outcome.error =
              "unknown fallback solver '" + config_.fallback_solver + "'";
        } else {
          // Late: answer fast with the fallback engine. Not cached —
          // the key names the solver the caller asked for.
          const auto fallback_start = Clock::now();
          std::optional<obs::ScopedSample> fallback_sample;
          if (profiled) fallback_sample.emplace();
          outcome.canonical_solution =
              fallback->solve(query->canonical->instance, query->bounds);
          const obs::WorkSample fallback_work =
              fallback_sample ? fallback_sample->finish() : obs::WorkSample{};
          if (fallback_sample) {
            obs::Profiler::record(*prof_fallback_, fallback_work);
          }
          outcome.spans.push_back(QueryOutcome::TimedSpan{
              "fallback_solve", fallback_start,
              seconds_since(fallback_start, Clock::now()),
              fallback_work.cpu_seconds, fallback_work.alloc_count,
              fallback_work.alloc_bytes});
          outcome.kind = QueryOutcome::Kind::kFallback;
          outcome.solver_used = config_.fallback_solver;
          // A warm incumbent (cached from the *requested* solver at
          // other bounds, feasible here by construction) may beat the
          // fallback's answer; a degraded reply should still be the
          // best answer available cheaply.
          if (query->warm && query->warm->incumbent &&
              (!outcome.canonical_solution ||
               solver::tri_criteria_better(
                   query->warm->incumbent->metrics,
                   outcome.canonical_solution->metrics))) {
            outcome.canonical_solution = query->warm->incumbent;
            outcome.solver_used = batch->solver_name;
          }
        }
      } else {
        outcome.kind = QueryOutcome::Kind::kRejected;
      }
    } catch (const std::exception& error) {
      outcome = QueryOutcome{};
      outcome.error = error.what();
    } catch (...) {
      outcome = QueryOutcome{};
      outcome.error = "unknown solver exception";
    }
    finish_query(*query, outcome);
  }
}

void SolveService::finish_query(PendingQuery& query,
                                const QueryOutcome& outcome) {
  std::vector<Waiter> waiters;
  bool any_rejected = false;
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    in_flight_.erase(query.key);
    waiters = std::move(query.waiters);
    for (const Waiter& waiter : waiters) {
      if (outcome.kind == QueryOutcome::Kind::kRejected ||
          (outcome.kind == QueryOutcome::Kind::kFallback &&
           waiter.deadline_policy == DeadlinePolicy::kReject)) {
        any_rejected = true;
      }
    }
    stats_.completed += waiters.size();
    if (outcome.kind == QueryOutcome::Kind::kError) {
      ++stats_.errors;
      if (errors_counter_) errors_counter_->add();
    }
    if (outcome.kind == QueryOutcome::Kind::kFallback) ++stats_.downgraded;
    if (any_rejected) {
      ++stats_.rejected_deadline;
      if (rejected_counter_) rejected_counter_->add();
    }
    if (outcome.near_miss) ++stats_.dominating_hits;
    if (outcome.cache_hit && !outcome.near_miss) ++stats_.cache_hits;
    if (outcome.warm_started) ++stats_.warm_started;
    if (outcome.invoked) ++stats_.solver_invocations;
    --outstanding_;
    if (queue_depth_gauge_) {
      queue_depth_gauge_->set(static_cast<double>(outstanding_));
    }
    if (heartbeat_) {
      heartbeat_->set_load(static_cast<std::int64_t>(outstanding_));
      heartbeat_->beat();
    }
    if (outstanding_ == 0) idle_cv_.notify_all();
  }
  obs::Telemetry* const telemetry = config_.telemetry;
  const Clock::time_point finished_at = Clock::now();
  for (Waiter& waiter : waiters) {
    // Per-waiter trace rendering: every attached caller (including
    // dedup twins) gets the shared work phases expressed as offsets
    // from its *own* submit time, under its *own* trace id.
    if (telemetry && waiter.trace_id != 0) {
      const double total = seconds_since(waiter.submitted, finished_at);
      const double wait =
          seconds_since(waiter.submitted, outcome.processing_started);
      telemetry->tracer.record(waiter.trace_id, "batch_wait",
                               telemetry->rank, 0.0, wait);
      if (telemetry->profiler.enabled() && prof_batch_wait_) {
        // Queue wait is blocked time by construction: the request was
        // owned by no thread, so the sample is wall-only.
        obs::WorkSample queued;
        queued.wall_seconds = wait;
        obs::Profiler::record(*prof_batch_wait_, queued);
      }
      for (const QueryOutcome::TimedSpan& span : outcome.spans) {
        obs::Span rendered;
        rendered.name = span.name;
        rendered.rank = telemetry->rank;
        rendered.start_seconds = seconds_since(waiter.submitted, span.start);
        rendered.duration_seconds = span.duration_seconds;
        rendered.cpu_seconds = span.cpu_seconds;
        rendered.alloc_count = span.alloc_count;
        rendered.alloc_bytes = span.alloc_bytes;
        telemetry->tracer.record(waiter.trace_id, std::move(rendered));
      }
      telemetry->tracer.finish(waiter.trace_id, total);
      request_latency_hist_->record(total);
      batch_wait_hist_->record(wait);
    }
    SolveReply reply;
    reply.key = query.key;
    reply.deduplicated = waiter.deduplicated;
    reply.cache_hit = outcome.cache_hit;
    reply.near_miss = outcome.near_miss;
    reply.cost_seconds = outcome.cost_seconds;
    reply.trace_id = waiter.trace_id;
    switch (outcome.kind) {
      case QueryOutcome::Kind::kError:
        reply.status = ReplyStatus::kError;
        reply.error = outcome.error;
        break;
      case QueryOutcome::Kind::kRejected:
        reply.status = ReplyStatus::kRejectedDeadline;
        break;
      case QueryOutcome::Kind::kFallback:
        if (waiter.deadline_policy == DeadlinePolicy::kReject) {
          reply.status = ReplyStatus::kRejectedDeadline;
          break;
        }
        reply.downgraded = true;
        [[fallthrough]];
      case QueryOutcome::Kind::kAnswered:
        reply.solver_used = outcome.solver_used;
        if (outcome.canonical_solution) {
          reply.status = ReplyStatus::kSolved;
          // Each waiter's own permutation: isomorphic twins get the
          // shared solve expressed in their own processor labels.
          reply.solution = to_original_labels(*outcome.canonical_solution,
                                              *waiter.canonical);
        } else {
          reply.status = ReplyStatus::kInfeasible;
        }
        break;
    }
    waiter.promise.set_value(std::move(reply));
  }
}

void SolveService::wait_idle() {
  std::unique_lock<obs::ProfiledMutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

EngineStats SolveService::stats() const {
  const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
  return stats_;
}

CacheStats SolveService::cache_stats() const { return cache_.stats(); }

}  // namespace prts::service
