// A small reduced ordered binary decision diagram (ROBDD) package, used to
// evaluate the reliability of *general* (non serial-parallel) RBDs exactly.
//
// The paper inserts routing operations precisely because evaluating a
// general RBD is exponential in the worst case; its conclusion asks
// whether the routing step could be removed. BDDs are the classic tool
// for that question: the structure function of the RBD is built once and
// the failure probability follows in time linear in the BDD size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/prob.hpp"
#include "rbd/graph.hpp"

namespace prts::rbd {

/// ROBDD manager with a unique table and memoized binary apply. Node ids
/// 0 and 1 are the false/true terminals; variables are levels 0..V-1 and
/// the variable order is the level order.
class BddManager {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kFalse = 0;
  static constexpr NodeId kTrue = 1;

  BddManager();

  /// The single-variable function x_level.
  NodeId var(unsigned level);

  /// Conjunction / disjunction with memoization.
  NodeId apply_and(NodeId a, NodeId b);
  NodeId apply_or(NodeId a, NodeId b);

  /// P(f = 0) where variable `level` is 1 ("block works") with probability
  /// 1 - var_failure[level]. Passing failure probabilities keeps precision
  /// when they are tiny. Memoized over nodes, O(BDD size).
  double failure_probability(NodeId root,
                             std::span<const double> var_failure) const;

  /// Number of allocated nodes (including the two terminals).
  std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    unsigned level;  // kTerminalLevel for the two terminals
    NodeId lo;
    NodeId hi;
  };

  struct UniqueKey {
    unsigned level;
    NodeId lo;
    NodeId hi;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    std::size_t operator()(const UniqueKey& key) const noexcept;
  };

  struct ApplyKey {
    bool is_and;
    NodeId a;
    NodeId b;
    bool operator==(const ApplyKey&) const = default;
  };
  struct ApplyKeyHash {
    std::size_t operator()(const ApplyKey& key) const noexcept;
  };

  static constexpr unsigned kTerminalLevel = ~0u;

  NodeId make(unsigned level, NodeId lo, NodeId hi);
  NodeId apply(bool is_and, NodeId a, NodeId b);

  std::vector<Node> nodes_;
  std::unordered_map<UniqueKey, NodeId, UniqueKeyHash> unique_;
  std::unordered_map<ApplyKey, NodeId, ApplyKeyHash> apply_cache_;
};

/// Exact reliability of a general RBD via a BDD over its block variables:
/// the structure function is the disjunction over all minimal S->D paths
/// of the conjunction of their blocks. Throws std::invalid_argument when
/// the graph has more than `path_limit` S->D paths.
LogReliability bdd_reliability(const Graph& graph,
                               std::size_t path_limit = 1u << 20);

}  // namespace prts::rbd
