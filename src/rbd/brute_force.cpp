#include "rbd/brute_force.hpp"

#include <stdexcept>
#include <vector>

namespace prts::rbd {

LogReliability brute_force_reliability(const Graph& graph,
                                       std::size_t max_blocks) {
  const std::size_t blocks = graph.block_count();
  if (blocks > max_blocks) {
    throw std::invalid_argument(
        "brute_force_reliability: too many blocks for exhaustive "
        "enumeration");
  }
  const std::vector<double> failure = graph.failure_probabilities();

  // Sum the probability of *failing* states: those are tiny when blocks
  // are reliable, so the sum keeps full precision, whereas accumulating
  // working-state probabilities would round to 1.0.
  double system_failure = 0.0;
  std::vector<bool> working(blocks, false);
  const std::size_t states = std::size_t{1} << blocks;
  for (std::size_t mask = 0; mask < states; ++mask) {
    double state_probability = 1.0;
    for (std::size_t b = 0; b < blocks; ++b) {
      const bool up = (mask >> b) & 1u;
      working[b] = up;
      state_probability *= up ? (1.0 - failure[b]) : failure[b];
      if (state_probability == 0.0) break;
    }
    if (state_probability == 0.0) continue;
    if (!graph.operational(working)) system_failure += state_probability;
  }
  return LogReliability::from_failure(system_failure);
}

}  // namespace prts::rbd
