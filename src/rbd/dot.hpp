// Graphviz (DOT) export of reliability block diagrams, reproducing the
// paper's Figure 4/5 drawings: blocks as boxes between the S and D
// connection points, labeled with their reliability.
#pragma once

#include <string>

#include "rbd/graph.hpp"
#include "rbd/series_parallel.hpp"

namespace prts::rbd {

/// DOT digraph of an RBD: S and D as circles, each block as a box
/// labeled "<label>\n r=<reliability>".
std::string to_dot(const Graph& graph);

/// DOT digraph of a serial-parallel expression (expanded to its graph).
std::string to_dot(const SpExpr& expr);

}  // namespace prts::rbd
