#include "rbd/graph.hpp"

#include <algorithm>
#include <cassert>

namespace prts::rbd {

std::size_t Graph::add_block(std::string label, LogReliability reliability) {
  blocks_.push_back(BlockNode{std::move(label), reliability, {}});
  exit_flag_.push_back(false);
  return blocks_.size() - 1;
}

void Graph::add_arc(std::size_t from, std::size_t to) {
  assert(from < blocks_.size() && to < blocks_.size());
  blocks_[from].successors.push_back(to);
}

void Graph::mark_entry(std::size_t block) {
  assert(block < blocks_.size());
  entries_.push_back(block);
}

void Graph::mark_exit(std::size_t block) {
  assert(block < blocks_.size());
  exits_.push_back(block);
  exit_flag_[block] = true;
}

std::vector<double> Graph::failure_probabilities() const {
  std::vector<double> failures;
  failures.reserve(blocks_.size());
  for (const BlockNode& block : blocks_) {
    failures.push_back(block.reliability.failure());
  }
  return failures;
}

bool Graph::operational(const std::vector<bool>& working) const {
  assert(working.size() == blocks_.size());
  std::vector<bool> visited(blocks_.size(), false);
  std::vector<std::size_t> stack;
  for (std::size_t entry : entries_) {
    if (working[entry] && !visited[entry]) {
      visited[entry] = true;
      stack.push_back(entry);
    }
  }
  while (!stack.empty()) {
    const std::size_t block = stack.back();
    stack.pop_back();
    if (exit_flag_[block]) return true;
    for (std::size_t next : blocks_[block].successors) {
      if (working[next] && !visited[next]) {
        visited[next] = true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

bool Graph::validate() const {
  // Acyclicity by iterative three-color DFS over all blocks.
  enum class Color : unsigned char { kWhite, kGray, kBlack };
  std::vector<Color> color(blocks_.size(), Color::kWhite);
  for (std::size_t root = 0; root < blocks_.size(); ++root) {
    if (color[root] != Color::kWhite) continue;
    // Stack of (block, next-successor-index).
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [block, next] = stack.back();
      if (next < blocks_[block].successors.size()) {
        const std::size_t succ = blocks_[block].successors[next++];
        if (color[succ] == Color::kGray) return false;  // back-edge: cycle
        if (color[succ] == Color::kWhite) {
          color[succ] = Color::kGray;
          stack.emplace_back(succ, 0);
        }
      } else {
        color[block] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return operational(std::vector<bool>(blocks_.size(), true));
}

std::vector<std::vector<std::size_t>> Graph::minimal_paths(
    std::size_t limit) const {
  std::vector<std::vector<std::size_t>> paths;
  std::vector<std::size_t> current;
  bool overflow = false;

  // DFS from each entry; the graph is a DAG so no visited set is needed.
  auto dfs = [&](auto&& self, std::size_t block) -> void {
    if (overflow) return;
    current.push_back(block);
    if (exit_flag_[block]) {
      if (paths.size() >= limit) {
        overflow = true;
      } else {
        std::vector<std::size_t> path = current;
        std::sort(path.begin(), path.end());
        paths.push_back(std::move(path));
      }
    }
    // A block that is an exit may still have successors in a general DAG;
    // both the direct termination above and longer continuations are paths,
    // but only minimal (non-superset) ones matter for reliability. In a DAG
    // a longer continuation through an exit is a superset of the shorter
    // path, so we stop at exits.
    if (!exit_flag_[block]) {
      for (std::size_t next : blocks_[block].successors) self(self, next);
    }
    current.pop_back();
  };
  for (std::size_t entry : entries_) dfs(dfs, entry);
  if (overflow) return {};
  return paths;
}

}  // namespace prts::rbd
