// Builders turning a mapping into its reliability block diagrams:
//  * the serial-parallel RBD obtained with routing operations (Figure 5 /
//    Eq. (9)), as both an SpExpr and an expanded general Graph;
//  * the general RBD obtained without routing operations (Figure 4).
//
// These make the three evaluation routes (Eq. (9) closed form, SP-tree
// evaluation, exact general-graph evaluation) mutually checkable.
#pragma once

#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"
#include "rbd/graph.hpp"
#include "rbd/series_parallel.hpp"

namespace prts::rbd {

/// The serial-parallel RBD of the mapping with routing operations:
/// series over intervals of parallel over replicas of
/// series(comm-in, compute, comm-out). Routing blocks have reliability 1
/// and are omitted (they never change the value, cf. Eq. (9)).
SpExpr build_routing_sp(const TaskChain& chain, const Platform& platform,
                        const Mapping& mapping);

/// The same routing RBD expanded as a general graph, with explicit
/// reliability-1 routing blocks between consecutive intervals (the exact
/// shape of Figure 5).
Graph build_routing_graph(const TaskChain& chain, const Platform& platform,
                          const Mapping& mapping);

/// The RBD of the mapping *without* routing operations (Figure 4): every
/// replica of interval j feeds every replica of interval j+1 through a
/// dedicated link block. Not serial-parallel in general.
Graph build_no_routing_graph(const TaskChain& chain, const Platform& platform,
                             const Mapping& mapping);

}  // namespace prts::rbd
