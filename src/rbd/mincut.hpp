// Minimal cut sets of a general RBD and the serial-parallel approximation
// built from them (Section 4, following Jensen & Bellmore [24]): the
// reliability of the mapping is approximated by an RBD made of all the
// minimal cut sets put in sequence, each cut set being its blocks in
// parallel. For coherent systems with independent components this is the
// Esary-Proschan lower bound on the true reliability.
#pragma once

#include <cstddef>
#include <vector>

#include "common/prob.hpp"
#include "rbd/graph.hpp"

namespace prts::rbd {

/// All minimal cut sets of the RBD, as sorted block-id lists. A cut set is
/// a block set whose joint failure disconnects S from D; it is minimal if
/// no proper subset is a cut. Computed as the minimal transversals of the
/// minimal path sets; worst-case exponential (the paper says as much), so
/// both the path enumeration and the number of cuts are bounded by
/// `limit`. Throws std::invalid_argument on overflow.
std::vector<std::vector<std::size_t>> minimal_cut_sets(
    const Graph& graph, std::size_t limit = 1u << 18);

/// The serial-parallel minimal-cut approximation of the RBD's reliability:
/// prod over cuts C of (1 - prod_{b in C} failure(b)).
LogReliability mincut_reliability_approximation(
    const Graph& graph, std::size_t limit = 1u << 18);

/// Same approximation from precomputed cuts (avoids re-enumeration).
LogReliability mincut_reliability_approximation(
    const Graph& graph, const std::vector<std::vector<std::size_t>>& cuts);

}  // namespace prts::rbd
