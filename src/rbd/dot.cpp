#include "rbd/dot.hpp"

#include <iomanip>
#include <sstream>

namespace prts::rbd {
namespace {

/// Escapes the few characters DOT labels cannot contain verbatim.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const Graph& graph) {
  std::ostringstream out;
  out << "digraph rbd {\n";
  out << "  rankdir=LR;\n";
  out << "  S [shape=circle];\n";
  out << "  D [shape=circle];\n";
  for (std::size_t b = 0; b < graph.block_count(); ++b) {
    out << "  b" << b << " [shape=box, label=\""
        << escape(graph.label(b)) << "\\nr=" << std::setprecision(6)
        << graph.reliability(b).reliability() << "\"];\n";
  }
  for (std::size_t entry : graph.entries()) {
    out << "  S -> b" << entry << ";\n";
  }
  for (std::size_t b = 0; b < graph.block_count(); ++b) {
    for (std::size_t succ : graph.successors(b)) {
      out << "  b" << b << " -> b" << succ << ";\n";
    }
  }
  for (std::size_t exit : graph.exits()) {
    out << "  b" << exit << " -> D;\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const SpExpr& expr) { return to_dot(expr.to_graph()); }

}  // namespace prts::rbd
