#include "rbd/mincut.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace prts::rbd {
namespace {

bool hits(const std::vector<std::size_t>& sorted_cut,
          const std::vector<std::size_t>& sorted_path) {
  // Both inputs sorted: linear-merge intersection test.
  auto c = sorted_cut.begin();
  auto p = sorted_path.begin();
  while (c != sorted_cut.end() && p != sorted_path.end()) {
    if (*c == *p) return true;
    if (*c < *p) {
      ++c;
    } else {
      ++p;
    }
  }
  return false;
}

/// True iff `cut` is a minimal transversal: every block hits some path no
/// other chosen block hits.
bool is_minimal(const std::vector<std::size_t>& cut,
                const std::vector<std::vector<std::size_t>>& paths) {
  for (std::size_t candidate : cut) {
    bool necessary = false;
    for (const auto& path : paths) {
      bool hit_by_candidate = false;
      bool hit_by_other = false;
      for (std::size_t block : path) {
        if (block == candidate) {
          hit_by_candidate = true;
        } else if (std::binary_search(cut.begin(), cut.end(), block)) {
          hit_by_other = true;
          break;
        }
      }
      if (hit_by_candidate && !hit_by_other) {
        necessary = true;
        break;
      }
    }
    if (!necessary) return false;
  }
  return true;
}

}  // namespace

std::vector<std::vector<std::size_t>> minimal_cut_sets(const Graph& graph,
                                                       std::size_t limit) {
  const auto paths = graph.minimal_paths(limit);
  if (paths.empty()) {
    if (graph.block_count() > 0 &&
        graph.operational(std::vector<bool>(graph.block_count(), true))) {
      throw std::invalid_argument(
          "minimal_cut_sets: path enumeration overflowed the limit");
    }
    return {};  // system never works; no cut needed
  }

  std::set<std::vector<std::size_t>> found;
  std::vector<std::size_t> chosen;  // kept sorted

  auto recurse = [&](auto&& self) -> void {
    // First path not hit by the chosen blocks.
    const auto unhit =
        std::find_if(paths.begin(), paths.end(),
                     [&](const auto& path) { return !hits(chosen, path); });
    if (unhit == paths.end()) {
      if (is_minimal(chosen, paths)) {
        if (found.size() >= limit) {
          throw std::invalid_argument(
              "minimal_cut_sets: more cuts than the limit");
        }
        found.insert(chosen);
      }
      return;
    }
    for (std::size_t block : *unhit) {
      const auto pos = std::lower_bound(chosen.begin(), chosen.end(), block);
      chosen.insert(pos, block);
      self(self);
      chosen.erase(std::lower_bound(chosen.begin(), chosen.end(), block));
    }
  };
  recurse(recurse);
  return {found.begin(), found.end()};
}

LogReliability mincut_reliability_approximation(
    const Graph& graph, const std::vector<std::vector<std::size_t>>& cuts) {
  const std::vector<double> failure = graph.failure_probabilities();
  LogReliability out;
  for (const auto& cut : cuts) {
    double cut_failure = 1.0;
    for (std::size_t block : cut) cut_failure *= failure[block];
    out *= LogReliability::from_failure(cut_failure);
  }
  return out;
}

LogReliability mincut_reliability_approximation(const Graph& graph,
                                                std::size_t limit) {
  return mincut_reliability_approximation(graph,
                                          minimal_cut_sets(graph, limit));
}

}  // namespace prts::rbd
