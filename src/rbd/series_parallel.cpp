#include "rbd/series_parallel.hpp"

#include <stdexcept>
#include <utility>

namespace prts::rbd {

SpExpr SpExpr::block(std::string label, LogReliability reliability) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kBlock;
  node->label = std::move(label);
  node->reliability = reliability;
  return SpExpr(std::move(node));
}

SpExpr SpExpr::series(std::vector<SpExpr> children) {
  if (children.empty()) {
    throw std::invalid_argument("SpExpr::series: no children");
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSeries;
  node->children = std::move(children);
  return SpExpr(std::move(node));
}

SpExpr SpExpr::parallel(std::vector<SpExpr> children) {
  if (children.empty()) {
    throw std::invalid_argument("SpExpr::parallel: no children");
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kParallel;
  node->children = std::move(children);
  return SpExpr(std::move(node));
}

LogReliability SpExpr::reliability() const {
  switch (node_->kind) {
    case Kind::kBlock:
      return node_->reliability;
    case Kind::kSeries: {
      LogReliability out;
      for (const SpExpr& child : node_->children) {
        out *= child.reliability();
      }
      return out;
    }
    case Kind::kParallel: {
      double group_failure = 1.0;
      for (const SpExpr& child : node_->children) {
        group_failure *= child.reliability().failure();
      }
      return LogReliability::from_failure(group_failure);
    }
  }
  return {};
}

std::size_t SpExpr::block_count() const noexcept {
  if (node_->kind == Kind::kBlock) return 1;
  std::size_t count = 0;
  for (const SpExpr& child : node_->children) count += child.block_count();
  return count;
}

namespace {

/// The frontier of a sub-expression inside the expanded graph: the blocks
/// that receive its incoming arcs and the blocks that emit its outgoing
/// arcs.
struct Frontier {
  std::vector<std::size_t> inputs;
  std::vector<std::size_t> outputs;
};

}  // namespace

Graph SpExpr::to_graph() const {
  Graph graph;
  auto build = [&graph](auto&& self, const Node& node) -> Frontier {
    switch (node.kind) {
      case Kind::kBlock: {
        const std::size_t id = graph.add_block(node.label, node.reliability);
        return Frontier{{id}, {id}};
      }
      case Kind::kSeries: {
        Frontier whole;
        Frontier previous;
        bool first = true;
        for (const SpExpr& child : node.children) {
          Frontier part = self(self, *child.node_);
          if (first) {
            whole.inputs = part.inputs;
            first = false;
          } else {
            for (std::size_t from : previous.outputs) {
              for (std::size_t to : part.inputs) graph.add_arc(from, to);
            }
          }
          previous = std::move(part);
        }
        whole.outputs = previous.outputs;
        return whole;
      }
      case Kind::kParallel: {
        Frontier whole;
        for (const SpExpr& child : node.children) {
          Frontier part = self(self, *child.node_);
          whole.inputs.insert(whole.inputs.end(), part.inputs.begin(),
                              part.inputs.end());
          whole.outputs.insert(whole.outputs.end(), part.outputs.begin(),
                               part.outputs.end());
        }
        return whole;
      }
    }
    return {};
  };
  const Frontier top = build(build, *node_);
  for (std::size_t block : top.inputs) graph.mark_entry(block);
  for (std::size_t block : top.outputs) graph.mark_exit(block);
  return graph;
}

}  // namespace prts::rbd
