// Exact reliability of a general RBD by exhaustive enumeration of block
// states: the textbook "exponential in the size of the RBD" computation
// the paper's routing operations are designed to avoid (Section 4). Kept
// as a test oracle for the fast evaluators.
#pragma once

#include <cstddef>

#include "common/prob.hpp"
#include "rbd/graph.hpp"

namespace prts::rbd {

/// Exact system reliability by summing the probability of every working
/// state (2^blocks terms). Throws std::invalid_argument when the graph has
/// more than `max_blocks` blocks (default 26, ~0.5s).
LogReliability brute_force_reliability(const Graph& graph,
                                       std::size_t max_blocks = 26);

}  // namespace prts::rbd
