// General Reliability Block Diagrams (Section 4): an acyclic oriented
// graph of blocks between a source S and a destination D. The system is
// operational iff there exists an S->D path whose blocks are all
// operational; the probability of that event is the system reliability.
//
// S and D are implicit connection points, not blocks: a block is an
// "entry" when it is connected to S and an "exit" when connected to D.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/prob.hpp"

namespace prts::rbd {

/// A mutable RBD graph. Blocks are created with add_block and wired with
/// add_arc / mark_entry / mark_exit.
class Graph {
 public:
  /// Adds a block and returns its id (consecutive from 0).
  std::size_t add_block(std::string label, LogReliability reliability);

  /// Adds the causality arc from -> to (both must be existing blocks).
  void add_arc(std::size_t from, std::size_t to);

  /// Connects S to the block.
  void mark_entry(std::size_t block);

  /// Connects the block to D.
  void mark_exit(std::size_t block);

  std::size_t block_count() const noexcept { return blocks_.size(); }
  const std::string& label(std::size_t block) const noexcept {
    return blocks_[block].label;
  }
  LogReliability reliability(std::size_t block) const noexcept {
    return blocks_[block].reliability;
  }
  /// Per-block failure probabilities (1 - r), indexed by block id.
  std::vector<double> failure_probabilities() const;

  std::span<const std::size_t> successors(std::size_t block) const noexcept {
    return blocks_[block].successors;
  }
  std::span<const std::size_t> entries() const noexcept { return entries_; }
  std::span<const std::size_t> exits() const noexcept { return exits_; }

  /// True iff S reaches D through blocks b with working[b] == true.
  /// `working` must have block_count() entries.
  bool operational(const std::vector<bool>& working) const;

  /// True when the graph is acyclic and, with all blocks working, S
  /// reaches D. Every well-formed RBD must satisfy this.
  bool validate() const;

  /// All S->D paths as sorted block-id lists (in a DAG every path is
  /// simple, hence minimal). Stops and returns an empty vector if more
  /// than `limit` paths exist, since path counts can grow exponentially.
  std::vector<std::vector<std::size_t>> minimal_paths(
      std::size_t limit = 1u << 20) const;

 private:
  struct BlockNode {
    std::string label;
    LogReliability reliability;
    std::vector<std::size_t> successors;
  };

  std::vector<BlockNode> blocks_;
  std::vector<std::size_t> entries_;
  std::vector<std::size_t> exits_;
  std::vector<bool> exit_flag_;
};

}  // namespace prts::rbd
