// Exact reliability of a replicated chain mapping *without* routing
// operations (the Figure 4 semantics whose general-RBD evaluation the
// paper calls exponential).
//
// Key observation exploited here: links are homogeneous and every replica
// of interval j sends to every replica of interval j+1, so the probability
// that a given replica of interval j+1 receives the data depends only on
// *how many* replicas of interval j hold a correct result, not on which
// ones. The distribution of that count is a sufficient statistic, and the
// reliability follows from a forward dynamic program over count
// distributions in O(sum_j k_j * k_{j+1}) — polynomial, answering the
// paper's future-work question for its own chain-shaped systems.
#pragma once

#include "common/prob.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts::rbd {

/// Exact end-to-end reliability of the mapping when replicas communicate
/// directly (all-to-all between consecutive intervals) instead of through
/// routing operations. Environment communications (o_0 and the last
/// interval's output) are folded into the boundary compute blocks, like
/// Eq. (9) does.
LogReliability no_routing_reliability(const TaskChain& chain,
                                      const Platform& platform,
                                      const Mapping& mapping) noexcept;

}  // namespace prts::rbd
