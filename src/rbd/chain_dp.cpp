#include "rbd/chain_dp.hpp"

#include <cmath>
#include <vector>

namespace prts::rbd {

LogReliability no_routing_reliability(const TaskChain& chain,
                                      const Platform& platform,
                                      const Mapping& mapping) noexcept {
  const IntervalPartition& part = mapping.partition();
  const std::size_t m = part.interval_count();

  // dist[s] = P(exactly s replicas of the current interval hold a correct
  // result). Before interval 0 the environment acts as a single perfectly
  // reliable sender over a perfect link (o_0 = 0): P(s = 1) = 1.
  std::vector<double> dist{0.0, 1.0};

  for (std::size_t j = 0; j < m; ++j) {
    const auto procs = mapping.processors(j);
    const double work = part.work(chain, j);

    // Failure probability of one incoming transfer of the data feeding
    // interval j (0 for the first interval: data comes from the sensor).
    const double link_failure =
        j == 0 ? 0.0
               : failure_from_rate(
                     platform.link_failure_rate(),
                     platform.comm_time(part.out_size(chain, j - 1)));

    // Environment output of the last interval is folded into its compute
    // failure, mirroring Eq. (9)'s r_comm,m factor.
    const double env_out_failure =
        j + 1 == m ? failure_from_rate(
                         platform.link_failure_rate(),
                         platform.comm_time(part.out_size(chain, j)))
                   : 0.0;

    // Per-replica compute failure (with folded environment output):
    // 1 - r = fc + (1 - fc) * fe, assembled without cancellation.
    std::vector<double> compute_failure;
    compute_failure.reserve(procs.size());
    for (std::size_t u : procs) {
      const double fc = failure_from_rate(platform.failure_rate(u),
                                          work / platform.speed(u));
      compute_failure.push_back(fc + (1.0 - fc) * env_out_failure);
    }

    // Transition: given s senders, replica v holds a correct result with
    // failure branch_fail(v, s) = fcv + (1 - fcv) * link_failure^s
    // (cancellation-free). Convolve the independent non-identical
    // Bernoullis into the next count distribution (Poisson binomial).
    std::vector<double> next(procs.size() + 1, 0.0);
    for (std::size_t s = 0; s < dist.size(); ++s) {
      if (dist[s] == 0.0) continue;
      const double reach_failure =
          s == 0 ? 1.0 : std::pow(link_failure, static_cast<double>(s));
      std::vector<double> poisson{1.0};
      poisson.reserve(procs.size() + 1);
      for (std::size_t v = 0; v < procs.size(); ++v) {
        const double fail =
            compute_failure[v] + (1.0 - compute_failure[v]) * reach_failure;
        const double ok = 1.0 - fail;
        std::vector<double> grown(poisson.size() + 1, 0.0);
        for (std::size_t t = 0; t < poisson.size(); ++t) {
          grown[t] += poisson[t] * fail;
          grown[t + 1] += poisson[t] * ok;
        }
        poisson = std::move(grown);
      }
      for (std::size_t t = 0; t < poisson.size(); ++t) {
        next[t] += dist[s] * poisson[t];
      }
    }
    dist = std::move(next);
  }

  // The pipeline fails iff no replica of the last interval delivered.
  return LogReliability::from_failure(dist[0]);
}

}  // namespace prts::rbd
