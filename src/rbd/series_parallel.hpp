// Serial-parallel RBDs (Section 4): the routing operations inserted
// between intervals guarantee the mapping's RBD is serial-parallel, so its
// reliability is a product/complement expression computable in time linear
// in the number of blocks. This module represents SP structures explicitly
// as trees.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/prob.hpp"
#include "rbd/graph.hpp"

namespace prts::rbd {

/// An immutable serial-parallel reliability expression (value type; nodes
/// are shared, the tree is never mutated after construction).
class SpExpr {
 public:
  /// A single block leaf.
  static SpExpr block(std::string label, LogReliability reliability);

  /// Series composition: every child must function.
  static SpExpr series(std::vector<SpExpr> children);

  /// Parallel composition: at least one child must function.
  static SpExpr parallel(std::vector<SpExpr> children);

  /// System reliability, computed bottom-up in log space, O(blocks).
  LogReliability reliability() const;

  /// Number of block leaves in the expression.
  std::size_t block_count() const noexcept;

  /// Expands the expression into an equivalent general RBD graph (used to
  /// cross-check the linear-time evaluation against the exact oracles).
  Graph to_graph() const;

 private:
  enum class Kind : unsigned char { kBlock, kSeries, kParallel };

  struct Node {
    Kind kind;
    std::string label;             // blocks only
    LogReliability reliability;    // blocks only
    std::vector<SpExpr> children;  // series/parallel only
  };

  explicit SpExpr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace prts::rbd
