#include "rbd/bdd.hpp"

#include <algorithm>
#include <stdexcept>

namespace prts::rbd {
namespace {

std::size_t mix(std::size_t seed, std::size_t value) noexcept {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::size_t BddManager::UniqueKeyHash::operator()(
    const UniqueKey& key) const noexcept {
  std::size_t h = key.level;
  h = mix(h, key.lo);
  h = mix(h, key.hi);
  return h;
}

std::size_t BddManager::ApplyKeyHash::operator()(
    const ApplyKey& key) const noexcept {
  std::size_t h = key.is_and ? 0x51ed270b : 0x2545f491;
  h = mix(h, key.a);
  h = mix(h, key.b);
  return h;
}

BddManager::BddManager() {
  nodes_.push_back(Node{kTerminalLevel, kFalse, kFalse});  // 0: false
  nodes_.push_back(Node{kTerminalLevel, kTrue, kTrue});    // 1: true
}

BddManager::NodeId BddManager::make(unsigned level, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;  // reduction rule
  const UniqueKey key{level, lo, hi};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  nodes_.push_back(Node{level, lo, hi});
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  unique_.emplace(key, id);
  return id;
}

BddManager::NodeId BddManager::var(unsigned level) {
  return make(level, kFalse, kTrue);
}

BddManager::NodeId BddManager::apply(bool is_and, NodeId a, NodeId b) {
  if (is_and) {
    if (a == kFalse || b == kFalse) return kFalse;
    if (a == kTrue) return b;
    if (b == kTrue) return a;
  } else {
    if (a == kTrue || b == kTrue) return kTrue;
    if (a == kFalse) return b;
    if (b == kFalse) return a;
  }
  if (a == b) return a;
  if (a > b) std::swap(a, b);  // both operations are commutative

  const ApplyKey key{is_and, a, b};
  const auto it = apply_cache_.find(key);
  if (it != apply_cache_.end()) return it->second;

  const Node node_a = nodes_[a];
  const Node node_b = nodes_[b];
  const unsigned level = std::min(node_a.level, node_b.level);
  const NodeId a_lo = node_a.level == level ? node_a.lo : a;
  const NodeId a_hi = node_a.level == level ? node_a.hi : a;
  const NodeId b_lo = node_b.level == level ? node_b.lo : b;
  const NodeId b_hi = node_b.level == level ? node_b.hi : b;

  const NodeId result = make(level, apply(is_and, a_lo, b_lo),
                             apply(is_and, a_hi, b_hi));
  apply_cache_.emplace(key, result);
  return result;
}

BddManager::NodeId BddManager::apply_and(NodeId a, NodeId b) {
  return apply(true, a, b);
}

BddManager::NodeId BddManager::apply_or(NodeId a, NodeId b) {
  return apply(false, a, b);
}

double BddManager::failure_probability(
    NodeId root, std::span<const double> var_failure) const {
  std::unordered_map<NodeId, double> memo;
  // Q(node) = P(node evaluates to 0): small quantities only, so the
  // mixed-sign cancellation of computing P(=1) near 1.0 never occurs.
  auto q = [&](auto&& self, NodeId id) -> double {
    if (id == kFalse) return 1.0;
    if (id == kTrue) return 0.0;
    const auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    const Node& node = nodes_[id];
    const double f = var_failure[node.level];
    const double value = (1.0 - f) * self(self, node.hi) + f * self(self, node.lo);
    memo.emplace(id, value);
    return value;
  };
  return q(q, root);
}

LogReliability bdd_reliability(const Graph& graph, std::size_t path_limit) {
  const auto paths = graph.minimal_paths(path_limit);
  if (paths.empty()) {
    if (graph.block_count() > 0 &&
        graph.operational(std::vector<bool>(graph.block_count(), true))) {
      throw std::invalid_argument(
          "bdd_reliability: path enumeration overflowed the limit");
    }
    return LogReliability::from_failure(1.0);  // no S->D path at all
  }
  BddManager manager;
  BddManager::NodeId structure = BddManager::kFalse;
  for (const auto& path : paths) {
    BddManager::NodeId conj = BddManager::kTrue;
    for (std::size_t block : path) {
      conj = manager.apply_and(conj,
                               manager.var(static_cast<unsigned>(block)));
    }
    structure = manager.apply_or(structure, conj);
  }
  const std::vector<double> failures = graph.failure_probabilities();
  return LogReliability::from_failure(
      manager.failure_probability(structure, failures));
}

}  // namespace prts::rbd
