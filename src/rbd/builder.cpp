#include "rbd/builder.hpp"

#include <string>
#include <vector>

namespace prts::rbd {
namespace {

std::string compute_label(std::size_t interval, std::size_t proc) {
  std::string label = "I";
  label += std::to_string(interval);
  label += "/P";
  label += std::to_string(proc);
  return label;
}

std::string comm_label(const char* prefix, std::size_t index,
                       const char* middle, std::size_t proc) {
  std::string label = prefix;
  label += std::to_string(index);
  label += middle;
  label += std::to_string(proc);
  return label;
}

LogReliability compute_reliability(const TaskChain& chain,
                                   const Platform& platform,
                                   const IntervalPartition& part,
                                   std::size_t j, std::size_t proc) {
  return LogReliability::exp_failure(
      platform.failure_rate(proc),
      part.work(chain, j) / platform.speed(proc));
}

LogReliability link_reliability(const Platform& platform, double data) {
  return LogReliability::exp_failure(platform.link_failure_rate(),
                                     platform.comm_time(data));
}

}  // namespace

SpExpr build_routing_sp(const TaskChain& chain, const Platform& platform,
                        const Mapping& mapping) {
  const IntervalPartition& part = mapping.partition();
  std::vector<SpExpr> stages;
  stages.reserve(part.interval_count());
  for (std::size_t j = 0; j < part.interval_count(); ++j) {
    const double in_size = j == 0 ? 0.0 : part.out_size(chain, j - 1);
    const double out_size = part.out_size(chain, j);
    std::vector<SpExpr> branches;
    for (std::size_t u : mapping.processors(j)) {
      std::vector<SpExpr> serial_blocks;
      if (in_size > 0.0) {
        serial_blocks.push_back(
            SpExpr::block(comm_label("o", j - 1, "->P", u),
                          link_reliability(platform, in_size)));
      }
      serial_blocks.push_back(SpExpr::block(
          compute_label(j, u), compute_reliability(chain, platform, part,
                                                   j, u)));
      if (out_size > 0.0) {
        serial_blocks.push_back(
            SpExpr::block(comm_label("o", j, "<-P", u),
                          link_reliability(platform, out_size)));
      }
      branches.push_back(SpExpr::series(std::move(serial_blocks)));
    }
    stages.push_back(SpExpr::parallel(std::move(branches)));
  }
  return SpExpr::series(std::move(stages));
}

Graph build_routing_graph(const TaskChain& chain, const Platform& platform,
                          const Mapping& mapping) {
  const IntervalPartition& part = mapping.partition();
  Graph graph;
  // Block chain per replica of each stage; routers join the stages.
  std::size_t previous_router = 0;
  bool has_previous_router = false;

  for (std::size_t j = 0; j < part.interval_count(); ++j) {
    const double in_size = j == 0 ? 0.0 : part.out_size(chain, j - 1);
    const double out_size = part.out_size(chain, j);
    std::vector<std::size_t> tails;
    for (std::size_t u : mapping.processors(j)) {
      std::size_t head;
      std::size_t tail;
      const std::size_t compute = graph.add_block(
          compute_label(j, u),
          compute_reliability(chain, platform, part, j, u));
      head = compute;
      tail = compute;
      if (in_size > 0.0) {
        const std::size_t comm_in =
            graph.add_block(comm_label("o", j - 1, "->P", u),
                            link_reliability(platform, in_size));
        graph.add_arc(comm_in, compute);
        head = comm_in;
      }
      if (out_size > 0.0 && j + 1 < part.interval_count()) {
        const std::size_t comm_out =
            graph.add_block(comm_label("o", j, "<-P", u),
                            link_reliability(platform, out_size));
        graph.add_arc(compute, comm_out);
        tail = comm_out;
      } else if (out_size > 0.0) {
        // Last interval with a non-zero environment output: its link block
        // terminates the branch.
        const std::size_t comm_out = graph.add_block(
            comm_label("o", j, "->env", u),
            link_reliability(platform, out_size));
        graph.add_arc(compute, comm_out);
        tail = comm_out;
      }
      if (has_previous_router) {
        graph.add_arc(previous_router, head);
      } else {
        graph.mark_entry(head);
      }
      tails.push_back(tail);
    }
    if (j + 1 < part.interval_count()) {
      std::string router_label = "R";
      router_label += std::to_string(j);
      const std::size_t router = graph.add_block(std::move(router_label),
                                                 LogReliability::certain());
      for (std::size_t tail : tails) graph.add_arc(tail, router);
      previous_router = router;
      has_previous_router = true;
    } else {
      for (std::size_t tail : tails) graph.mark_exit(tail);
    }
  }
  return graph;
}

Graph build_no_routing_graph(const TaskChain& chain, const Platform& platform,
                             const Mapping& mapping) {
  const IntervalPartition& part = mapping.partition();
  Graph graph;
  std::vector<std::size_t> previous_computes;

  for (std::size_t j = 0; j < part.interval_count(); ++j) {
    const double in_size = j == 0 ? 0.0 : part.out_size(chain, j - 1);
    std::vector<std::size_t> computes;
    for (std::size_t v : mapping.processors(j)) {
      const std::size_t compute = graph.add_block(
          compute_label(j, v),
          compute_reliability(chain, platform, part, j, v));
      if (j == 0) {
        graph.mark_entry(compute);
      } else {
        for (std::size_t k = 0; k < previous_computes.size(); ++k) {
          const std::size_t sender = previous_computes[k];
          const std::size_t link = graph.add_block(
              comm_label("o", j - 1, "/L", k) + "," + std::to_string(v),
              link_reliability(platform, in_size));
          graph.add_arc(sender, link);
          graph.add_arc(link, compute);
        }
      }
      computes.push_back(compute);
    }
    if (j + 1 == part.interval_count()) {
      const double out_size = part.out_size(chain, j);
      if (out_size > 0.0) {
        for (std::size_t compute : computes) {
          const std::size_t env_link = graph.add_block(
              comm_label("o", j, "->env#", compute),
              link_reliability(platform, out_size));
          graph.add_arc(compute, env_link);
          graph.mark_exit(env_link);
        }
      } else {
        for (std::size_t compute : computes) graph.mark_exit(compute);
      }
    }
    previous_computes = std::move(computes);
  }
  return graph;
}

}  // namespace prts::rbd
