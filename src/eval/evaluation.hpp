// Evaluation of a given mapping (Section 4): reliability via the
// serial-parallel RBD with routing operations (Eq. (9)), expected and
// worst-case computation times of replicated intervals (Eqs. (3)-(4)),
// and the four latency/period objectives (Eqs. (5)-(8)).
//
// All reliability values are carried as LogReliability; see
// common/prob.hpp for the numerical-stability rationale.
#pragma once

#include <cstddef>
#include <span>

#include "common/prob.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// Expected computation time of an interval of weight `work` replicated on
/// `procs` (Eq. (3)): the completion time of the fastest surviving replica,
/// conditioned on at least one replica surviving. Returns +inf when no
/// replica can succeed.
double expected_computation_time(const Platform& platform, double work,
                                 std::span<const std::size_t> procs) noexcept;

/// Worst-case computation time of an interval of weight `work` replicated
/// on `procs` (Eq. (4)): the completion time of the slowest replica.
double worst_computation_time(const Platform& platform, double work,
                              std::span<const std::size_t> procs) noexcept;

/// Reliability of one replica branch of interval j (the serial block
/// comm-in -> compute -> comm-out of Figure 5): Eq. (9) inner term
/// r_comm,j-1 * r_u,Ij * r_comm,j. `in_size`/`out_size` are the data sizes
/// of the incoming and outgoing communications (0 disables the hop).
LogReliability branch_reliability(const Platform& platform, std::size_t proc,
                                  double work, double in_size,
                                  double out_size) noexcept;

/// Reliability of interval j replicated on `procs` (Eq. (9) factor):
/// 1 - prod_u (1 - branch reliability on u).
LogReliability interval_reliability(const Platform& platform,
                                    std::span<const std::size_t> procs,
                                    double work, double in_size,
                                    double out_size) noexcept;

/// Reliability of a whole mapping (Eq. (9)). Routing operations have
/// reliability 1 and do not appear.
LogReliability mapping_reliability(const TaskChain& chain,
                                   const Platform& platform,
                                   const Mapping& mapping) noexcept;

/// All objectives of Section 2.6 for a mapping, computed in one pass.
struct MappingMetrics {
  LogReliability reliability;      ///< Eq. (9)
  double failure = 0.0;            ///< 1 - reliability, full precision
  double expected_latency = 0.0;   ///< EL, Eq. (5)
  double worst_latency = 0.0;      ///< WL, Eq. (7)
  double expected_period = 0.0;    ///< EP, Eq. (6)
  double worst_period = 0.0;       ///< WP, Eq. (8)
  std::size_t interval_count = 0;  ///< m
  std::size_t processors_used = 0;
  double replication_level = 0.0;  ///< processors_used / m

  /// Exact (bitwise on the doubles) equality — what the service cache's
  /// bit-identical-replay guarantee is stated in terms of.
  bool operator==(const MappingMetrics&) const noexcept = default;
};

/// Evaluates every objective for a mapping. The mapping is assumed valid
/// for the platform (see Mapping::validate).
MappingMetrics evaluate(const TaskChain& chain, const Platform& platform,
                        const Mapping& mapping) noexcept;

/// On homogeneous platforms expected and worst-case coincide; these
/// helpers compute the period/latency of a bare partition there, where
/// neither depends on the processor assignment (Section 5.5).
double homogeneous_partition_latency(const TaskChain& chain,
                                     const Platform& platform,
                                     const IntervalPartition& partition)
    noexcept;
double homogeneous_partition_period(const TaskChain& chain,
                                    const Platform& platform,
                                    const IntervalPartition& partition)
    noexcept;

}  // namespace prts
