// Sensitivity of the mapping reliability to the component failure rates:
// the partial derivatives of log r (Eq. (9)) with respect to each
// processor's lambda_u and the link lambda_l. A reliability engineer uses
// these to find which component dominates the system failure probability
// and where hardening (or an extra replica) pays off most.
//
// Closed form: with branch failure f_{j,u} = 1 - e^{-x_{j,u}} and
// x_{j,u} = lambda_u W_j/s_u + lambda_l (o_in + o_out)/b, each interval
// contributes log(1 - prod_u f_{j,u}) and
//   d log r / d lambda_u =
//     - (W_j/s_u) (1 - f_{j,u}) (prod_{v != u} f_{j,v}) / (1 - F_j).
#pragma once

#include <cstddef>
#include <vector>

#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// All partial derivatives of log reliability; entries are <= 0 (raising
/// any failure rate can only hurt).
struct SensitivityReport {
  /// d log r / d lambda_u per processor (0 for unused processors).
  std::vector<double> processor;

  /// d log r / d lambda_l (all links share one rate).
  double link = 0.0;

  /// Index of the processor with the most negative derivative — the most
  /// failure-critical replica. processor.size() when no processor is used.
  std::size_t most_critical_processor() const noexcept;
};

/// Computes the exact derivatives for a mapping under Eq. (9).
SensitivityReport reliability_sensitivity(const TaskChain& chain,
                                          const Platform& platform,
                                          const Mapping& mapping);

}  // namespace prts
