// Energy consumption of a mapping — the additional criterion the paper's
// conclusion names for future work ("resource costs, and power
// consumption"). Classic CMOS model (cf. the paper's reference [39],
// Zhu/Melhem/Mosse): a processor busy for t time units at speed s draws
// static_power + dynamic_coefficient * s^exponent per time unit; a link
// transfer of duration t draws link_power per time unit. Replication
// multiplies energy: every replica computes (and communicates) every
// data set, which is exactly the reliability/energy tension the
// conclusion points at.
#pragma once

#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts {

/// Power-model coefficients.
struct EnergyModel {
  double static_power = 0.1;         ///< per busy time unit, any speed
  double dynamic_coefficient = 1.0;  ///< multiplies speed^exponent
  double exponent = 3.0;             ///< the CMOS alpha (~2..3)
  double link_power = 0.5;           ///< per transfer time unit per link
};

/// Breakdown of the per-data-set energy of a mapping.
struct EnergyMetrics {
  double computation = 0.0;    ///< sum over replicas of busy-time power
  double communication = 0.0;  ///< sum over replica transfers (in + out)
  double total() const noexcept { return computation + communication; }
};

/// Energy consumed to push one data set through the mapping, with the
/// routing communication scheme (each replica receives its input once
/// and emits its output once, as in Eq. (9)'s branches).
EnergyMetrics mapping_energy(const TaskChain& chain, const Platform& platform,
                             const Mapping& mapping,
                             const EnergyModel& model = {});

}  // namespace prts
