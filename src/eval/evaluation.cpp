#include "eval/evaluation.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace prts {
namespace {

/// Data size entering interval j: the output of the previous interval, or
/// 0 for the first interval (o_0 = 0, hence r_comm,0 = 1).
double incoming_size(const TaskChain& chain, const IntervalPartition& part,
                     std::size_t j) noexcept {
  return j == 0 ? 0.0 : part.out_size(chain, j - 1);
}

}  // namespace

double expected_computation_time(const Platform& platform, double work,
                                 std::span<const std::size_t> procs) noexcept {
  // Eq. (3): processors ordered fastest first; the u-th term is the case
  // where the u-1 faster replicas fail and the u-th succeeds, conditioned
  // on at least one success.
  std::vector<std::size_t> order(procs.begin(), procs.end());
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (platform.speed(a) != platform.speed(b)) {
                return platform.speed(a) > platform.speed(b);
              }
              return a < b;
            });
  double numerator = 0.0;
  double all_fail = 1.0;  // prod of failure probabilities so far
  for (std::size_t u : order) {
    const double duration = work / platform.speed(u);
    const double fail = failure_from_rate(platform.failure_rate(u), duration);
    numerator += (1.0 / platform.speed(u)) * (1.0 - fail) * all_fail;
    all_fail *= fail;
  }
  const double denominator = 1.0 - all_fail;
  if (!(denominator > 0.0)) {
    return std::numeric_limits<double>::infinity();
  }
  return work * numerator / denominator;
}

double worst_computation_time(const Platform& platform, double work,
                              std::span<const std::size_t> procs) noexcept {
  double slowest = std::numeric_limits<double>::infinity();
  for (std::size_t u : procs) slowest = std::min(slowest, platform.speed(u));
  return work / slowest;
}

LogReliability branch_reliability(const Platform& platform, std::size_t proc,
                                  double work, double in_size,
                                  double out_size) noexcept {
  const double lambda_link = platform.link_failure_rate();
  LogReliability r = LogReliability::exp_failure(
      platform.failure_rate(proc), work / platform.speed(proc));
  if (in_size > 0.0) {
    r *= LogReliability::exp_failure(lambda_link,
                                     platform.comm_time(in_size));
  }
  if (out_size > 0.0) {
    r *= LogReliability::exp_failure(lambda_link,
                                     platform.comm_time(out_size));
  }
  return r;
}

LogReliability interval_reliability(const Platform& platform,
                                    std::span<const std::size_t> procs,
                                    double work, double in_size,
                                    double out_size) noexcept {
  double group_failure = 1.0;
  for (std::size_t u : procs) {
    group_failure *=
        branch_reliability(platform, u, work, in_size, out_size).failure();
  }
  return LogReliability::from_failure(group_failure);
}

LogReliability mapping_reliability(const TaskChain& chain,
                                   const Platform& platform,
                                   const Mapping& mapping) noexcept {
  const IntervalPartition& part = mapping.partition();
  LogReliability total;
  for (std::size_t j = 0; j < part.interval_count(); ++j) {
    total *= interval_reliability(platform, mapping.processors(j),
                                  part.work(chain, j),
                                  incoming_size(chain, part, j),
                                  part.out_size(chain, j));
  }
  return total;
}

MappingMetrics evaluate(const TaskChain& chain, const Platform& platform,
                        const Mapping& mapping) noexcept {
  const IntervalPartition& part = mapping.partition();
  MappingMetrics metrics;
  metrics.interval_count = part.interval_count();
  metrics.processors_used = mapping.processors_used();
  metrics.replication_level = mapping.replication_level();

  LogReliability reliability;
  double expected_latency = 0.0;
  double worst_latency = 0.0;
  double expected_period = 0.0;
  double worst_period = 0.0;
  for (std::size_t j = 0; j < part.interval_count(); ++j) {
    const double work = part.work(chain, j);
    const double out = part.out_size(chain, j);
    const auto procs = mapping.processors(j);

    reliability *= interval_reliability(platform, procs, work,
                                        incoming_size(chain, part, j), out);

    const double ec = expected_computation_time(platform, work, procs);
    const double wc = worst_computation_time(platform, work, procs);
    const double comm = platform.comm_time(out);
    expected_latency += ec + comm;
    worst_latency += wc + comm;
    expected_period = std::max({expected_period, ec, comm});
    worst_period = std::max({worst_period, wc, comm});
  }
  metrics.reliability = reliability;
  metrics.failure = reliability.failure();
  metrics.expected_latency = expected_latency;
  metrics.worst_latency = worst_latency;
  metrics.expected_period = expected_period;
  metrics.worst_period = worst_period;
  return metrics;
}

double homogeneous_partition_latency(
    const TaskChain& chain, const Platform& platform,
    const IntervalPartition& partition) noexcept {
  const double speed = platform.speed(0);
  double latency = 0.0;
  for (std::size_t j = 0; j < partition.interval_count(); ++j) {
    latency += partition.work(chain, j) / speed +
               platform.comm_time(partition.out_size(chain, j));
  }
  return latency;
}

double homogeneous_partition_period(
    const TaskChain& chain, const Platform& platform,
    const IntervalPartition& partition) noexcept {
  const double speed = platform.speed(0);
  double period = 0.0;
  for (std::size_t j = 0; j < partition.interval_count(); ++j) {
    period = std::max({period, partition.work(chain, j) / speed,
                       platform.comm_time(partition.out_size(chain, j))});
  }
  return period;
}

}  // namespace prts
