#include "eval/sensitivity.hpp"

#include <cmath>

#include "eval/evaluation.hpp"

namespace prts {

std::size_t SensitivityReport::most_critical_processor() const noexcept {
  std::size_t best = processor.size();
  for (std::size_t u = 0; u < processor.size(); ++u) {
    if (processor[u] < 0.0 &&
        (best == processor.size() || processor[u] < processor[best])) {
      best = u;
    }
  }
  return best;
}

SensitivityReport reliability_sensitivity(const TaskChain& chain,
                                          const Platform& platform,
                                          const Mapping& mapping) {
  const IntervalPartition& part = mapping.partition();
  SensitivityReport report;
  report.processor.assign(platform.processor_count(), 0.0);

  for (std::size_t j = 0; j < part.interval_count(); ++j) {
    const double work = part.work(chain, j);
    const double in_size = j == 0 ? 0.0 : part.out_size(chain, j - 1);
    const double out_size = part.out_size(chain, j);
    const double comm_duration =
        platform.comm_time(in_size) + platform.comm_time(out_size);
    const auto procs = mapping.processors(j);

    // Branch failures and their product (the interval failure F_j).
    std::vector<double> branch_failure;
    branch_failure.reserve(procs.size());
    double interval_failure = 1.0;
    for (std::size_t u : procs) {
      const double f =
          branch_reliability(platform, u, work, in_size, out_size)
              .failure();
      branch_failure.push_back(f);
      interval_failure *= f;
    }
    const double stage_reliability = 1.0 - interval_failure;
    if (!(stage_reliability > 0.0)) continue;  // derivative undefined: -inf

    for (std::size_t idx = 0; idx < procs.size(); ++idx) {
      const std::size_t u = procs[idx];
      // prod of the other branches' failures.
      double others = 1.0;
      for (std::size_t v = 0; v < procs.size(); ++v) {
        if (v != idx) others *= branch_failure[v];
      }
      const double branch_reliability_value = 1.0 - branch_failure[idx];
      const double common =
          branch_reliability_value * others / stage_reliability;
      report.processor[u] -= (work / platform.speed(u)) * common;
      report.link -= comm_duration * common;
    }
  }
  return report;
}

}  // namespace prts
