#include "eval/energy.hpp"

#include <cmath>

namespace prts {

EnergyMetrics mapping_energy(const TaskChain& chain, const Platform& platform,
                             const Mapping& mapping,
                             const EnergyModel& model) {
  const IntervalPartition& part = mapping.partition();
  EnergyMetrics metrics;
  for (std::size_t j = 0; j < part.interval_count(); ++j) {
    const double work = part.work(chain, j);
    const double in_size = j == 0 ? 0.0 : part.out_size(chain, j - 1);
    const double out_size = part.out_size(chain, j);
    for (std::size_t u : mapping.processors(j)) {
      const double speed = platform.speed(u);
      const double busy = work / speed;
      metrics.computation +=
          busy * (model.static_power +
                  model.dynamic_coefficient * std::pow(speed, model.exponent));
      metrics.communication +=
          (platform.comm_time(in_size) + platform.comm_time(out_size)) *
          model.link_power;
    }
  }
  return metrics;
}

}  // namespace prts
