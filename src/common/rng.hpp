// Deterministic pseudo-random number generation.
//
// The experiment harness must be bit-reproducible across platforms and
// standard-library versions, so we implement both the generator
// (xoshiro256**, public-domain algorithm by Blackman & Vigna) and the
// distributions ourselves instead of relying on <random>'s
// implementation-defined distributions.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace prts {

/// SplitMix64 step: used to expand a single 64-bit seed into a full
/// xoshiro256** state. Also usable standalone as a cheap mixing function.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** generator: fast, 256-bit state, passes BigCrush.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly random bits.
  result_type operator()() noexcept;

  /// Uniform integer in the inclusive range [lo, hi] (unbiased via
  /// rejection sampling). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [0, 1) with 53 bits of precision.
  double uniform01() noexcept;

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform_real(double lo, double hi) noexcept;

  /// Exponential deviate with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Derives an independent child generator; useful to hand one stream per
  /// worker thread or per experiment instance without correlation.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace prts
