#include "common/prob.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace prts {

LogReliability LogReliability::exp_failure(double lambda,
                                           double duration) noexcept {
  return from_log(-lambda * duration);
}

LogReliability LogReliability::from_reliability(double r) noexcept {
  r = std::clamp(r, 0.0, 1.0);
  return from_log(std::log(r));
}

LogReliability LogReliability::from_failure(double f) noexcept {
  f = std::clamp(f, 0.0, 1.0);
  return from_log(std::log1p(-f));
}

LogReliability LogReliability::from_log(double log_r) noexcept {
  LogReliability out;
  out.log_r_ = std::min(log_r, 0.0);
  return out;
}

double LogReliability::reliability() const noexcept {
  return std::exp(log_r_);
}

double LogReliability::failure() const noexcept { return -std::expm1(log_r_); }

LogReliability LogReliability::operator*(LogReliability other) const noexcept {
  return from_log(log_r_ + other.log_r_);
}

LogReliability& LogReliability::operator*=(LogReliability other) noexcept {
  log_r_ = std::min(log_r_ + other.log_r_, 0.0);
  return *this;
}

double failure_from_rate(double lambda, double duration) noexcept {
  return -std::expm1(-lambda * duration);
}

LogReliability parallel_from_failures(
    std::span<const double> branch_failures) noexcept {
  if (branch_failures.empty()) {
    // No branch at all: the stage cannot function.
    return LogReliability::from_log(
        -std::numeric_limits<double>::infinity());
  }
  double group_failure = 1.0;
  for (double f : branch_failures) {
    group_failure *= std::clamp(f, 0.0, 1.0);
  }
  return LogReliability::from_failure(group_failure);
}

LogReliability parallel_identical(double branch_failure,
                                  unsigned replicas) noexcept {
  if (replicas == 0) {
    return LogReliability::from_log(
        -std::numeric_limits<double>::infinity());
  }
  const double f = std::clamp(branch_failure, 0.0, 1.0);
  return LogReliability::from_failure(std::pow(f, replicas));
}

LogReliability series(std::span<const LogReliability> parts) noexcept {
  LogReliability out;
  for (LogReliability part : parts) out *= part;
  return out;
}

}  // namespace prts
