// Streaming statistics and confidence intervals for the Monte-Carlo
// simulator and the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace prts {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  /// Mean of the observations so far (0 when empty).
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const noexcept;
  /// Square root of variance().
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A two-sided confidence interval [lo, hi].
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;

  bool contains(double x) const noexcept { return lo <= x && x <= hi; }
  double width() const noexcept { return hi - lo; }
};

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials`, at confidence given by the normal quantile `z` (1.96 ~ 95%,
/// 3.29 ~ 99.9%). Well-behaved for proportions near 0 or 1, which is the
/// common case for reliability estimation. Requires trials > 0.
ConfidenceInterval wilson_interval(std::size_t successes, std::size_t trials,
                         double z = 1.96) noexcept;

/// Normal-approximation interval mean +/- z * stddev/sqrt(n) for the mean of
/// the accumulated observations. Degenerate (point) interval when n < 2.
ConfidenceInterval mean_interval(const RunningStats& stats, double z = 1.96) noexcept;

/// Arithmetic mean of a vector (0 when empty).
double mean_of(const std::vector<double>& xs) noexcept;

/// Geometric mean of strictly positive values (0 when empty); computed in
/// log space to avoid overflow/underflow.
double geometric_mean_of(const std::vector<double>& xs) noexcept;

/// Median (by copy + nth_element); 0 when empty.
double median_of(std::vector<double> xs) noexcept;

}  // namespace prts
