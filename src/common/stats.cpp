#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace prts {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

ConfidenceInterval wilson_interval(std::size_t successes, std::size_t trials,
                         double z) noexcept {
  const auto n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

ConfidenceInterval mean_interval(const RunningStats& stats, double z) noexcept {
  if (stats.count() < 2) return {stats.mean(), stats.mean()};
  const double half =
      z * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  return {stats.mean() - half, stats.mean() + half};
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  RunningStats acc;
  for (double x : xs) acc.add(x);
  return acc.mean();
}

double geometric_mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double median_of(std::vector<double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  if (xs.size() % 2 == 1) return xs[mid];
  const double hi = xs[mid];
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid - 1),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (xs[mid - 1] + hi);
}

}  // namespace prts
