#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>

namespace prts {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    if (stopping_) return;  // idempotent (second call, or after dtor race)
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> result = packaged.get_future();
  {
    const std::lock_guard<obs::ProfiledMutex> lock(mutex_);
    if (stopping_) {
      // Submit-after-shutdown used to be undefined behavior (a task
      // pushed on a drained queue with no workers); report it through
      // the future instead.
      std::promise<void> broken;
      broken.set_exception(std::make_exception_ptr(
          std::runtime_error("ThreadPool: submit after shutdown")));
      return broken.get_future();
    }
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return result;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<obs::ProfiledMutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // At least one chunk even with zero workers (shut-down pool), so the
  // submit-after-shutdown error surfaces instead of a silent no-op.
  const std::size_t chunks =
      std::min(count, std::max<std::size_t>(1, 4 * thread_count()));
  std::atomic<std::size_t> next_index{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next_index.fetch_add(1);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& future : futures) future.get();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_each_index(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  ThreadPool pool;
  pool.parallel_for(count, fn);
}

}  // namespace prts
