// A small fixed-size thread pool with a parallel_for helper.
//
// The optimization algorithms themselves are sequential (they are cheap);
// parallelism is used to run many Monte-Carlo trials and many experiment
// instances concurrently, which is an embarrassingly parallel outer loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "obs/profiler.hpp"

namespace prts {

/// Fixed-size pool of worker threads consuming a shared FIFO task queue.
class ThreadPool {
 public:
  /// Starts `threads` workers (hardware concurrency when 0).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks and joins the workers (shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Stops accepting work, drains the queued tasks and joins the
  /// workers. Idempotent; after it returns, submit() yields exceptional
  /// futures instead of undefined behavior.
  void shutdown();

  /// Enqueues a task; the returned future resolves when it has run. On
  /// a pool that has been shut down the task is NOT run — the future
  /// holds a std::runtime_error instead.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, count) across the pool, in contiguous chunks,
  /// and blocks until every index has been processed. fn must be safe to
  /// call concurrently for distinct indices. Exceptions thrown by fn
  /// propagate (the first one observed is rethrown).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Attaches a contention probe to the queue mutex (see
  /// obs::ProfiledMutex). The probe must outlive the pool; nullptr
  /// detaches.
  void attach_mutex_probe(const obs::ProfiledMutex::Probe* probe) noexcept {
    mutex_.attach(probe);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  obs::ProfiledMutex mutex_;
  /// _any: the queue mutex is a ProfiledMutex, not std::mutex.
  std::condition_variable_any cv_;
  bool stopping_ = false;
};

/// Convenience: runs fn(i) for i in [0, count) on a transient pool sized to
/// the hardware concurrency. Suitable for one-shot bulk work.
void parallel_for_each_index(std::size_t count,
                             const std::function<void(std::size_t)>& fn);

}  // namespace prts
