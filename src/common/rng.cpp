#include "common/rng.hpp"

#include <cmath>

namespace prts {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64_next(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi - lo);  // inclusive width - 1
  if (span == std::numeric_limits<std::uint64_t>::max()) {
    return static_cast<std::int64_t>((*this)());
  }
  const std::uint64_t bound = span + 1;
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t raw = (*this)();
    // 128-bit multiply-shift partitioning of the 64-bit range
    // (__int128 is a GCC/Clang extension, hence the marker).
    __extension__ using uint128 = unsigned __int128;
    const uint128 product = static_cast<uint128>(raw) * bound;
    if (static_cast<std::uint64_t>(product) >= threshold) {
      return lo + static_cast<std::int64_t>(
                      static_cast<std::uint64_t>(product >> 64));
    }
  }
}

double Rng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double rate) noexcept {
  // -log(1-U) with U in [0,1): argument stays in (0,1], no log(0).
  return -std::log1p(-uniform01()) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

Rng Rng::split() noexcept {
  Rng child(0);
  std::uint64_t sm = (*this)();
  for (auto& word : child.state_) word = splitmix64_next(sm);
  return child;
}

}  // namespace prts
