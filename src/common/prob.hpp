// Numerically stable probability arithmetic for reliability computations.
//
// Paper-scale failure probabilities span 1e-18 .. 1e-3. Evaluating
// r = prod_j (1 - prod_u (1 - r_branch)) naively in double collapses every
// factor to 1.0. We therefore keep reliabilities as *log-reliabilities*
// (log r <= 0) and failures as plain probabilities (small, hence exactly
// representable), converting with log1p/expm1 only at well-conditioned
// points:
//   component:  log r = -lambda * d          (exact, no rounding at all)
//   failure:    f     = -expm1(log r)
//   parallel:   F     = prod of branch f's   (products of small numbers)
//   series:     log r = sum of log1p(-F_j)
#pragma once

#include <compare>
#include <span>

namespace prts {

/// A probability of correct functioning, stored as log(r) in (-inf, 0].
/// Multiplication (series composition) is exact addition in log space.
class LogReliability {
 public:
  /// Reliability 1 (log 0). Default-constructed value.
  constexpr LogReliability() noexcept = default;

  /// Reliability of an exponential-failure component of rate `lambda`
  /// operating for duration `d`: r = e^{-lambda d}. Exact in log space.
  static LogReliability exp_failure(double lambda, double duration) noexcept;

  /// From a plain reliability in [0, 1].
  static LogReliability from_reliability(double r) noexcept;

  /// From a failure probability in [0, 1]; well conditioned for small f.
  static LogReliability from_failure(double f) noexcept;

  /// From a precomputed log-reliability (must be <= 0, -inf allowed).
  static LogReliability from_log(double log_r) noexcept;

  /// Perfectly reliable component (r = 1).
  static constexpr LogReliability certain() noexcept { return {}; }

  /// log(r), in (-inf, 0].
  double log() const noexcept { return log_r_; }

  /// r = exp(log r). Collapses to 1.0 for |log r| < ~1e-16; prefer
  /// failure() when the distinction matters.
  double reliability() const noexcept;

  /// f = 1 - r computed as -expm1(log r); keeps full precision for r ~ 1.
  double failure() const noexcept;

  /// Series composition: both components must function.
  LogReliability operator*(LogReliability other) const noexcept;
  LogReliability& operator*=(LogReliability other) noexcept;

  /// Orders by reliability (log value).
  auto operator<=>(const LogReliability&) const noexcept = default;

 private:
  double log_r_ = 0.0;
};

/// Failure probability 1 - e^{-lambda d}, stable for tiny lambda*d.
double failure_from_rate(double lambda, double duration) noexcept;

/// Parallel composition: the group functions iff at least one branch does.
/// Input: per-branch *failure* probabilities. Returns the group reliability.
LogReliability parallel_from_failures(
    std::span<const double> branch_failures) noexcept;

/// Parallel composition of identical branches: 1 - f^k.
LogReliability parallel_identical(double branch_failure,
                                  unsigned replicas) noexcept;

/// Series composition of a span of log-reliabilities.
LogReliability series(std::span<const LogReliability> parts) noexcept;

}  // namespace prts
