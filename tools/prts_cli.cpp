// prts_cli — command-line front end over the library.
//
//   prts_cli generate [--seed S] [--het] [--tasks N] [--procs P]
//       emit a random instance (paper distributions) on stdout
//   prts_cli solve --algo dp|dp-period|exact|ilp|heur-l|heur-p
//       [--period P] [--latency L] < instance.txt
//       solve and print the mapping + objectives
//   prts_cli evaluate --mapping "2:0,1;8:2;14:3,4,5" < instance.txt
//       evaluate a given mapping (boundaries: last task of each interval,
//       then the processor ids of its replicas)
//   prts_cli simulate [--datasets N] [--period P] [--latency L]
//       [--seed S] [--no-routing] [--no-failures] < instance.txt
//       run the discrete-event simulator
//   prts_cli dot --what mapping|rbd|rbd-noroute --algo ... < instance.txt
//       emit a Graphviz drawing of the solved mapping or its RBD
//   prts_cli trace [--datasets N] [--period P] [--seed S] [--no-routing]
//       [--no-failures] --algo ... < instance.txt
//       emit the discrete-event trace as TSV, sorted by time
//   prts_cli solvers
//       list every registered solver with a one-line description
//   prts_cli campaign <spec.txt|-> [--threads T] [--seed S]
//       [--format table|tsv|json] [--via-service] [--cache-mb M]
//       run a whole scenario campaign (see src/scenario/spec.hpp for the
//       spec format) and emit the aggregated series; --threads/--seed
//       override the spec without editing it; --via-service routes every
//       job through the solve service so repeats hit the cross-run cache
//       (with --near-miss on|off gating bounds-monotone near-miss reuse)
//   prts_cli serve [requests.txt|-] [--threads N] [--cache-mb M]
//       [--shards S] [--no-cache] [--queue-limit Q] [--deadline D]
//       [--policy reject|downgrade] [--fallback SOLVER]
//       [--retention lru|cost] [--near-miss on|off]
//       [--warm-start cache.{tsv,bin}] [--save-cache cache.{tsv,bin}]
//       [--stats]
//       [--listen PORT] [--world N] [--rank R] [--peers h:p,h:p,...]
//       [--replica-mb M] [--replica-ttl SECONDS]
//       [--replica-ttl-cost FACTOR] [--gossip-interval S]
//       [--elastic] [--advertise HOST:PORT] [--join HOST:PORT]
//       [--heartbeat-interval S] [--suspect-after S] [--dead-after S]
//       [--vnodes N] [--checkpoint cache.bin] [--checkpoint-interval S]
//       [--auth-token TOKEN]
//       [--no-input] [--slow-ms MS] [--alert RULE]...
//       run the batched solve service over a line-protocol request
//       stream (see src/service/protocol.hpp for the format); with
//       --listen/--world/--rank/--peers the process joins the
//       distributed solve fabric (shard = hash.hi mod world), forwarding
//       remote-shard misses to their owner and answering peers' frames;
//       --replica-mb/--replica-ttl size the hot-entry replica tier
//       absorbing repeat remote-shard hits (0 MB disables it),
//       --replica-ttl-cost grants extra replica lifetime per second of
//       an entry's recorded solve cost (adaptive TTL, 0 = flat), and
//       --gossip-interval enables periodic hot-key digests so peers
//       prefetch each other's hot entries (0 disables gossip);
//       --near-miss off disables bounds-monotone near-miss reuse
//       (dominating hits + warm starts; on by default, answer bytes
//       are identical either way); --no-input serves network traffic
//       only until SIGINT/SIGTERM; every serve carries telemetry (a
//       metrics registry + request tracer, see src/obs/) reachable via
//       the protocol's `stats --json` / `metrics` / `trace <id>` /
//       `traces` / `slowlog` commands and the fabric's kMetricsRequest
//       frame; --slow-ms logs traces slower than MS ms to stderr;
//       --flight-interval S sets the flight-recorder tick period
//       (default 1s, 0 disables; window via the `timeseries` command)
//       and --stall-ms MS the watchdog stall threshold (default 2000,
//       0 disables; verdict in `stats --json` under "watchdog");
//       an in-process profiler attributes cpu/wall/blocked time,
//       allocations and lock contention per component (`profile
//       [filter]` and `alerts` protocol commands, profile_*/mutex_*
//       scrape families); --alert RULE (repeatable, load::slo grammar
//       plus ;for=N;hold=N debounce, e.g.
//       "engine_queue_depth>100;for=3") adds health-alert rules
//       evaluated every flight-recorder tick, on top of the always-on
//       default rule "watchdog_stalls_total_delta>0;hold=5";
//       --elastic replaces the static --world/--rank/--peers fleet
//       with dynamic membership: the rank founds a fleet of one (or
//       dials --join HOST:PORT, any live member), announces itself as
//       --advertise HOST:PORT (default 127.0.0.1:listen-port),
//       exchanges heartbeat views every --heartbeat-interval seconds,
//       suspects a silent peer after --suspect-after and removes it
//       after --dead-after; ownership follows a consistent-hash ring
//       (--vnodes virtual nodes per member) and join/leave streams
//       only the affected key slices between owners; --checkpoint
//       snapshots the cache to a PRTS1 file (atomic rename) every
//       --checkpoint-interval seconds (0 = only the `checkpoint`
//       command and the shutdown snapshot), so a SIGKILLed rank
//       restarts warm via --warm-start; --auth-token TOKEN (or env
//       PRTS_AUTH) requires every inbound connection to authenticate
//       before its first real frame and is used for outbound fabric
//       connections alike
//   prts_cli scrape HOST:PORT [--watch S] [--count N] [--alerts]
//       [--auth-token TOKEN]
//       fetch prometheus text expositions from a running serve rank
//       (its --listen port). One shot by default; --watch S re-scrapes
//       every S seconds (N times with --count, forever without) and
//       prints counter deltas between scrapes; a target restart
//       (counters reset + fresh process_start_time_seconds) resets the
//       baseline instead of failing. --alerts prints only the
//       alerts_firing / alert_* families and exits 3 while any rule is
//       firing. Exits nonzero on a malformed exposition line or a
//       counter that went backwards without a restart.
//   prts_cli loadgen --targets h:p[,h:p...] [--rate R] [--duration S]
//       [--process poisson|bursty|uniform] [--seed S] [--keys K]
//       [--zipf Z] [--mix name:w,name:w] [--tasks N] [--procs P]
//       [--connections C] [--record PATH] [--replay PATH] [--slo SPEC]
//       [--out PATH] [--search] [--min-rate R] [--max-rate R]
//       [--step-duration S] [--auth-token TOKEN]
//       open-loop load against running serve ranks: arrivals fire at
//       their scheduled instants regardless of completions, latency is
//       measured from the scheduled arrival (queueing honesty under
//       overload). --record/--replay round-trip the deterministic
//       arrival trace; --slo (e.g. "p99<=50ms;error_rate<=0.01") turns
//       the run into a pass/fail check; --search steps the rate to find
//       the max sustainable throughput at the SLO. Emits a JSON report
//       (stdout or --out); exit 0 iff the SLO held and nothing was left
//       unresolved.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/exact.hpp"
#include "core/heuristics.hpp"
#include "core/ilp.hpp"
#include "core/period_dp.hpp"
#include "core/reliability_dp.hpp"
#include "eval/energy.hpp"
#include "eval/evaluation.hpp"
#include "exp/report.hpp"
#include "model/dot.hpp"
#include "model/generator.hpp"
#include "model/serialize.hpp"
#include "rbd/builder.hpp"
#include "rbd/dot.hpp"
#include "scenario/campaign.hpp"
#include "scenario/emit.hpp"
#include "scenario/spec.hpp"
#include "load/arrivals.hpp"
#include "load/generator.hpp"
#include "load/slo.hpp"
#include "net/frame_client.hpp"
#include "net/frame_server.hpp"
#include "net/mux_client.hpp"
#include "obs/exposition.hpp"
#include "obs/trace.hpp"
#include "service/cache.hpp"
#include "service/checkpoint.hpp"
#include "service/engine.hpp"
#include "service/fusion.hpp"
#include "service/protocol.hpp"
#include "service/router.hpp"
#include "sim/pipeline_sim.hpp"
#include "solver/registry.hpp"
#include "solver/solver.hpp"

namespace {

using namespace prts;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Minimal flag parser: --name value or boolean --name.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << arg << "\n";
        std::exit(2);
      }
      arg = arg.substr(2);
      std::string value;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        value = argv[++i];
      }
      values_[arg] = value;
      ordered_.emplace_back(std::move(arg), std::move(value));
    }
  }

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  double number(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  /// Every value given for a repeatable flag, in command-line order
  /// (get/number see only the last occurrence).
  std::vector<std::string> all(const std::string& name) const {
    std::vector<std::string> values;
    for (const auto& [flag, value] : ordered_) {
      if (flag == name) values.push_back(value);
    }
    return values;
  }

 private:
  std::map<std::string, std::string> values_;  ///< last occurrence wins
  std::vector<std::pair<std::string, std::string>> ordered_;
};

Instance read_instance_or_die() {
  ParseResult parsed = read_instance(std::cin);
  if (!parsed) {
    std::cerr << "failed to parse instance: " << parsed.error << "\n";
    std::exit(1);
  }
  return std::move(*parsed.instance);
}

void print_mapping(const TaskChain& chain, const Platform& platform,
                   const Mapping& mapping) {
  const MappingMetrics metrics = evaluate(chain, platform, mapping);
  for (std::size_t j = 0; j < mapping.interval_count(); ++j) {
    const Interval& ival = mapping.partition().interval(j);
    std::cout << "interval " << j << ": tasks " << ival.first << ".."
              << ival.last << " on";
    for (std::size_t u : mapping.processors(j)) std::cout << " P" << u;
    std::cout << "\n";
  }
  const EnergyMetrics energy = mapping_energy(chain, platform, mapping);
  std::cout << "failure            " << metrics.failure << "\n";
  std::cout << "expected latency   " << metrics.expected_latency << "\n";
  std::cout << "worst latency      " << metrics.worst_latency << "\n";
  std::cout << "expected period    " << metrics.expected_period << "\n";
  std::cout << "worst period       " << metrics.worst_period << "\n";
  std::cout << "replication level  " << metrics.replication_level << "\n";
  std::cout << "energy per dataset " << energy.total() << "\n";
}

/// Every --algo value is a solver-registry name: the hand-rolled
/// per-engine dispatch this tool used to carry now lives behind the
/// uniform Solver interface.
std::optional<Mapping> solve(const Instance& instance, const Flags& flags) {
  const std::string algo = flags.get("algo", "exact");
  const auto& registry = solver::SolverRegistry::builtin();
  const auto engine = registry.find(algo);
  if (!engine) {
    std::cerr << "unknown --algo " << algo << " (one of:";
    for (const std::string& name : registry.names()) {
      std::cerr << " " << name;
    }
    std::cerr << ")\n";
    std::exit(2);
  }
  solver::Bounds bounds;
  bounds.period_bound = flags.number("period", kInf);
  bounds.latency_bound = flags.number("latency", kInf);
  auto solution = engine->solve(instance, bounds);
  if (!solution) return std::nullopt;
  return std::move(solution->mapping);
}

/// Parses "2:0,1;8:2" into a mapping: per interval, the last task index
/// and the replica processor ids.
std::optional<Mapping> parse_mapping(const std::string& text,
                                     std::size_t task_count) {
  std::vector<std::size_t> lasts;
  std::vector<std::vector<std::size_t>> procs;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, ';')) {
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) return std::nullopt;
    lasts.push_back(std::stoul(part.substr(0, colon)));
    std::vector<std::size_t> replicas;
    std::istringstream proc_in(part.substr(colon + 1));
    std::string id;
    while (std::getline(proc_in, id, ',')) {
      replicas.push_back(std::stoul(id));
    }
    if (replicas.empty()) return std::nullopt;
    procs.push_back(std::move(replicas));
  }
  if (lasts.empty() || lasts.back() != task_count - 1) return std::nullopt;
  return Mapping(IntervalPartition::from_boundaries(lasts, task_count),
                 std::move(procs));
}

int cmd_generate(const Flags& flags) {
  Rng rng(static_cast<std::uint64_t>(flags.number("seed", 1)));
  ChainConfig chain_config;
  chain_config.task_count =
      static_cast<std::size_t>(flags.number("tasks", 15));
  const TaskChain chain = random_chain(rng, chain_config);
  Instance instance{chain, flags.has("het")
                               ? [&] {
                                   HetPlatformConfig config;
                                   config.processor_count =
                                       static_cast<std::size_t>(
                                           flags.number("procs", 10));
                                   return random_het_platform(rng, config);
                                 }()
                               : Platform::homogeneous(
                                     static_cast<std::size_t>(
                                         flags.number("procs", 10)),
                                     1.0, paper::kProcessorFailureRate, 1.0,
                                     paper::kLinkFailureRate,
                                     paper::kMaxReplication)};
  write_instance(std::cout, instance);
  return 0;
}

int cmd_solve(const Flags& flags) {
  const Instance instance = read_instance_or_die();
  const auto mapping = solve(instance, flags);
  if (!mapping) {
    std::cout << "no feasible mapping under the given bounds\n";
    return 1;
  }
  print_mapping(instance.chain, instance.platform, *mapping);
  return 0;
}

int cmd_evaluate(const Flags& flags) {
  const Instance instance = read_instance_or_die();
  const auto mapping =
      parse_mapping(flags.get("mapping"), instance.chain.size());
  if (!mapping) {
    std::cerr << "bad --mapping (want 'last:proc,proc;...' ending at n-1)\n";
    return 2;
  }
  if (const auto why = mapping->validate(instance.platform)) {
    std::cerr << "invalid mapping: " << *why << "\n";
    return 1;
  }
  print_mapping(instance.chain, instance.platform, *mapping);
  return 0;
}

int cmd_simulate(const Flags& flags) {
  const Instance instance = read_instance_or_die();
  const auto mapping = solve(instance, flags);
  if (!mapping) {
    std::cout << "no feasible mapping under the given bounds\n";
    return 1;
  }
  const MappingMetrics metrics =
      evaluate(instance.chain, instance.platform, *mapping);
  sim::SimulationConfig config;
  config.dataset_count =
      static_cast<std::size_t>(flags.number("datasets", 1000));
  config.input_period = flags.number("period", metrics.worst_period);
  config.latency_deadline = flags.number("latency", kInf);
  config.seed = static_cast<std::uint64_t>(flags.number("seed", 1));
  config.use_routing = !flags.has("no-routing");
  config.inject_failures = !flags.has("no-failures");
  const auto result = sim::simulate_pipeline(
      instance.chain, instance.platform, *mapping, config);
  std::cout << "datasets          " << result.datasets << "\n";
  std::cout << "delivered         " << result.successes << "\n";
  std::cout << "deadline misses   " << result.deadline_misses << "\n";
  std::cout << "mean latency      " << result.latency.mean() << "\n";
  std::cout << "max latency       " << result.latency.max() << "\n";
  std::cout << "mean output gap   " << result.inter_completion.mean()
            << "\n";
  std::cout << "makespan          " << result.makespan << "\n";
  return 0;
}

int cmd_dot(const Flags& flags) {
  const Instance instance = read_instance_or_die();
  const auto mapping = solve(instance, flags);
  if (!mapping) {
    std::cout << "no feasible mapping under the given bounds\n";
    return 1;
  }
  const std::string what = flags.get("what", "mapping");
  if (what == "mapping") {
    std::cout << mapping_to_dot(instance.chain, instance.platform, *mapping);
  } else if (what == "rbd") {
    std::cout << rbd::to_dot(rbd::build_routing_graph(
        instance.chain, instance.platform, *mapping));
  } else if (what == "rbd-noroute") {
    std::cout << rbd::to_dot(rbd::build_no_routing_graph(
        instance.chain, instance.platform, *mapping));
  } else {
    std::cerr << "unknown --what " << what << "\n";
    return 2;
  }
  return 0;
}

int cmd_trace(const Flags& flags) {
  const Instance instance = read_instance_or_die();
  const auto mapping = solve(instance, flags);
  if (!mapping) {
    std::cout << "no feasible mapping under the given bounds\n";
    return 1;
  }
  const MappingMetrics metrics =
      evaluate(instance.chain, instance.platform, *mapping);
  std::vector<sim::TraceEvent> events;
  const sim::TraceObserver observer = [&](const sim::TraceEvent& event) {
    events.push_back(event);
  };
  sim::SimulationConfig config;
  config.dataset_count =
      static_cast<std::size_t>(flags.number("datasets", 5));
  config.input_period = flags.number("period", metrics.worst_period);
  config.seed = static_cast<std::uint64_t>(flags.number("seed", 1));
  config.use_routing = !flags.has("no-routing");
  config.inject_failures = !flags.has("no-failures");
  config.observer = &observer;
  sim::simulate_pipeline(instance.chain, instance.platform, *mapping,
                         config);
  std::stable_sort(events.begin(), events.end(),
                   [](const sim::TraceEvent& a, const sim::TraceEvent& b) {
                     return a.time < b.time;
                   });
  static const char* kKindNames[] = {"release",        "compute-start",
                                     "compute-end",    "transfer-start",
                                     "transfer-end",   "complete"};
  std::cout << "time\tkind\tdataset\tstage\tprocessor\tsuccess\n";
  for (const sim::TraceEvent& event : events) {
    std::cout << event.time << "\t"
              << kKindNames[static_cast<int>(event.kind)] << "\t"
              << event.dataset << "\t";
    if (event.stage == sim::TraceEvent::kNone) {
      std::cout << "-";
    } else {
      std::cout << event.stage;
    }
    std::cout << "\t";
    if (event.processor == sim::TraceEvent::kNone) {
      std::cout << "-";
    } else {
      std::cout << "P" << event.processor;
    }
    std::cout << "\t" << (event.success ? 1 : 0) << "\n";
  }
  return 0;
}

int cmd_solvers() {
  const auto& registry = solver::SolverRegistry::builtin();
  for (const std::string& name : registry.names()) {
    const auto engine = registry.find(name);
    std::cout << name;
    const std::string description = engine->description();
    if (!description.empty()) {
      for (std::size_t pad = name.size(); pad < 12; ++pad) std::cout << ' ';
      std::cout << " " << description;
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_campaign(const std::string& spec_path, const Flags& flags) {
  scenario::CampaignParseResult parsed = [&] {
    if (spec_path == "-") return scenario::read_campaign(std::cin);
    std::ifstream file(spec_path);
    if (!file) {
      scenario::CampaignParseResult result;
      result.error = "cannot open '" + spec_path + "'";
      return result;
    }
    return scenario::read_campaign(file);
  }();
  if (!parsed) {
    std::cerr << "failed to parse campaign spec: " << parsed.error << "\n";
    return 1;
  }

  const std::string format = flags.get("format", "table");
  if (format != "table" && format != "tsv" && format != "json") {
    std::cerr << "unknown --format " << format << " (table|tsv|json)\n";
    return 2;
  }

  // Execution overrides: rerun a spec with another seed or thread count
  // without editing the file.
  if (flags.has("seed")) {
    parsed.spec->seed = static_cast<std::uint64_t>(flags.number("seed", 0));
  }
  scenario::CampaignConfig config;
  config.threads = static_cast<std::size_t>(flags.number("threads", 0));
  scenario::CampaignResult result;
  try {
    if (flags.has("via-service")) {
      // Fusion path: every job goes through SolveService::submit, so
      // repeated sweeps share the cross-run cache and in-flight dedup.
      service::ServiceConfig service_config;
      service_config.threads = config.threads;
      service_config.cache.capacity_bytes = static_cast<std::size_t>(
          flags.number("cache-mb", 64) * 1024 * 1024);
      service_config.near_miss = flags.get("near-miss", "on") != "off";
      service::SolveService service(service_config);
      result = service::run_campaign_via_service(*parsed.spec, service);
      if (flags.has("stats")) {
        std::cerr << "# hits ";
        service::write_hit_tiers_json(std::cerr, service.stats());
        std::cerr << "\n";
        std::cerr << "# cache ";
        service::ShardedSolutionCache::write_stats_json(
            std::cerr, service.cache_stats());
        std::cerr << "\n";
      }
    } else {
      result = scenario::run_campaign(*parsed.spec, config);
    }
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  if (format == "json") {
    scenario::write_json(std::cout, *parsed.spec, result);
  } else if (format == "tsv") {
    scenario::write_tsv(std::cout, result.figure);
  } else {
    exp::print_table(std::cout, result.figure, exp::Metric::kSolutions);
    std::cout << "\n";
    exp::print_table(std::cout, result.figure, exp::Metric::kAvgFailure);
  }
  return 0;
}

/// Shared-secret frame auth, used by serve and by the tools that dial
/// a fleet (scrape, loadgen): --auth-token wins, env var PRTS_AUTH is
/// the no-secrets-on-the-command-line alternative.
std::string resolve_auth_token(const Flags& flags) {
  std::string token = flags.get("auth-token");
  if (token.empty()) {
    if (const char* env = std::getenv("PRTS_AUTH")) token = env;
  }
  return token;
}

/// True when the path names the compact PRTS1 snapshot (by extension).
bool is_binary_cache_path(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;
void serve_stop_handler(int) { g_serve_stop = 1; }

int cmd_serve(const std::string& request_path, const Flags& flags) {
  service::ServiceConfig config;
  config.threads = static_cast<std::size_t>(flags.number("threads", 0));
  config.cache_enabled = !flags.has("no-cache");
  config.cache.shards = static_cast<std::size_t>(flags.number("shards", 16));
  config.cache.capacity_bytes =
      static_cast<std::size_t>(flags.number("cache-mb", 64) * 1024 * 1024);
  config.max_queue_depth =
      static_cast<std::size_t>(flags.number("queue-limit", 4096));
  config.fallback_solver = flags.get("fallback", "heur-p");
  const std::string retention = flags.get("retention", "lru");
  if (retention == "cost") {
    config.cache.retention = service::ShardedSolutionCache::Retention::kCost;
  } else if (retention != "lru") {
    std::cerr << "unknown --retention " << retention << " (lru|cost)\n";
    return 2;
  }
  const std::string near_miss = flags.get("near-miss", "on");
  if (near_miss == "off") {
    config.near_miss = false;
  } else if (near_miss != "on") {
    std::cerr << "unknown --near-miss " << near_miss << " (on|off)\n";
    return 2;
  }

  service::ServeOptions options;
  options.default_deadline_seconds = flags.number("deadline", kInf);
  const std::string policy = flags.get("policy", "downgrade");
  if (policy == "reject") {
    options.default_policy = service::DeadlinePolicy::kReject;
  } else if (policy == "downgrade") {
    options.default_policy = service::DeadlinePolicy::kDowngrade;
  } else {
    std::cerr << "unknown --policy " << policy << " (reject|downgrade)\n";
    return 2;
  }

  // Fabric topology: every flag validated before any thread starts.
  const bool elastic = flags.has("elastic");
  const std::size_t world =
      static_cast<std::size_t>(flags.number("world", 1));
  const std::size_t rank = static_cast<std::size_t>(flags.number("rank", 0));
  if (elastic) {
    // Elastic membership replaces the static topology wholesale: the
    // fleet is whatever joined, not a fixed world size.
    if (world != 1 || flags.has("peers")) {
      std::cerr << "--elastic is incompatible with --world/--peers (the "
                   "member list is dynamic)\n";
      return 2;
    }
    if (!flags.has("listen")) {
      std::cerr << "--elastic requires --listen (members must be able to "
                   "reach this rank)\n";
      return 2;
    }
  } else if (world == 0 || rank >= world) {
    std::cerr << "--rank must be < --world (got rank " << rank << ", world "
              << world << ")\n";
    return 2;
  }
  const double replica_mb = flags.number("replica-mb", 16);
  const double replica_ttl = flags.number("replica-ttl", 300);
  const double replica_ttl_cost = flags.number("replica-ttl-cost", 0);
  const double gossip_interval = flags.number("gossip-interval", 0);
  if (replica_mb < 0 || replica_ttl_cost < 0 || gossip_interval < 0) {
    std::cerr << "--replica-mb, --replica-ttl-cost and --gossip-interval "
                 "must be >= 0\n";
    return 2;
  }

  // Elastic-membership knobs (ignored when not --elastic).
  const double heartbeat_interval = flags.number("heartbeat-interval", 0.5);
  const double suspect_after = flags.number("suspect-after", 2.0);
  const double dead_after = flags.number("dead-after", 5.0);
  const double vnodes = flags.number("vnodes", 64);
  if (heartbeat_interval < 0 || suspect_after <= 0 || dead_after <= 0 ||
      vnodes < 1) {
    std::cerr << "--heartbeat-interval must be >= 0; --suspect-after, "
                 "--dead-after > 0; --vnodes >= 1\n";
    return 2;
  }
  std::optional<service::PeerAddress> join_seed;
  if (flags.has("join")) {
    const auto parsed = service::parse_peer_list(flags.get("join"));
    if (!parsed || parsed->size() != 1) {
      std::cerr << "--join needs one HOST:PORT\n";
      return 2;
    }
    if (!elastic) {
      std::cerr << "--join requires --elastic\n";
      return 2;
    }
    join_seed = parsed->front();
  }
  service::PeerAddress advertise;
  if (flags.has("advertise")) {
    const auto parsed = service::parse_peer_list(flags.get("advertise"));
    if (!parsed || parsed->size() != 1) {
      std::cerr << "--advertise needs one HOST:PORT\n";
      return 2;
    }
    advertise = parsed->front();
  }

  const std::string auth_token = resolve_auth_token(flags);

  const std::string checkpoint_path = flags.get("checkpoint");
  const double checkpoint_interval = flags.number("checkpoint-interval", 0);
  if (checkpoint_interval < 0) {
    std::cerr << "--checkpoint-interval must be >= 0\n";
    return 2;
  }
  if (checkpoint_interval > 0 && checkpoint_path.empty()) {
    std::cerr << "--checkpoint-interval requires --checkpoint PATH\n";
    return 2;
  }

  std::vector<service::PeerAddress> peers;
  if (world > 1) {
    const auto parsed = service::parse_peer_list(flags.get("peers"));
    if (!parsed || parsed->size() != world) {
      std::cerr << "--world " << world
                << " needs --peers with one host:port per rank\n";
      return 2;
    }
    peers = *parsed;
    if (!flags.has("listen")) {
      // A rank that cannot be reached silently breaks the one-logical-
      // cache property (peers' forwards to it all time out).
      std::cerr << "--world > 1 requires --listen (peers must be able to "
                   "reach this rank)\n";
      return 2;
    }
  }

  const bool no_input = flags.has("no-input");

  // Telemetry is always on for serve (nanoseconds per request); it must
  // outlive the engine, router and server, so it is declared before all
  // of them. --slow-ms additionally logs slow traces to stderr the
  // moment they finish.
  const double slow_ms = flags.number("slow-ms", 0);
  if (slow_ms < 0) {
    std::cerr << "--slow-ms must be >= 0\n";
    return 2;
  }
  obs::TracerConfig tracer_config;
  if (slow_ms > 0) {
    tracer_config.slow_threshold_seconds = slow_ms / 1e3;
    tracer_config.slow_log = &std::cerr;
  }
  obs::Telemetry telemetry(tracer_config);
  telemetry.rank = static_cast<int>(rank);
  config.telemetry = &telemetry;

  // Flight recorder + stall watchdog ride the telemetry object, so
  // their threads stop in ~Telemetry after everything they observe has
  // been torn down.
  const double flight_interval = flags.number("flight-interval", 1.0);
  const double stall_ms = flags.number("stall-ms", 2000);
  if (flight_interval < 0 || stall_ms < 0) {
    std::cerr << "--flight-interval and --stall-ms must be >= 0\n";
    return 2;
  }
  if (flight_interval > 0) {
    obs::FlightRecorderConfig recorder_config;
    recorder_config.interval_seconds = flight_interval;
    telemetry.recorder.configure(recorder_config);
    telemetry.recorder.start();
  }
  if (stall_ms > 0) {
    obs::WatchdogConfig watchdog_config;
    watchdog_config.stall_threshold_seconds = stall_ms / 1e3;
    telemetry.watchdog.start(watchdog_config);
  }

  // Health alerts: evaluated on every flight-recorder tick. Every serve
  // gets the stall rule by default (a watchdog episode should page even
  // if nobody passed --alert); --alert RULE adds more, repeatable.
  {
    std::vector<std::string> alert_rules = flags.all("alert");
    alert_rules.insert(alert_rules.begin(),
                       "watchdog_stalls_total_delta>0;hold=5");
    if (elastic) {
      // A member going suspect is the membership layer's page-worthy
      // signal: either a peer is dying or this rank is partitioned.
      alert_rules.insert(alert_rules.begin(),
                         "membership_suspects_total_delta>0;hold=3");
    }
    for (const std::string& rule_text : alert_rules) {
      std::string error;
      if (!telemetry.alerts.add_rule(rule_text, &error)) {
        std::cerr << "--alert '" << rule_text << "': " << error << "\n";
        return 2;
      }
    }
  }

  // Open the request stream before constructing the service, so an
  // error exit never abandons live worker threads.
  std::ifstream request_file;
  if (!no_input && request_path != "-") {
    request_file.open(request_path);
    if (!request_file) {
      std::cerr << "cannot open request file '" << request_path << "'\n";
      return 1;
    }
  }
  std::istream& requests =
      request_path == "-" ? std::cin : request_file;

  service::SolveService engine(config);

  if (flags.has("warm-start")) {
    const std::string path = flags.get("warm-start");
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::cerr << "cannot open warm-start file '" << path << "'\n";
      return 1;
    }
    service::ShardedSolutionCache::LoadResult loaded;
    if (is_binary_cache_path(path)) {
      // Fabric nodes selectively load just the keys they own — the
      // PRTS1 index makes that O(1) per key.
      std::function<bool(const service::CanonicalHash&)> filter;
      if (world > 1) {
        filter = [world, rank](const service::CanonicalHash& key) {
          return key.hi % world == rank;
        };
      }
      loaded = engine.cache().load_binary(file, filter);
    } else {
      loaded = engine.cache().load_tsv(file);
    }
    if (!loaded.error.empty()) {
      std::cerr << "warm-start '" << path << "': " << loaded.error << "\n";
      return 1;
    }
    std::cerr << "# warm-start: " << loaded.loaded << " entries from "
              << path;
    if (loaded.skipped > 0) {
      std::cerr << " (" << loaded.skipped << " foreign-shard keys skipped)";
    }
    std::cerr << "\n";
  }

  // Fabric wiring: the FrameServer answers peers' frames on its own
  // small pool (connections are long-lived; sharing the solve pool
  // would starve it), the router forwards remote-shard misses. The
  // router is constructed after the server (peers need the bound port),
  // so the handler resolves it lazily.
  std::unique_ptr<ThreadPool> server_pool;
  // Written once the router exists, read by server pool threads — a
  // peer's frame can arrive the instant the port is bound, so the
  // hand-off must be atomic.
  std::atomic<service::ShardRouter*> router_ptr{nullptr};
  std::unique_ptr<net::FrameServer> server;
  std::unique_ptr<service::ShardRouter> router;
  if (flags.has("listen")) {
    const double listen_value = flags.number("listen", 0);
    if (listen_value < 1 || listen_value > 65535 ||
        listen_value != static_cast<std::uint16_t>(listen_value)) {
      std::cerr << "--listen needs a port in 1..65535\n";
      return 2;
    }
    const auto port = static_cast<std::uint16_t>(listen_value);
    server_pool = std::make_unique<ThreadPool>(
        std::max<std::size_t>(2, 2 * world));
    server = net::FrameServer::start(
        port,
        service::make_fabric_handler(
            engine, [&router_ptr] { return router_ptr.load(); }),
        *server_pool, net::kDefaultMaxPayload, &telemetry.metrics,
        &telemetry.watchdog, &telemetry.profiler, auth_token);
    if (!server) {
      std::cerr << "cannot listen on port " << port << "\n";
      return 1;
    }
    if (elastic) {
      std::cerr << "# listening on port " << server->port() << " (rank "
                << rank << ", elastic)\n";
    } else {
      std::cerr << "# listening on port " << server->port() << " (rank "
                << rank << "/" << world << ")\n";
    }
  }
  if (world > 1 || elastic) {
    service::RouterConfig router_config;
    router_config.world_size = world;
    router_config.rank = rank;
    router_config.peers = std::move(peers);
    router_config.client.auth_token = auth_token;
    router_config.replica.capacity_bytes =
        static_cast<std::size_t>(replica_mb * 1024 * 1024);
    router_config.replica.ttl_seconds = replica_ttl;
    router_config.replica.ttl_cost_factor = replica_ttl_cost;
    router_config.gossip_interval_seconds = gossip_interval;
    router_config.telemetry = &telemetry;
    if (elastic) {
      router_config.elastic = true;
      router_config.membership.suspect_after_seconds = suspect_after;
      router_config.membership.dead_after_seconds = dead_after;
      router_config.membership.ring.virtual_nodes =
          static_cast<std::size_t>(vnodes);
      router_config.heartbeat_interval_seconds = heartbeat_interval;
      router_config.join_seed = join_seed;
      if (advertise.port == 0) {
        // The natural default: this rank is reachable where it listens.
        advertise.host = "127.0.0.1";
        advertise.port = server->port();
      }
      router_config.advertise = advertise;
    }
    router = std::make_unique<service::ShardRouter>(engine, router_config);
    router_ptr.store(router.get());
    options.router = router.get();
    if (elastic) {
      std::cerr << "# membership: epoch " << router->epoch() << ", "
                << router->membership_view().members.size() << " member(s)\n";
    }
  }

  // Live background checkpointing: snapshots keep flowing while the
  // rank serves; a SIGKILL loses at most one interval of inserts.
  std::unique_ptr<service::Checkpointer> checkpointer;
  if (!checkpoint_path.empty()) {
    service::Checkpointer::Config checkpoint_config;
    checkpoint_config.path = checkpoint_path;
    checkpoint_config.interval_seconds = checkpoint_interval;
    checkpoint_config.telemetry = &telemetry;
    checkpointer = std::make_unique<service::Checkpointer>(engine.cache(),
                                                           checkpoint_config);
    options.checkpointer = checkpointer.get();
  }

  service::ServeResult result;
  if (no_input) {
    // Pure fabric node: serve network traffic until SIGINT/SIGTERM.
    std::signal(SIGINT, serve_stop_handler);
    std::signal(SIGTERM, serve_stop_handler);
    while (!g_serve_stop) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  } else {
    result = service::run_serve(requests, std::cout, engine, options);
  }

  if (server) server->stop();

  // The shutdown snapshot: whatever the interval timer missed since its
  // last tick is captured now, so a clean exit never loses entries.
  if (checkpointer) {
    std::string why;
    if (!checkpointer->checkpoint_now(&why)) {
      std::cerr << "checkpoint '" << checkpointer->path() << "': " << why
                << "\n";
    }
  }

  if (flags.has("save-cache")) {
    const std::string path = flags.get("save-cache");
    std::ofstream file(path, std::ios::binary);
    if (!file) {
      std::cerr << "cannot write cache file '" << path << "'\n";
      return 1;
    }
    if (is_binary_cache_path(path)) {
      engine.cache().save_binary(file);
    } else {
      engine.cache().save_tsv(file);
    }
  }
  if (flags.has("stats")) {
    std::cerr << "# cache ";
    service::ShardedSolutionCache::write_stats_json(std::cerr,
                                                    engine.cache_stats());
    std::cerr << "\n";
    if (router) {
      std::cerr << "# router ";
      service::ShardRouter::write_stats_json(std::cerr, router->stats());
      std::cerr << "\n";
      std::cerr << "# replica ";
      service::ReplicaCache::write_stats_json(std::cerr,
                                              router->replica_stats());
      std::cerr << "\n";
    }
  }
  return result.protocol_errors == 0 ? 0 : 1;
}

/// kMetricsRequest exchanges against a running serve rank; prometheus
/// text lands on stdout (monitoring's stream), diagnostics on stderr.
/// --watch S repeats every S seconds printing counter deltas (a target
/// restart — fresh process_start_time_seconds alongside reset counters
/// — restarts the baseline, it is not an error); --alerts prints only
/// the alert families and exits 3 while any rule is firing. Any
/// malformed sample line or a counter that went backwards without a
/// restart makes the exit nonzero.
int cmd_scrape(const std::string& target, const Flags& flags) {
  const auto parsed = service::parse_peer_list(target);
  if (!parsed || parsed->size() != 1) {
    std::cerr << "scrape needs one HOST:PORT target\n";
    return 2;
  }
  const double watch = flags.number("watch", 0);
  if (watch < 0) {
    std::cerr << "--watch must be >= 0\n";
    return 2;
  }
  // Default: one scrape normally, forever under --watch.
  const auto count = static_cast<std::size_t>(
      flags.number("count", watch > 0 ? 0 : 1));
  const bool alerts_only = flags.has("alerts");

  // Mux client: a scrape shares the rank's connection machinery with
  // in-flight solves without queueing behind them.
  net::FrameClientConfig client_config;
  client_config.auth_token = resolve_auth_token(flags);
  net::MuxFrameClient client((*parsed)[0].host, (*parsed)[0].port,
                             client_config);
  obs::ScrapeDeltaTracker tracker;
  bool backwards = false;
  bool alerts_firing = false;
  for (std::size_t iteration = 0; count == 0 || iteration < count;
       ++iteration) {
    if (iteration > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(watch));
    }
    net::Frame request;
    request.type = net::FrameType::kMetricsRequest;
    const auto reply = client.call(request);
    if (!reply || reply->type != net::FrameType::kMetricsReply) {
      std::cerr << "scrape: no metrics reply from " << target << "\n";
      return 1;
    }
    std::map<std::string, double> samples;
    std::istringstream lines(reply->payload);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(lines, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      std::string name;
      double value = 0.0;
      if (!obs::parse_exposition_line(line, name, value)) {
        std::cerr << "scrape: malformed exposition line " << lineno << ": "
                  << line << "\n";
        return 1;
      }
      samples[name] = value;
    }
    if (alerts_only) {
      // Alert state only: the firing count plus every per-rule family.
      alerts_firing = false;
      const auto firing_it = samples.find("alerts_firing");
      if (firing_it != samples.end() && firing_it->second > 0) {
        alerts_firing = true;
      }
      for (const auto& [name, value] : samples) {
        if (name == "alerts_firing" || name.rfind("alert_", 0) == 0) {
          std::cout << name << " " << value << "\n";
        }
      }
      std::cout.flush();
      continue;
    }
    const obs::ScrapeDeltaTracker::Result verdict = tracker.feed(samples);
    if (verdict.first) {
      std::cout << reply->payload;
      std::cout.flush();
      continue;
    }
    if (verdict.restart) {
      // Counters reset with a fresh process start time: the target
      // restarted. New baseline, not a monotonicity violation.
      std::cout << "# scrape restart detected (new process baseline)\n";
    }
    std::cout << "# scrape delta " << iteration << "\n";
    for (const std::string& name : verdict.backwards) {
      std::cerr << "scrape: counter went backwards: " << name << "\n";
      backwards = true;
    }
    for (const obs::ScrapeDeltaTracker::Delta& delta : verdict.deltas) {
      std::cout << delta.name << " +" << delta.value << "\n";
    }
    std::cout.flush();
  }
  if (alerts_only && alerts_firing) return 3;
  return backwards ? 1 : 0;
}

/// Open-loop load against running serve ranks; see the usage block.
int cmd_loadgen(const Flags& flags) {
  const auto targets_text = flags.get("targets");
  const auto parsed_targets = service::parse_peer_list(targets_text);
  if (!parsed_targets || parsed_targets->empty()) {
    std::cerr << "loadgen needs --targets HOST:PORT[,HOST:PORT...]\n";
    return 2;
  }

  load::ArrivalConfig arrivals;
  arrivals.rate = flags.number("rate", 50);
  arrivals.duration_seconds = flags.number("duration", 5);
  arrivals.seed = static_cast<std::uint64_t>(flags.number("seed", 1));
  arrivals.key_count = static_cast<std::size_t>(flags.number("keys", 16));
  arrivals.zipf_s = flags.number("zipf", 1.1);
  arrivals.bounds_per_key =
      static_cast<std::size_t>(flags.number("bounds-per-key", 4));
  if (!parse_process(flags.get("process", "poisson"), arrivals.process)) {
    std::cerr << "loadgen: unknown --process (poisson|bursty|uniform)\n";
    return 2;
  }
  if (flags.has("mix")) {
    arrivals.solver_mix.clear();
    std::stringstream mix(flags.get("mix"));
    std::string entry;
    while (std::getline(mix, entry, ',')) {
      const std::size_t colon = entry.find(':');
      if (colon == std::string::npos) {
        std::cerr << "loadgen: --mix wants name:weight,name:weight\n";
        return 2;
      }
      arrivals.solver_mix.emplace_back(entry.substr(0, colon),
                                       std::stod(entry.substr(colon + 1)));
    }
  }

  // Instance corpus: one deterministic random chain per key, sized by
  // --tasks/--procs. Small defaults keep individual solves cheap so the
  // interesting signal is queueing, not raw solver cost.
  const auto tasks = static_cast<std::size_t>(flags.number("tasks", 10));
  const auto procs = static_cast<std::size_t>(flags.number("procs", 4));
  std::vector<Instance> instances;
  for (std::size_t k = 0; k < arrivals.key_count; ++k) {
    Rng rng(9000 + k);
    ChainConfig chain_config;
    chain_config.task_count = tasks;
    instances.push_back(Instance{
        random_chain(rng, chain_config),
        Platform::homogeneous(procs, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }

  load::SloSpec slo;
  if (flags.has("slo")) {
    std::string error;
    if (!load::parse_slo(flags.get("slo"), slo, &error)) {
      std::cerr << "loadgen: " << error << "\n";
      return 2;
    }
  }

  std::vector<load::WirePool::Target> targets;
  for (const auto& peer : *parsed_targets) {
    targets.push_back(load::WirePool::Target{peer.host, peer.port});
  }
  // One mux connection per target pipelines many in-flight solves;
  // --workers caps total concurrent exchanges across the pool.
  load::WirePool pool(
      targets, static_cast<std::size_t>(flags.number("connections", 1)),
      static_cast<std::size_t>(flags.number("workers", 0)),
      resolve_auth_token(flags));

  std::ofstream out_file;
  if (flags.has("out")) {
    out_file.open(flags.get("out"));
    if (!out_file) {
      std::cerr << "loadgen: cannot write '" << flags.get("out") << "'\n";
      return 1;
    }
  }
  std::ostream& report = flags.has("out") ? out_file : std::cout;

  const auto print_latency = [&](std::ostream& out,
                                 const load::RunResult& result) {
    out << "{\"p50\":" << result.quantile(0.50)
        << ",\"p90\":" << result.quantile(0.90)
        << ",\"p99\":" << result.quantile(0.99)
        << ",\"p999\":" << result.quantile(0.999)
        << ",\"mean\":" << result.mean_latency() << "}";
  };
  const auto print_run = [&](std::ostream& out,
                             const load::RunResult& result) {
    out << "\"submitted\":" << result.submitted
        << ",\"answered\":" << result.answered
        << ",\"rejected\":" << result.rejected
        << ",\"errors\":" << result.errors
        << ",\"unresolved\":" << result.unresolved
        << ",\"offered_rate\":" << result.offered_rate
        << ",\"achieved_rate\":" << result.achieved_rate
        << ",\"wall_seconds\":" << result.wall_seconds << ",\"latency\":";
    print_latency(out, result);
  };

  if (flags.has("search")) {
    if (slo.empty()) {
      std::cerr << "loadgen: --search requires --slo\n";
      return 2;
    }
    load::SearchOptions search_options;
    search_options.min_rate = flags.number("min-rate", 25);
    search_options.max_rate = flags.number("max-rate", 1600);
    const double step_duration =
        flags.number("step-duration", arrivals.duration_seconds);
    const auto run_at = [&](double rate) {
      load::ArrivalConfig step = arrivals;
      step.rate = rate;
      step.duration_seconds = step_duration;
      std::cerr << "# loadgen step rate=" << rate << "\n";
      return load::run_open_loop(load::generate_arrivals(step), instances,
                                 pool.submit_fn());
    };
    const load::SearchResult search =
        load::max_sustainable_rate(run_at, slo, search_options);
    report << "{\"mode\":\"search\",\"sustainable_rps_at_slo\":"
           << search.sustainable_rate << ",\"steps\":[";
    bool first = true;
    for (const load::StepOutcome& step : search.steps) {
      if (!first) report << ",";
      first = false;
      report << "{\"rate\":" << step.rate
             << ",\"pass\":" << (step.pass ? "true" : "false")
             << ",\"submitted\":" << step.submitted
             << ",\"answered\":" << step.answered
             << ",\"rejected\":" << step.rejected
             << ",\"errors\":" << step.errors
             << ",\"unresolved\":" << step.unresolved
             << ",\"p50\":" << step.p50 << ",\"p99\":" << step.p99
             << ",\"slo\":";
      load::write_slo_json(report, step.report);
      report << "}";
    }
    report << "]}\n";
    return search.sustainable_rate > 0.0 ? 0 : 1;
  }

  // Single run: generate (or replay) one trace, optionally record it.
  load::LoadTrace trace;
  if (flags.has("replay")) {
    std::ifstream in(flags.get("replay"));
    std::string error;
    if (!in || !load::read_trace(in, trace, &error)) {
      std::cerr << "loadgen: cannot replay '" << flags.get("replay")
                << "': " << (error.empty() ? "cannot open" : error) << "\n";
      return 1;
    }
  } else {
    trace = load::generate_arrivals(arrivals);
  }
  if (flags.has("record")) {
    std::ofstream record(flags.get("record"));
    if (!record) {
      std::cerr << "loadgen: cannot write '" << flags.get("record") << "'\n";
      return 1;
    }
    load::write_trace(record, trace);
  }

  const load::RunResult result =
      load::run_open_loop(trace, instances, pool.submit_fn());
  const load::SloReport verdict = load::evaluate_slo(slo, result);
  report << "{\"mode\":\"single\",";
  print_run(report, result);
  // Pipelining watermark: >1 proves a single connection carried
  // concurrent in-flight solves (the ci.sh open-loop smoke asserts it).
  report << ",\"net_client_inflight_max\":"
         << pool.max_inflight_per_connection();
  if (!slo.empty()) {
    report << ",\"slo\":";
    load::write_slo_json(report, verdict);
  }
  report << "}\n";
  return verdict.pass && result.unresolved == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: prts_cli generate|solve|evaluate|simulate|dot|"
                 "trace|solvers|campaign|serve|scrape|loadgen ...\n";
    return 2;
  }
  const std::string command = argv[1];
  if (command == "solvers") return cmd_solvers();
  if (command == "campaign") {
    // The spec path is positional ('-' reads stdin); flags follow it.
    const bool has_path =
        argc > 2 && std::strncmp(argv[2], "--", 2) != 0;
    const Flags flags(argc, argv, has_path ? 3 : 2);
    return cmd_campaign(has_path ? argv[2] : "-", flags);
  }
  if (command == "serve") {
    // The request path is positional ('-' reads stdin); flags follow it.
    const bool has_path =
        argc > 2 && std::strncmp(argv[2], "--", 2) != 0;
    const Flags flags(argc, argv, has_path ? 3 : 2);
    return cmd_serve(has_path ? argv[2] : "-", flags);
  }
  if (command == "scrape") {
    const bool has_target = argc > 2 && std::strncmp(argv[2], "--", 2) != 0;
    if (!has_target) {
      std::cerr << "usage: prts_cli scrape HOST:PORT [--watch S] "
                   "[--count N] [--alerts]\n";
      return 2;
    }
    const Flags flags(argc, argv, 3);
    return cmd_scrape(argv[2], flags);
  }
  if (command == "loadgen") {
    const Flags flags(argc, argv, 2);
    return cmd_loadgen(flags);
  }
  const Flags flags(argc, argv, 2);
  if (command == "generate") return cmd_generate(flags);
  if (command == "solve") return cmd_solve(flags);
  if (command == "evaluate") return cmd_evaluate(flags);
  if (command == "simulate") return cmd_simulate(flags);
  if (command == "dot") return cmd_dot(flags);
  if (command == "trace") return cmd_trace(flags);
  std::cerr << "unknown command " << command << "\n";
  return 2;
}
