#!/usr/bin/env bash
# CI entry point: configure, build (with the project's always-on
# -Wall -Wextra), and run the tier-1 ctest suite.
#
#   tools/ci.sh                 # Release build into ./build
#   BUILD_TYPE=Debug tools/ci.sh
#   BUILD_DIR=/tmp/ci tools/ci.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-Release}"
cmake --build "$BUILD" -j "$JOBS"
# (cd form rather than ctest --test-dir: that flag needs CTest >= 3.20,
# the project supports CMake 3.16.)
cd "$BUILD" && ctest --output-on-failure -j "$JOBS"
