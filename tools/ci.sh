#!/usr/bin/env bash
# CI entry point: configure, build (with the project's always-on
# -Wall -Wextra), run the tier-1 ctest suite, then smoke-test the
# distributed solve fabric with two real prts_cli processes on
# loopback.
#
#   tools/ci.sh                 # Release build into ./build
#   BUILD_TYPE=Debug tools/ci.sh
#   BUILD_DIR=/tmp/ci tools/ci.sh
#   SKIP_FABRIC_SMOKE=1 tools/ci.sh   # ctest only
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-Release}"
cmake --build "$BUILD" -j "$JOBS"
# (cd form rather than ctest --test-dir: that flag needs CTest >= 3.20,
# the project supports CMake 3.16.)
(cd "$BUILD" && ctest --output-on-failure -j "$JOBS")

# ---------------------------------------------------------------------------
# Fabric smoke test: rank 0 + rank 1 on localhost present one logical
# cache. Asserts (via the line protocol's stats JSON) that cross-shard
# keys are forwarded, solved once, cached on their owner, answered as
# remote cache hits on repeat — and that killing the peer mid-run
# degrades to local solving without a single error status.
# ---------------------------------------------------------------------------
[ "${SKIP_FABRIC_SMOKE:-0}" = "1" ] && exit 0

CLI="$BUILD/prts_cli"
FAB="$BUILD/fabric_smoke"
rm -rf "$FAB" && mkdir -p "$FAB"

# counter <file> <key>: last value of "key":N in the file (or 0).
counter() {
  local v
  v=$(grep -o "\"$2\":[0-9]*" "$1" 2>/dev/null | tail -1 | cut -d: -f2)
  echo "${v:-0}"
}
# wait_reply_lines <file> <n>: poll until the file has n reply lines.
wait_reply_lines() {
  for _ in $(seq 1 200); do
    [ "$(grep -c $'^[0-9]*\t' "$1" 2>/dev/null || true)" -ge "$2" ] && return 0
    sleep 0.05
  done
  echo "fabric smoke: timed out waiting for $2 replies in $1" >&2
  return 1
}

"$CLI" generate --seed 42 --tasks 8 --procs 4 > "$FAB/inst.txt"

# Ephemeral-ish ports; retry a few bases in case of a collision.
fabric_up=0
for attempt in 1 2 3 4 5; do
  P0=$((21000 + (RANDOM % 20000) * 2))
  P1=$((P0 + 1))
  PEERS="127.0.0.1:$P0,127.0.0.1:$P1"
  mkfifo "$FAB/in0" "$FAB/in1"
  "$CLI" serve "$FAB/in1" --listen "$P1" --world 2 --rank 1 \
      --peers "$PEERS" > "$FAB/out1" 2> "$FAB/err1" &
  PID1=$!
  "$CLI" serve "$FAB/in0" --listen "$P0" --world 2 --rank 0 \
      --peers "$PEERS" > "$FAB/out0" 2> "$FAB/err0" &
  PID0=$!
  exec 8> "$FAB/in0" 9> "$FAB/in1"
  for _ in $(seq 1 40); do
    if grep -q "listening" "$FAB/err0" 2>/dev/null &&
       grep -q "listening" "$FAB/err1" 2>/dev/null; then
      fabric_up=1
      break
    fi
    kill -0 "$PID0" 2>/dev/null && kill -0 "$PID1" 2>/dev/null || break
    sleep 0.05
  done
  [ "$fabric_up" = "1" ] && break
  echo "fabric smoke: port base $P0 unavailable, retrying" >&2
  exec 8>&- 9>&-
  kill "$PID0" "$PID1" 2>/dev/null || true
  wait "$PID0" "$PID1" 2>/dev/null || true
  rm -f "$FAB/in0" "$FAB/in1"
done
[ "$fabric_up" = "1" ] || { echo "fabric smoke: could not bind ports" >&2; exit 1; }

# Phase 1: 16 distinct keys from rank 0 (some remote-shard with
# probability 1 - 2^-16), then the same 16 again (repeats must be cache
# hits — local or on the owner), then stats.
{
  echo "load inst $FAB/inst.txt"
  for pass in 1 2; do
    for i in $(seq 1 16); do echo "solve inst heur-p inf $((1000 + i))"; done
    echo "sync"
  done
  echo "stats"
} >&8
wait_reply_lines "$FAB/out0" 32
# The '# router' stats line lands just after the replies; wait for it
# too before reading counters.
for _ in $(seq 1 100); do
  grep -q '# router' "$FAB/out0" && break
  sleep 0.05
done

forwarded=$(counter "$FAB/out0" forwarded)
fwd_hits=$(counter "$FAB/out0" forward_hits)
[ "$forwarded" -ge 1 ] || { echo "FAIL: nothing was forwarded" >&2; exit 1; }
[ "$fwd_hits" -ge 1 ] || { echo "FAIL: no remote cache hit on repeat" >&2; exit 1; }

# The owner actually served the forwards from its engine + cache.
echo "stats" >&9
for _ in $(seq 1 100); do
  grep -q '"submitted"' "$FAB/out1" && break
  sleep 0.05
done
[ "$(counter "$FAB/out1" submitted)" -ge 1 ] ||
  { echo "FAIL: rank 1 never saw a forwarded solve" >&2; exit 1; }
[ "$(counter "$FAB/out1" cache_hits)" -ge 1 ] ||
  { echo "FAIL: owner cache never hit on repeat" >&2; exit 1; }

# Phase 2: kill the peer mid-run; 16 fresh keys must all be answered
# locally, cleanly.
kill "$PID1" && wait "$PID1" 2>/dev/null || true
{
  for i in $(seq 1 16); do echo "solve inst heur-p inf $((5000 + i))"; done
  echo "sync"
  echo "stats"
} >&8
wait_reply_lines "$FAB/out0" 48
exec 8>&- 9>&-
wait "$PID0" || { echo "FAIL: rank 0 exited non-zero" >&2; exit 1; }

[ "$(counter "$FAB/out0" local_fallbacks)" -ge 1 ] ||
  { echo "FAIL: peer death did not degrade to local solving" >&2; exit 1; }
if grep -q $'\terror\t' "$FAB/out0"; then
  echo "FAIL: error statuses in rank 0 replies" >&2
  exit 1
fi
replies=$(grep -c $'^[0-9]*\t' "$FAB/out0" || true)
[ "$replies" -eq 48 ] || { echo "FAIL: expected 48 replies, got $replies" >&2; exit 1; }

echo "fabric smoke test OK: forwarded=$forwarded forward_hits=$fwd_hits" \
     "local_fallbacks=$(counter "$FAB/out0" local_fallbacks)"
